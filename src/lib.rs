//! # GECCO — Constraint-driven Abstraction of Low-level Event Logs
//!
//! A from-scratch Rust reproduction of *GECCO* (Rebmann, Weidlich, van der
//! Aa — ICDE 2022): group the event classes of a low-level event log into
//! high-level activities such that user-defined constraints hold and a
//! behavioral distance to the original log is minimal.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`eventlog`] — log model, XES/CSV I/O, DFG, variants, statistics;
//! * [`constraints`] — grouping/class/instance constraints and their DSL;
//! * [`solver`] — exact MIP substrate (simplex + B&B, DLX exact cover);
//! * [`core`] — candidate computation, optimal selection, abstraction;
//! * [`discovery`] — filtered-DFG process models and complexity metrics;
//! * [`baselines`] — the paper's BL_Q, BL_P and BL_G comparators;
//! * [`datagen`] — process-tree simulation of the evaluation logs;
//! * [`metrics`] — size/complexity reduction and silhouette.
//!
//! ## Quickstart
//!
//! ```
//! use gecco::prelude::*;
//!
//! // The paper's running example (Table I).
//! let log = gecco::datagen::running_example();
//!
//! // "Each activity may only group events of a single executing role."
//! let constraints = ConstraintSet::parse("distinct(instance, \"org:role\") <= 1;").unwrap();
//!
//! let outcome = Gecco::new(&log)
//!     .constraints(constraints)
//!     .candidates(CandidateStrategy::DfgUnbounded)
//!     .run()
//!     .unwrap();
//!
//! let result = outcome.expect_abstracted();
//! assert_eq!(result.grouping().len(), 4); // {rcp,ckc,ckt}, {acc}, {rej}, {prio,inf,arv}
//! ```

pub use gecco_baselines as baselines;
pub use gecco_constraints as constraints;
pub use gecco_core as core;
pub use gecco_datagen as datagen;
pub use gecco_discovery as discovery;
pub use gecco_eventlog as eventlog;
pub use gecco_metrics as metrics;
pub use gecco_solver as solver;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use gecco_constraints::{Constraint, ConstraintSet};
    pub use gecco_core::{
        run_fanout, run_multipass, AbstractionStrategy, BeamWidth, CandidateStrategy, Gecco,
        Grouping, Outcome, SessionConfig,
    };
    pub use gecco_eventlog::{ClassId, ClassSet, Dfg, EventLog, LogBuilder, LogStats};
}
