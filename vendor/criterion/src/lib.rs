//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the `gecco-bench` benchmarks use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock harness: per benchmark it calibrates an
//! iteration count targeting ~25 ms per sample, takes `sample_size`
//! samples, and prints `min / median / max` per-iteration times (plus
//! throughput when declared).
//!
//! Statistical analysis, HTML reports and baseline comparison are out of
//! scope; swap the workspace dependency to real criterion to get them back.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use std::hint::black_box;

/// Environment variable naming the JSON file benchmark medians are
/// written to (see [`flush_json_report`]).
pub const BENCH_JSON_ENV: &str = "GECCO_BENCH_JSON";

fn registry() -> &'static Mutex<Vec<(String, f64)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Writes every measured benchmark's median (config → nanoseconds) as a
/// JSON object to the path in `GECCO_BENCH_JSON`, merging with entries
/// already in the file so several bench binaries can share one registry.
/// No-op when the variable is unset. Called by `criterion_main!` after
/// all groups run.
pub fn flush_json_report() {
    let Ok(path) = std::env::var(BENCH_JSON_ENV) else { return };
    let measured = registry().lock().expect("bench registry poisoned");
    if measured.is_empty() {
        return;
    }
    let mut entries: Vec<(String, f64)> = read_json_entries(&path);
    for (name, median) in measured.iter() {
        match entries.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = *median,
            None => entries.push((name.clone(), *median)),
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (name, median)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!("  \"{name}\": {median:.1}{comma}\n"));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

/// Parses entries previously written by [`flush_json_report`]. Only the
/// shim's own one-entry-per-line format is understood — enough to merge
/// registries across bench binaries without a JSON dependency.
fn read_json_entries(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let rest = line.strip_prefix('"')?;
            let (name, value) = rest.split_once("\":")?;
            Some((name.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

const DEFAULT_SAMPLE_SIZE: usize = 10;
const TARGET_SAMPLE_NANOS: u128 = 25_000_000;
const MAX_CALIBRATION_ITERS: u64 = 10_000;

/// Entry point handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    /// When true (set by `cargo test`, which passes `--test` to bench
    /// binaries), benchmarks are registered but not measured.
    test_mode: bool,
}

impl Criterion {
    /// Reads harness arguments: `--test` switches to compile-smoke mode.
    pub fn configure_from_args() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test") }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name: String = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.run_one(&name, f);
        group.finish();
    }
}

/// A named set of related benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    // Tie the group to its Criterion like the real API does, so group
    // lifetimes behave identically at call sites.
    _marker: std::marker::PhantomData<&'c ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run_one(&id.full_name(), move |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        self.run_one(&id.full_name(), move |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        if self.test_mode {
            println!("{full:<50} (skipped: --test mode)");
            return;
        }
        let mut bencher = Bencher { sample_size: self.sample_size, samples_ns: Vec::new() };
        f(&mut bencher);
        bencher.report(&full, self.throughput.as_ref());
    }
}

/// Work-loop driver passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, storing per-iteration nanoseconds for `sample_size`
    /// samples. The iteration count per sample is calibrated from a single
    /// warmup call so fast and slow benchmarks both finish promptly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().as_nanos().max(1);
        let iters = ((TARGET_SAMPLE_NANOS / once).clamp(1, MAX_CALIBRATION_ITERS as u128)) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters as f64);
        }
    }

    fn report(&self, name: &str, throughput: Option<&Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = sorted[sorted.len() / 2];
        let tp = match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let mb_s = *bytes as f64 / (median / 1e9) / 1e6;
                format!("   thrpt: {mb_s:>8.1} MB/s")
            }
            Some(Throughput::Elements(n)) => {
                let elem_s = *n as f64 / (median / 1e9);
                format!("   thrpt: {elem_s:>10.0} elem/s")
            }
            None => String::new(),
        };
        println!("{name:<50} time: [{} {} {}]{tp}", fmt_ns(min), fmt_ns(median), fmt_ns(max));
        registry().lock().expect("bench registry poisoned").push((name.to_string(), median));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A benchmark name with a parameter, e.g. `BenchmarkId::new("dlx", "12x30")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    fn full_name(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Accepts both plain strings and [`BenchmarkId`]s as benchmark names.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self.to_string(), parameter: String::new() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self, parameter: String::new() }
    }
}

/// Declared per-iteration workload, used for throughput reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::flush_json_report();
        }
    };
}
