//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to a crate
//! registry, so this vendored crate implements exactly the API subset the
//! workspace uses, with the method names of rand 0.9 (`random`,
//! `random_range`, `random_bool`). The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded via SplitMix64 — deterministic, fast, and of ample
//! quality for simulation and benchmarks (not cryptographic).
//!
//! If registry access ever returns, this crate can be deleted and the
//! workspace dependency pointed at the real `rand`; call sites need no
//! changes.

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed` by
    /// SplitMix64, so nearby seeds yield unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the full domain of `T`
    /// (for floats: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.random_range(0..10)` or
    /// `rng.random_range(0..=i)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.random_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
