//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace's test suites use, over a deterministic per-case seed
//! (case `i` of every test always sees the same inputs, in every run and
//! on every machine). Shrinking is not implemented: a failing case panics
//! with the ordinary assertion message, and because generation is
//! deterministic the failure reproduces by just re-running the test.
//!
//! Supported surface: range strategies over ints and floats, tuples up to
//! arity 6, [`Just`], `prop_map` / `prop_flat_map`, [`collection::vec`],
//! [`collection::btree_set`], [`option::of`], [`string::string_regex`]
//! (character-class patterns of the form `[...]{m,n}` only), `any::<T>()`
//! for primitive `T`, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;

use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic generator for one test case.
#[doc(hidden)]
pub fn rng_for_case(case: u64) -> StdRng {
    <StdRng as SeedableRng>::seed_from_u64(
        0xC0FF_EE00_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Uniform over the entire domain of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct FullDomain<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;

            fn arbitrary() -> Self::Strategy {
                FullDomain { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullDomain<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;

    fn arbitrary() -> Self::Strategy {
        FullDomain { _marker: std::marker::PhantomData }
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Inclusive bounds on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, StdRng, Strategy};
    use std::collections::BTreeSet;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet`s with a size in `size` (if the element domain is large
    /// enough to provide that many distinct values).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates only shrink the set, so over-draw generously; the
            // element domain may still be smaller than `target`, in which
            // case the set is as large as that domain allows.
            let attempts = 16 * (target + 1);
            for _ in 0..attempts {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Rng, StdRng, Strategy};

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod string {
    //! String strategies.

    use super::{Rng, StdRng, Strategy};

    /// Error returned for regex shapes the stand-in does not support.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported string_regex pattern: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        alphabet: Vec<char>,
        min_len: usize,
        max_len: usize,
    }

    /// Strings matching a character-class regex of the form `[...]{m,n}`
    /// (also `[...]{n}`, `[...]*`, `[...]+`). Ranges like `a-z` and literal
    /// characters — including multi-byte ones — are supported inside the
    /// class; that covers every pattern used in this workspace.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let err = || Error(pattern.to_string());
        let rest = pattern.strip_prefix('[').ok_or_else(err)?;
        let close = rest.find(']').ok_or_else(err)?;
        let class: Vec<char> = rest[..close].chars().collect();
        if class.is_empty() {
            return Err(err());
        }
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                if lo > hi {
                    return Err(err());
                }
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let quantifier = &rest[close + 1..];
        let (min_len, max_len) = match quantifier {
            "*" => (0, 8),
            "+" => (1, 8),
            "" => (1, 1),
            q => {
                let body = q.strip_prefix('{').and_then(|b| b.strip_suffix('}')).ok_or_else(err)?;
                match body.split_once(',') {
                    Some((m, n)) => {
                        (m.trim().parse().map_err(|_| err())?, n.trim().parse().map_err(|_| err())?)
                    }
                    None => {
                        let n = body.trim().parse().map_err(|_| err())?;
                        (n, n)
                    }
                }
            }
        };
        if min_len > max_len {
            return Err(err());
        }
        Ok(RegexStrategy { alphabet, min_len, max_len })
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let len = rng.random_range(self.min_len..=self.max_len);
            (0..len).map(|_| self.alphabet[rng.random_range(0..self.alphabet.len())]).collect()
        }
    }
}

/// Declares deterministic random-input tests; see the crate docs for the
/// supported subset of real proptest's grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($arg:ident in $strategy:expr) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strategy;
                for case in 0..config.cases {
                    let mut rng = $crate::rng_for_case(case as u64);
                    let $arg = $crate::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            panic!(
                "property failed: {} == {}\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right)
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            panic!($($fmt)+);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0usize..100, 1..=10);
        let mut a = crate::rng_for_case(5);
        let mut b = crate::rng_for_case(5);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn vec_respects_size_bounds() {
        let strat = crate::collection::vec(0usize..10, 2..=5);
        for case in 0..200 {
            let v = strat.generate(&mut crate::rng_for_case(case));
            assert!((2..=5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        let strat = crate::collection::btree_set(0usize..100, 3..=3);
        for case in 0..50 {
            let s = strat.generate(&mut crate::rng_for_case(case));
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn string_regex_supports_class_with_ranges_and_literals() {
        let strat = crate::string::string_regex("[a-zA-Z<>&\"' _:éß0-9]{1,12}").unwrap();
        for case in 0..100 {
            let s = strat.generate(&mut crate::rng_for_case(case));
            let n = s.chars().count();
            assert!((1..=12).contains(&n));
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || "<>&\"' _:éß".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn string_regex_rejects_unsupported_shapes() {
        assert!(crate::string::string_regex("(a|b)+").is_err());
        assert!(crate::string::string_regex("[]").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_and_combinators_work(pair in (0usize..10, 0usize..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
            prop_assert_eq!(pair, pair);
        }
    }
}
