//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this crate provides the
//! small parallel-iterator subset `gecco-core` uses — `par_iter().map(..)`
//! `.collect()`, `par_chunks`, and `join` — backed by `std::thread::scope`
//! with one contiguous chunk per available core. Results are returned in
//! input order, exactly like rayon's indexed parallel iterators.
//!
//! Swapping in the real rayon later requires only changing the workspace
//! dependency; call sites are written against rayon's names.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

/// Number of worker threads a parallel operation will use: the
/// `RAYON_NUM_THREADS` environment variable (like real rayon) when set to a
/// positive integer, otherwise the number of available cores.
pub fn current_num_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: join worker panicked"))
    })
}

/// `.into_par_iter()` on owned collections; implemented for `Range<usize>`
/// (the shape the workspace uses — index-parallel loops without allocating
/// an index vector).
pub trait IntoParallelIterator {
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over an index range (order-preserving).
#[derive(Debug)]
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap { range: self.range, f }
    }
}

/// The result of [`ParRange::map`]; consume with [`ParRangeMap::collect`].
#[derive(Debug)]
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<R, F> ParRangeMap<F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let (start, len) = (self.range.start, self.range.len());
        let f = self.f;
        C::from(par_map_indexed(len, |i| f(start + i)))
    }
}

/// `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;

    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.par_chunks(n)` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunks { items: self, chunk_size }
    }
}

/// Borrowing parallel iterator over slice elements (order-preserving).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Accepted for rayon compatibility; chunking is always one contiguous
    /// block per thread here, so the hint has nothing further to do.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// Parallel iterator over contiguous sub-slices (order-preserving).
#[derive(Debug)]
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap { items: self.items, chunk_size: self.chunk_size, f }
    }
}

/// The result of [`ParIter::map`]; consume with [`ParMap::collect`].
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Maps every element (in parallel when more than one core is available)
    /// and collects the results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_indexed(self.items.len(), |i| (self.f)(&self.items[i])))
    }
}

/// The result of [`ParChunks::map`]; consume with [`ParChunksMap::collect`].
#[derive(Debug)]
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<'a, T, R, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let chunks: Vec<&'a [T]> = self.items.chunks(self.chunk_size).collect();
        C::from(par_map_indexed(chunks.len(), |i| (self.f)(chunks[i])))
    }
}

/// Maps `0..len` through `f` across one contiguous index block per thread,
/// preserving order in the output.
fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let block = len.div_ceil(threads);
    let f = &f;
    let mut blocks: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(block)
            .map(|start| {
                let end = (start + block).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            blocks.push(handle.join().expect("rayon-shim: worker panicked"));
        }
    });
    blocks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_everything() {
        let input: Vec<u64> = (0..103).collect();
        let sums: Vec<u64> = input.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u64>(), input.iter().sum::<u64>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
