//! Property-based cross-validation of the two exact Step-2 engines against
//! each other and against brute force — the evidence that replacing Gurobi
//! with in-repo solvers preserves optimality.

use gecco::solver::{PresolveOptions, SetPartitionProblem, SolveEngine};
use proptest::prelude::*;

/// Brute-force optimum by enumerating all 2^k subsets.
fn brute_force(p: &SetPartitionProblem) -> Option<f64> {
    let k = p.sets.len();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << k) {
        let mut covered = vec![0u8; p.num_elements];
        let mut cost = 0.0;
        let mut count = 0;
        for (i, (members, c)) in p.sets.iter().enumerate() {
            if mask & (1 << i) != 0 {
                count += 1;
                cost += c;
                for &m in members {
                    covered[m] += 1;
                }
            }
        }
        let exact = covered.iter().all(|&c| c == 1);
        let card_ok =
            p.min_sets.is_none_or(|m| count >= m) && p.max_sets.is_none_or(|m| count <= m);
        if exact && card_ok && best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
    }
    best
}

fn arb_problem() -> impl Strategy<Value = SetPartitionProblem> {
    // Up to 7 elements, up to 12 candidate sets, optional cardinality bounds.
    (2usize..=7, 1usize..=12).prop_flat_map(|(elements, num_sets)| {
        let sets = proptest::collection::vec(
            (proptest::collection::btree_set(0..elements, 1..=elements), 0.1f64..10.0),
            num_sets,
        );
        (Just(elements), sets, proptest::option::of(0usize..3), proptest::option::of(1usize..5))
            .prop_map(|(elements, sets, min, max)| {
                let mut p = SetPartitionProblem::new(elements);
                for (members, cost) in sets {
                    p.add_set(members.into_iter().collect(), cost);
                }
                p.min_sets = min;
                p.max_sets = max;
                p
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dlx_matches_brute_force(p in arb_problem()) {
        let brute = brute_force(&p);
        let dlx = p.solve(SolveEngine::Dlx);
        match (brute, &dlx) {
            (None, None) => {}
            (Some(b), Some(s)) => {
                prop_assert!(s.proven_optimal);
                prop_assert!((s.cost - b).abs() < 1e-9, "dlx {} vs brute {}", s.cost, b);
            }
            (b, s) => prop_assert!(false, "feasibility disagreement: brute {b:?} vs dlx {s:?}"),
        }
    }

    #[test]
    fn simplex_bnb_matches_dlx(p in arb_problem()) {
        let dlx = p.solve(SolveEngine::Dlx);
        let bnb = p.solve(SolveEngine::SimplexBnb);
        match (&dlx, &bnb) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a.cost - b.cost).abs() < 1e-9),
            _ => prop_assert!(false, "engines disagree on feasibility: {dlx:?} vs {bnb:?}"),
        }
    }

    #[test]
    fn presolved_route_matches_brute_force(p in arb_problem()) {
        let brute = brute_force(&p);
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let presolved = p.solve_presolved(engine, &PresolveOptions::default());
            match (brute, &presolved) {
                (None, None) => {}
                (Some(b), Some(s)) => {
                    prop_assert!(s.proven_optimal, "{engine:?}");
                    prop_assert!(
                        (s.cost - b).abs() < 1e-9,
                        "{engine:?} presolved {} vs brute {}", s.cost, b
                    );
                    // The reported cost matches the reported selection.
                    let recomputed: f64 = s.selected.iter().map(|&i| p.sets[i].1).sum();
                    prop_assert!((s.cost - recomputed).abs() < 1e-9);
                    let mut covered = vec![0u8; p.num_elements];
                    for &i in &s.selected {
                        for &m in &p.sets[i].0 {
                            covered[m] += 1;
                        }
                    }
                    prop_assert!(covered.iter().all(|&c| c == 1));
                    if let Some(min) = p.min_sets {
                        prop_assert!(s.selected.len() >= min);
                    }
                    if let Some(max) = p.max_sets {
                        prop_assert!(s.selected.len() <= max);
                    }
                }
                (b, s) => prop_assert!(
                    false,
                    "{engine:?} feasibility disagreement: brute {b:?} vs presolved {s:?}"
                ),
            }
        }
    }

    #[test]
    fn solutions_are_exact_covers(p in arb_problem()) {
        if let Some(s) = p.solve(SolveEngine::Dlx) {
            let mut covered = vec![0u8; p.num_elements];
            for &i in &s.selected {
                for &m in &p.sets[i].0 {
                    covered[m] += 1;
                }
            }
            prop_assert!(covered.iter().all(|&c| c == 1));
            if let Some(min) = p.min_sets {
                prop_assert!(s.selected.len() >= min);
            }
            if let Some(max) = p.max_sets {
                prop_assert!(s.selected.len() <= max);
            }
        }
    }
}
