//! End-to-end reproduction of the paper's running example: Table I,
//! Figures 2, 3, 6 and 7 as executable assertions.

use gecco::prelude::*;

fn role_constraint() -> ConstraintSet {
    ConstraintSet::parse("distinct(instance, \"org:role\") <= 1;").expect("valid DSL")
}

#[test]
fn figure7_grouping_and_distance() {
    let log = gecco::datagen::running_example();
    let result = Gecco::new(&log)
        .constraints(role_constraint())
        .candidates(CandidateStrategy::DfgUnbounded)
        .label_by("org:role")
        .run()
        .expect("compiles")
        .expect_abstracted();
    // Fig. 7: dist = 3.08 with the four groups of §II.
    assert!((result.distance() - 37.0 / 12.0).abs() < 1e-9);
    let rendered = result.grouping().render(&log);
    assert!(rendered.contains("{ckc, ckt, rcp}"));
    assert!(rendered.contains("{acc}"));
    assert!(rendered.contains("{rej}"));
    assert!(rendered.contains("{arv, inf, prio}"));
    assert!(result.proven_optimal());
}

#[test]
fn figure3_abstracted_dfg_shape() {
    let log = gecco::datagen::running_example();
    let result = Gecco::new(&log)
        .constraints(role_constraint())
        .label_by("org:role")
        .run()
        .expect("compiles")
        .expect_abstracted();
    let dfg = Dfg::from_log(result.log());
    let id = |n: &str| result.log().class_by_name(n).unwrap();
    // Fig. 3: clerk1 → {acc, rej}; acc → clerk2; rej → {clerk1, clerk2}.
    assert!(dfg.follows(id("clerk1"), id("acc")));
    assert!(dfg.follows(id("clerk1"), id("rej")));
    assert!(dfg.follows(id("acc"), id("clerk2")));
    assert!(dfg.follows(id("rej"), id("clerk2")));
    assert!(dfg.follows(id("rej"), id("clerk1")), "rejection may restart the process");
    assert!(!dfg.follows(id("acc"), id("clerk1")), "acceptance never loops back");
    // 4 nodes, 5 edges — down from 8 nodes / 14 edges (Fig. 2).
    assert_eq!(dfg.num_edges(), 5);
    assert_eq!(Dfg::from_log(&log).num_edges(), 14);
}

#[test]
fn start_complete_strategy_on_running_example() {
    let log = gecco::datagen::running_example();
    let result = Gecco::new(&log)
        .constraints(role_constraint())
        .abstraction(AbstractionStrategy::StartComplete)
        .label_by("org:role")
        .run()
        .expect("compiles")
        .expect_abstracted();
    // σ1: clerk1 and clerk2 are multi-event (s+c), acc stays unary.
    assert_eq!(
        result.log().format_trace(&result.log().traces()[0]),
        "⟨clerk1+s, clerk1+c, acc, clerk2+s, clerk2+c⟩"
    );
}

#[test]
fn all_strategies_agree_on_feasibility() {
    let log = gecco::datagen::running_example();
    for strategy in [
        CandidateStrategy::Exhaustive,
        CandidateStrategy::DfgUnbounded,
        CandidateStrategy::DfgBeam { k: BeamWidth::PerClass(5) },
        // Note: a beam narrower than |C_L| can drop singletons and lose
        // feasibility — the paper's adaptive k = 5·|C_L| avoids this.
        CandidateStrategy::DfgBeam { k: BeamWidth::Fixed(12) },
    ] {
        let outcome = Gecco::new(&log)
            .constraints(role_constraint())
            .candidates(strategy)
            .run()
            .expect("compiles");
        let result = outcome.expect_abstracted();
        assert!(result.grouping().is_exact_cover(&log), "{strategy:?}");
    }
}

#[test]
fn naive_role_grouping_is_unreachable_for_dfg_candidates() {
    // §II argues that naively grouping all clerk steps into one activity
    // (g_clrk = {rcp, ckc, ckt, prio, inf, arv}) is not meaningful: it
    // mixes start-of-process and end-of-process steps. Eq. 1 alone does
    // not forbid it — what prevents it in GECCO is the DFG-based candidate
    // computation: every path from the intake block to the closing block
    // passes through a manager step, so no role-pure path can span both.
    use gecco::constraints::CompiledConstraintSet;
    use gecco::core::candidates::dfg::{dfg_candidates, NoObserver};
    use gecco::core::Budget;
    let log = gecco::datagen::running_example();
    let set = |names: &[&str]| -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    };
    let naive = set(&["rcp", "ckc", "ckt", "prio", "inf", "arv"]);
    let spec = ConstraintSet::parse("distinct(instance, \"org:role\") <= 1;").unwrap();
    let compiled = CompiledConstraintSet::compile(&spec, &log).unwrap();
    let index = gecco::eventlog::LogIndex::build(&log);
    let ctx = gecco::eventlog::EvalContext::new(&log, &index);
    let candidates = dfg_candidates(&ctx, &compiled, None, Budget::UNLIMITED, &mut NoObserver);
    assert!(
        !candidates.groups().contains(&naive),
        "the naive clerk group must not arise from role-pure DFG paths"
    );
    // …whereas the exhaustive instantiation does reach it (it co-occurs in
    // σ4), which is exactly the Exh-vs-DFG trade-off the paper evaluates.
    let exhaustive = gecco::core::candidates::exhaustive::exhaustive_candidates(
        &ctx,
        &compiled,
        Budget::UNLIMITED,
    );
    assert!(exhaustive.groups().contains(&naive));
}
