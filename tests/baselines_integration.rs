//! Integration tests of the three baselines against GECCO (§VI-C claims as
//! executable assertions).

use gecco::baselines::{greedy_grouping, query_candidates, spectral_partitioning};
use gecco::constraints::CompiledConstraintSet;
use gecco::core::{grouping::occurring_classes, Budget, DistanceOracle, SelectionOptions};
use gecco::eventlog::{EvalContext, LogIndex, Segmenter};
use gecco::prelude::*;

fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
    CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
}

#[test]
fn blq_candidates_are_a_subset_of_geccos() {
    // BL_Q's query yields "not as comprehensive" candidate sets (§VI-C): on
    // the running example they must be a subset of DFG∞ + Algorithm 3.
    let log = gecco::datagen::running_example();
    let dsl = "size(g) <= 5;";
    let constraints = compile(&log, dsl);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let blq = query_candidates(&ctx, &constraints, 5);
    let gecco_result = Gecco::new(&log)
        .constraints(ConstraintSet::parse(dsl).unwrap())
        .candidates(CandidateStrategy::DfgUnbounded)
        .run()
        .unwrap()
        .expect_abstracted();
    // Selection over BL_Q candidates is no better than GECCO's optimum.
    let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
    let blq_selection =
        gecco::core::select_optimal(&log, &blq, &oracle, (None, None), SelectionOptions::default())
            .expect("singletons keep BL_Q feasible");
    assert!(gecco_result.distance() <= blq_selection.distance + 1e-9);
}

#[test]
fn blp_partitions_match_bl4_but_score_worse_distance() {
    let log = gecco::datagen::running_example();
    let n = occurring_classes(&log).len().div_ceil(2);
    let partition = spectral_partitioning(&log, n).expect("feasible n");
    assert_eq!(partition.len(), n);
    // GECCO under the same grouping bound.
    let dsl = format!("size(g) <= 8; groups == {n};");
    let gecco_result = Gecco::new(&log)
        .constraints(ConstraintSet::parse(&dsl).unwrap())
        .candidates(CandidateStrategy::Exhaustive)
        .budget(Budget::max_checks(5_000))
        .run()
        .unwrap()
        .expect_abstracted();
    assert_eq!(gecco_result.grouping().len(), n);
    // GECCO optimizes the distance directly, so it cannot lose.
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
    let blp_distance: f64 = partition.iter().map(|g| oracle.distance(g)).sum();
    assert!(gecco_result.distance() <= blp_distance + 1e-9);
}

#[test]
fn blg_is_dominated_on_the_running_example() {
    let log = gecco::datagen::running_example();
    let dsl = "size(g) <= 8; distinct(instance, \"org:role\") <= 1;";
    let constraints = compile(&log, dsl);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let (greedy, greedy_distance) = greedy_grouping(&ctx, &constraints).expect("feasible");
    let gecco_result = Gecco::new(&log)
        .constraints(ConstraintSet::parse(dsl).unwrap())
        .candidates(CandidateStrategy::Exhaustive)
        .run()
        .unwrap()
        .expect_abstracted();
    assert!(gecco_result.distance() <= greedy_distance + 1e-9);
    assert!(greedy.is_exact_cover(&log));
}

#[test]
fn baselines_terminate_on_a_collection_log() {
    let collection = gecco::datagen::evaluation_collection(gecco::datagen::CollectionScale::Smoke);
    let log = &collection[6].log; // the 8-class log
    let constraints = compile(log, "size(g) <= 5;");
    let index = LogIndex::build(log);
    let ctx = EvalContext::new(log, &index);
    assert!(!query_candidates(&ctx, &constraints, 5).is_empty());
    assert!(spectral_partitioning(log, 4).is_some());
    assert!(greedy_grouping(&ctx, &constraints).is_some());
}
