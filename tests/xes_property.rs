//! Property-based round-trip tests for the hand-rolled XES and CSV codecs.

use gecco::eventlog::{csv, xes, AttributeValue, EventLog, LogBuilder};
use proptest::prelude::*;

/// Class/attribute names including XML-hostile characters.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z<>&\"' _:éß0-9]{1,12}").expect("valid regex")
}

fn arb_log() -> impl Strategy<Value = EventLog> {
    let event = (arb_name(), any::<i32>(), proptest::option::of(-1.0e6f64..1.0e6));
    let trace = proptest::collection::vec(event, 0..6);
    (proptest::collection::vec(trace, 0..5), proptest::collection::vec(arb_name(), 1..4)).prop_map(
        |(traces, class_pool)| {
            let mut b = LogBuilder::new();
            for (i, t) in traces.iter().enumerate() {
                let mut tb = b.trace(&format!("case {i} & co"));
                for (name_seed, cost, weight) in t {
                    let class = &class_pool[name_seed.len() % class_pool.len()];
                    tb = tb
                        .event_with(class, |e| {
                            e.int("cost", *cost as i64)
                                .timestamp("time:timestamp", (*cost as i64) * 1000)
                                .str("note", name_seed);
                            if let Some(w) = weight {
                                e.float("weight", *w);
                            }
                        })
                        .expect("few classes");
                }
                tb.done();
            }
            b.build()
        },
    )
}

fn logs_equivalent(a: &EventLog, b: &EventLog) -> bool {
    if a.traces().len() != b.traces().len() || a.num_events() != b.num_events() {
        return false;
    }
    for (ta, tb) in a.traces().iter().zip(b.traces()) {
        if ta.len() != tb.len() {
            return false;
        }
        for (ea, eb) in ta.events().iter().zip(tb.events()) {
            if a.class_name(ea.class()) != b.class_name(eb.class()) {
                return false;
            }
            // Compare attributes by resolved key/value.
            let mut attrs_a: Vec<(String, String)> = ea
                .attributes()
                .iter()
                .map(|(k, v)| (a.resolve(*k).to_string(), v.display(a.interner()).to_string()))
                .collect();
            let mut attrs_b: Vec<(String, String)> = eb
                .attributes()
                .iter()
                .filter(|(k, _)| b.resolve(*k) != "concept:name")
                .map(|(k, v)| (b.resolve(*k).to_string(), v.display(b.interner()).to_string()))
                .collect();
            attrs_a.retain(|(k, _)| k != "concept:name");
            attrs_a.sort();
            attrs_b.sort();
            if attrs_a != attrs_b {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xes_round_trip_preserves_logs(log in arb_log()) {
        let text = xes::write_string(&log);
        let back = xes::parse_str(&text).expect("own output must parse");
        prop_assert!(logs_equivalent(&log, &back), "round trip changed the log");
    }

    #[test]
    fn double_round_trip_is_stable(log in arb_log()) {
        let once = xes::parse_str(&xes::write_string(&log)).unwrap();
        let twice = xes::parse_str(&xes::write_string(&once)).unwrap();
        prop_assert!(logs_equivalent(&once, &twice));
    }

    #[test]
    fn csv_round_trip_preserves_event_counts(log in arb_log()) {
        let text = csv::write_string(&log);
        let back = csv::read_str(&text, &csv::CsvOptions::default()).expect("own output parses");
        // Empty traces are not representable in event-per-row CSV.
        let non_empty = log.traces().iter().filter(|t| !t.is_empty()).count();
        prop_assert_eq!(back.traces().len(), non_empty);
        prop_assert_eq!(back.num_events(), log.num_events());
    }

    #[test]
    fn timestamps_survive_xes(millis in -62_000_000_000_000i64..253_000_000_000_000) {
        let mut b = LogBuilder::new();
        b.trace("t")
            .event_with("a", |e| {
                e.timestamp("time:timestamp", millis);
            })
            .unwrap()
            .done();
        let log = b.build();
        let back = xes::parse_str(&xes::write_string(&log)).unwrap();
        let e = &back.traces()[0].events()[0];
        prop_assert_eq!(
            e.attribute(back.std_keys().timestamp),
            Some(&AttributeValue::Timestamp(millis))
        );
    }
}
