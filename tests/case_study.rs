//! Integration test of the §VI-D case study on the simulated loan log.

use gecco::core::Budget;
use gecco::discovery::{discover, DiscoveryOptions, ModelComplexity};
use gecco::prelude::*;

#[test]
fn origin_constraint_yields_system_pure_activities() {
    let log = gecco::datagen::loan_log(120, 2017);
    let constraints =
        ConstraintSet::parse("distinct(class, \"system\") <= 1; size(g) <= 8;").unwrap();
    let result = Gecco::new(&log)
        .constraints(constraints)
        .candidates(CandidateStrategy::DfgUnbounded)
        .budget(Budget::max_checks(5_000))
        .label_by("system")
        .run()
        .unwrap()
        .expect_abstracted();
    // Considerable size reduction from 24 classes.
    assert!(result.grouping().len() < 24);
    // Every group is pure with respect to the originating system.
    let key = log.key("system").unwrap();
    for group in result.grouping().iter() {
        let mut systems = std::collections::HashSet::new();
        for c in group.iter() {
            systems.insert(
                log.resolve(log.classes().info(c).attribute(key).unwrap().as_symbol().unwrap())
                    .to_string(),
            );
        }
        assert_eq!(systems.len(), 1, "mixed-system group: {}", log.format_group(group));
    }
    // Model complexity drops (the paper's C. red. argument).
    let before = ModelComplexity::of(&discover(&log, DiscoveryOptions::default()));
    let after = ModelComplexity::of(&discover(result.log(), DiscoveryOptions::default()));
    assert!(after.cfc < before.cfc, "CFC {} → {}", before.cfc, after.cfc);
    assert!(after.size < before.size);
}

#[test]
fn unconstrained_abstraction_mixes_systems() {
    // §VI-D: "when applying GECCO without imposing any constraints, the
    // intertwined nature of the process even yielded high-level activities
    // that contain events from all three sub-systems".
    let log = gecco::datagen::loan_log(120, 2017);
    let result = Gecco::new(&log)
        .candidates(CandidateStrategy::DfgUnbounded)
        .budget(Budget::max_checks(5_000))
        .run()
        .unwrap()
        .expect_abstracted();
    let key = log.key("system").unwrap();
    let mixed = result
        .grouping()
        .iter()
        .filter(|g| {
            let mut systems = std::collections::HashSet::new();
            for c in g.iter() {
                if let Some(v) = log.classes().info(c).attribute(key) {
                    systems.insert(v.distinct_key());
                }
            }
            systems.len() > 1
        })
        .count();
    assert!(mixed > 0, "unconstrained groups should mix systems");
}

#[test]
fn loose_duration_constraint_on_loan_log() {
    // A loose instance constraint (Table II's last row style): 80% of
    // instances must complete within a bounded span.
    let log = gecco::datagen::loan_log(80, 7);
    let constraints = ConstraintSet::parse(
        "size(g) <= 6; atleast 0.8 of instances: span(\"time:timestamp\") <= 36000000;",
    )
    .unwrap();
    let outcome = Gecco::new(&log)
        .constraints(constraints)
        .candidates(CandidateStrategy::DfgBeam { k: BeamWidth::PerClass(5) })
        .budget(Budget::max_checks(5_000))
        .run()
        .unwrap();
    // Whatever the feasibility, the pipeline must terminate cleanly and, if
    // feasible, produce an exact cover.
    if let Some(result) = outcome.abstracted() {
        assert!(result.grouping().is_exact_cover(&log));
    }
}
