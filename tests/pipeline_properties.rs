//! Property-based tests of GECCO's end-to-end invariants on randomly
//! generated logs.

use gecco::core::Budget;
use gecco::prelude::*;
use proptest::prelude::*;

/// Random small logs: up to 6 classes, up to 8 traces of length ≤ 8, with a
/// role attribute drawn from two roles.
fn arb_log() -> impl Strategy<Value = EventLog> {
    let trace = proptest::collection::vec(0usize..6, 1..=8);
    proptest::collection::vec(trace, 1..=8).prop_map(|traces| {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("case-{i}"));
            for (j, &cls) in t.iter().enumerate() {
                let name = format!("c{cls}");
                let role = if cls % 2 == 0 { "even" } else { "odd" };
                tb = tb
                    .event_with(&name, |e| {
                        e.str("org:role", role)
                            .timestamp("time:timestamp", (i as i64) * 10_000 + (j as i64) * 100)
                            .int("cost", (cls as i64 + 1) * 10);
                    })
                    .expect("small logs");
            }
            tb.done();
        }
        b.build()
    })
}

fn run(log: &EventLog, dsl: &str, strategy: CandidateStrategy) -> Outcome {
    Gecco::new(log)
        .constraints(ConstraintSet::parse(dsl).expect("valid dsl"))
        .candidates(strategy)
        .budget(Budget::max_checks(3_000))
        .run()
        .expect("compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn groupings_are_exact_covers_and_constraint_satisfying(log in arb_log()) {
        let dsl = "size(g) <= 3; distinct(instance, \"org:role\") <= 1;";
        for strategy in [CandidateStrategy::Exhaustive, CandidateStrategy::DfgUnbounded] {
            if let Outcome::Abstracted(result) = run(&log, dsl, strategy) {
                prop_assert!(result.grouping().is_exact_cover(&log));
                let compiled = gecco::constraints::CompiledConstraintSet::compile(
                    &ConstraintSet::parse(dsl).unwrap(),
                    &log,
                )
                .unwrap();
                let index = gecco::eventlog::LogIndex::build(&log);
                let ctx = gecco::eventlog::EvalContext::new(&log, &index);
                for g in result.grouping().iter() {
                    prop_assert!(compiled.holds(g, &ctx), "violating group selected");
                    prop_assert!(compiled.holds_scan(g, &log), "indexed and scan verdicts agree");
                }
                prop_assert!(result.distance().is_finite());
                prop_assert!(result.distance() >= 0.0);
            }
        }
    }

    #[test]
    fn exhaustive_never_worse_than_beam(log in arb_log()) {
        let dsl = "size(g) <= 3;";
        let exh = run(&log, dsl, CandidateStrategy::Exhaustive);
        let beam = run(&log, dsl, CandidateStrategy::DfgBeam { k: BeamWidth::Fixed(3) });
        if let (Some(e), Some(b)) = (exh.abstracted(), beam.abstracted()) {
            prop_assert!(e.distance() <= b.distance() + 1e-9,
                "exhaustive {} worse than beam {}", e.distance(), b.distance());
        }
    }

    #[test]
    fn singleton_grouping_bounds_the_optimum(log in arb_log()) {
        // dist of all-singletons = number of occurring classes; any optimum
        // found without constraints must be at least as good.
        if let Outcome::Abstracted(result) = run(&log, "", CandidateStrategy::Exhaustive) {
            let singletons = gecco::core::Grouping::singletons(&log);
            prop_assert!(result.distance() <= singletons.len() as f64 + 1e-9);
        }
    }

    #[test]
    fn abstracted_log_preserves_trace_count(log in arb_log()) {
        if let Outcome::Abstracted(result) = run(&log, "", CandidateStrategy::DfgUnbounded) {
            prop_assert_eq!(result.log().traces().len(), log.traces().len());
            // Completion strategy: every trace keeps at least one event per
            // non-empty original trace.
            for (orig, abs) in log.traces().iter().zip(result.log().traces()) {
                prop_assert_eq!(orig.is_empty(), abs.is_empty());
                prop_assert!(abs.len() <= orig.len());
            }
        }
    }

    #[test]
    fn infeasibility_reports_never_panic(log in arb_log()) {
        let outcome = run(&log, "count(instance) >= 4; size(g) <= 2;", CandidateStrategy::Exhaustive);
        if let Outcome::Infeasible(report) = outcome {
            prop_assert!(!report.summary.is_empty());
        }
    }

    #[test]
    fn group_count_bounds_respected(log in arb_log()) {
        let classes = gecco::core::grouping::occurring_classes(&log).len();
        if classes >= 2 {
            let dsl = format!("groups >= {};", classes.div_ceil(2));
            if let Outcome::Abstracted(result) =
                run(&log, &dsl, CandidateStrategy::DfgUnbounded)
            {
                prop_assert!(result.grouping().len() >= classes.div_ceil(2));
            }
        }
    }
}
