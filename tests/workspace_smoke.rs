//! Workspace wiring smoke test: touches every facade re-export so a broken
//! crate manifest or a dropped `pub use` fails loudly here, not in a
//! downstream consumer.

use gecco::prelude::*;

#[test]
fn facade_eventlog() {
    let mut b = gecco::eventlog::LogBuilder::new();
    b.trace("t").event("a").unwrap().event("b").unwrap().done();
    let log: EventLog = b.build();
    assert_eq!(log.traces().len(), 1);
    assert_eq!(log.num_events(), 2);
    let dfg = Dfg::from_log(&log);
    let a = log.class_by_name("a").unwrap();
    let b_cls = log.class_by_name("b").unwrap();
    assert!(dfg.successors(a).any(|c| c == b_cls), "a→b edge must exist in ⟨a,b⟩");
    let stats = LogStats::from_log(&log);
    assert_eq!(stats.num_classes, 2);
    let set: ClassSet = [a, b_cls].into_iter().collect();
    assert_eq!(set.len(), 2);
    let _id: ClassId = a;
}

#[test]
fn facade_constraints() {
    let cs: ConstraintSet = ConstraintSet::parse("size(g) <= 3;").unwrap();
    assert_eq!(cs.len(), 1);
    let _c: &Constraint = &cs.constraints()[0];
}

#[test]
fn facade_solver() {
    use gecco::solver::{SetPartitionProblem, SolveEngine};
    let mut p = SetPartitionProblem::new(2);
    p.add_set(vec![0], 1.0);
    p.add_set(vec![1], 1.0);
    p.add_set(vec![0, 1], 1.5);
    let s = p.solve(SolveEngine::Dlx).expect("feasible");
    assert!((s.cost - 1.5).abs() < 1e-9);
}

#[test]
fn facade_core_pipeline() {
    let log = gecco::datagen::running_example();
    let outcome = Gecco::new(&log)
        .constraints(ConstraintSet::parse("size(g) <= 3;").unwrap())
        .candidates(CandidateStrategy::DfgBeam { k: BeamWidth::PerClass(5) })
        .run()
        .unwrap();
    match outcome {
        Outcome::Abstracted(result) => {
            let grouping: &Grouping = result.grouping();
            assert!(grouping.is_exact_cover(&log));
        }
        Outcome::Infeasible(report) => panic!("unexpectedly infeasible: {}", report.summary),
    }
}

#[test]
fn facade_discovery_and_metrics() {
    let log = gecco::datagen::running_example();
    let options = gecco::discovery::DiscoveryOptions::default();
    let model = gecco::discovery::discover(&log, options);
    assert!(gecco::discovery::ModelComplexity::of(&model).size > 0, "the model has nodes");
    let complexity = gecco::metrics::complexity_reduction(&log, &log, options);
    assert!(complexity.abs() < 1e-9, "identical logs reduce nothing");
    let size = gecco::metrics::size_reduction(4, 8);
    assert!((size - 0.5).abs() < 1e-9);
}

#[test]
fn facade_baselines() {
    let log = gecco::datagen::running_example();
    let compiled = gecco::constraints::CompiledConstraintSet::compile(
        &ConstraintSet::parse("size(g) <= 3;").unwrap(),
        &log,
    )
    .unwrap();
    let index = gecco::eventlog::LogIndex::build(&log);
    let ctx = gecco::eventlog::EvalContext::new(&log, &index);
    let (grouping, _distance) =
        gecco::baselines::greedy_grouping(&ctx, &compiled).expect("feasible");
    assert!(!grouping.is_empty());
}

#[test]
fn facade_datagen() {
    let log = gecco::datagen::loan_log(5, 1);
    assert_eq!(log.traces().len(), 5);
}

#[test]
fn facade_core_parallel_toggle() {
    // Present with and without the `rayon` feature (no-op without).
    let before = gecco::core::parallel_enabled();
    gecco::core::set_parallel(false);
    assert!(!gecco::core::parallel_enabled());
    gecco::core::set_parallel(before);
}
