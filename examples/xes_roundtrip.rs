//! XES interchange: serialize a simulated log with the hand-rolled writer,
//! parse it back, and abstract the parsed copy.
//!
//! Run with `cargo run --example xes_roundtrip`.

use gecco::eventlog::{csv, xes};
use gecco::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = gecco::datagen::running_example();

    // Write → parse → compare.
    let dir = std::env::temp_dir().join("gecco-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("running-example.xes");
    xes::write_file(&log, &path)?;
    println!("Wrote {} ({} bytes)", path.display(), std::fs::metadata(&path)?.len());

    let parsed = xes::parse_file(&path)?;
    assert_eq!(parsed.num_events(), log.num_events());
    assert_eq!(parsed.num_classes(), log.num_classes());
    println!(
        "Parsed back: {} traces, {} events, {} classes — identical structure.",
        parsed.traces().len(),
        parsed.num_events(),
        parsed.num_classes()
    );

    // The parsed log is a first-class citizen: abstract it directly.
    let result = Gecco::new(&parsed)
        .constraints(ConstraintSet::parse("distinct(instance, \"org:role\") <= 1;")?)
        .label_by("org:role")
        .run()?
        .expect_abstracted();
    println!("\nAbstracted the parsed log into {} activities:", result.grouping().len());
    for t in result.log().traces() {
        println!("  {}", result.log().format_trace(t));
    }

    // CSV export works the same way.
    let csv_text = csv::write_string(&log);
    let from_csv = csv::read_str(&csv_text, &csv::CsvOptions::default())?;
    assert_eq!(from_csv.num_events(), log.num_events());
    println!("\nCSV round-trip: {} rows re-imported losslessly.", from_csv.num_events());
    std::fs::remove_file(&path).ok();
    Ok(())
}
