//! Tour of the constraint DSL: every constraint category of Table II, plus
//! infeasibility diagnostics when the requirements cannot be met.
//!
//! Run with `cargo run --example constraint_dsl`.

use gecco::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = gecco::datagen::running_example();

    // One statement per constraint category (cf. Table II):
    let program = r#"
        # R_G — grouping constraints
        groups >= 2;
        groups <= 6;

        # R_C — class-based constraints
        size(g) <= 4;
        cannot_link("rcp", "acc");
        must_link("inf", "arv");

        # R_I — instance-based constraints
        distinct(instance, "org:role") <= 1;     # one role per instance
        sum("cost") <= 2000;                     # bounded instance cost
        gap("time:timestamp") <= 300000;         # events at most 5 min apart
        atleast 0.75 of instances: span("time:timestamp") <= 180000;
    "#;
    let constraints = ConstraintSet::parse(program)?;
    println!("Parsed {} constraints:", constraints.len());
    for c in constraints.constraints() {
        println!("  [{:?}] {}", c.monotonicity(), c);
    }

    match Gecco::new(&log).constraints(constraints).label_by("org:role").run()? {
        Outcome::Abstracted(result) => {
            println!(
                "\nFeasible: {} groups, dist = {:.3}",
                result.grouping().len(),
                result.distance()
            );
            println!("{}", result.grouping().render(&log));
        }
        Outcome::Infeasible(report) => {
            println!("\nInfeasible. GECCO's diagnostics (§V-C):\n{}", report.summary);
        }
    }

    // GECCO's future-work §VIII: let the tool suggest constraints.
    println!("\nSuggested constraints for this log:");
    for s in gecco::constraints::suggest_constraints(&log) {
        println!("  {}    # {}", s.constraint, s.rationale);
    }

    // Now an unsatisfiable program — watch the diagnostics explain why.
    let impossible = ConstraintSet::parse("count(instance) >= 3; size(g) <= 2;")?;
    match Gecco::new(&log).constraints(impossible).run()? {
        Outcome::Abstracted(_) => println!("\nunexpectedly feasible?"),
        Outcome::Infeasible(report) => {
            println!("\nAs expected, `count(instance) >= 3; size(g) <= 2` is infeasible:");
            println!("{}", report.summary);
        }
    }
    Ok(())
}
