//! The paper's case study (§VI-D): abstracting a loan-application log so
//! that no activity mixes events from different IT systems.
//!
//! Run with `cargo run --release --example case_study_loan`.

use gecco::core::Budget;
use gecco::discovery::{discover, filter_dfg, DiscoveryOptions, ModelComplexity};
use gecco::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = gecco::datagen::loan_log(200, 2017);
    let dfg = Dfg::from_log(&log);
    println!(
        "Loan log: {} classes from systems A/O/W, {} traces, {} DFG edges",
        log.num_classes(),
        log.traces().len(),
        dfg.num_edges()
    );
    let spaghetti = filter_dfg(&dfg, 0.8);
    println!("80/20 DFG still has {} edges — a spaghetti model (Fig. 1).", spaghetti.num_edges());

    // |g.origin| <= 1: activities must come from a single system.
    let constraints = ConstraintSet::parse("distinct(class, \"system\") <= 1; size(g) <= 8;")?;
    let result = Gecco::new(&log)
        .constraints(constraints)
        .candidates(CandidateStrategy::DfgUnbounded)
        .budget(Budget::max_checks(10_000))
        .label_by("system")
        .run()?
        .expect_abstracted();

    println!("\n{} system-pure activities:", result.grouping().len());
    for (group, name) in result.grouping().iter().zip(result.activity_names()) {
        println!("  {:<4} ← {}", name, log.format_group(group));
    }

    let before = ModelComplexity::of(&discover(&log, DiscoveryOptions::default()));
    let after = ModelComplexity::of(&discover(result.log(), DiscoveryOptions::default()));
    println!(
        "\nModel complexity: CFC {:.0} → {:.0} ({:.0}% reduction), size {} → {}",
        before.cfc,
        after.cfc,
        before.cfc_reduction(&after) * 100.0,
        before.size,
        after.size
    );
    println!("The abstracted 80/20 DFG (Fig. 8) exposes the A → O → A hand-overs");
    println!("that the constraint preserves and an unconstrained abstraction would blur.");
    Ok(())
}
