//! Pipeline-as-graph: compose a custom abstraction pipeline from nodes.
//!
//! Builds a two-source topology the fixed Step 1→2→3 chain cannot express:
//! DFG-derived candidates (Algorithm 2) are unioned with session-based
//! candidates (inactivity-gap segmentation), one selector weighs them
//! together, and a conditional edge routes an infeasible selection to a
//! diagnostics emitter instead of aborting. A three-branch fan-out then
//! compares alternative constraint formulations in a single executor run.
//!
//! Run with `cargo run --example pipeline_graph`.

use gecco::constraints::CompiledConstraintSet;
use gecco::core::graph::{
    AbstractorNode, Artifact, ArtifactKind, CandidateSourceNode, DiagnosticsNode, EdgeCond,
    ExclusiveMergeNode, InputNode, PipelineGraph, SelectorNode, SessionCandidateSourceNode,
    UnionCandidatesNode,
};
use gecco::core::selection::SelectionOptions;
use gecco::core::{AbstractionStrategy, Budget};
use gecco::eventlog::{LogIndex, Segmenter};
use gecco::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = gecco::datagen::loan_log(60, 4);
    let index = LogIndex::build(&log);
    println!("Input: {} classes, {} traces", log.num_classes(), log.traces().len());

    let constraints = ConstraintSet::parse("size(g) <= 4; distinct(instance, \"org:role\") <= 1;")?;
    let compiled = Arc::new(CompiledConstraintSet::compile(&constraints, &log)?);

    // ── A custom graph: two candidate sources feeding one selector ──────
    //
    //        input ──► dfg ─────┐
    //          │ └───► session ─┴► union ─► exclusive ─► selector
    //          │                                            │ selection
    //          └────────────────────────────────► abstractor ◄┘
    //                                             diagnostics ◄┘ infeasible
    let mut graph = PipelineGraph::new();
    let input = graph.add_node(InputNode::new(Artifact::log(&log, &index)));
    let dfg = graph.add_node(CandidateSourceNode::new(
        CandidateStrategy::DfgUnbounded,
        Budget::UNLIMITED,
        Arc::clone(&compiled),
        None,
    ));
    // Sessions: a burst of events separated by ≥ 30 minutes of inactivity
    // is offered as one candidate group.
    let session = graph.add_node(SessionCandidateSourceNode::new(
        SessionConfig::gap(30 * 60 * 1000),
        Arc::clone(&compiled),
        None,
    ));
    let union = graph.add_node(UnionCandidatesNode);
    let exclusive = graph.add_node(ExclusiveMergeNode::new(Arc::clone(&compiled), None));
    let selector = graph.add_node(SelectorNode::new(
        Arc::clone(&compiled),
        Segmenter::RepeatSplit,
        SelectionOptions::default(),
        None,
    ));
    let abstractor = graph.add_node(AbstractorNode::new(
        AbstractionStrategy::Completion,
        Segmenter::RepeatSplit,
        Some("org:role".to_string()),
        None,
    ));
    let diagnostics = graph.add_node(DiagnosticsNode::new(Arc::clone(&compiled), None));

    graph.add_edge(input, dfg);
    graph.add_edge(input, session);
    graph.add_edge(dfg, union);
    graph.add_edge(session, union);
    graph.add_edge(input, exclusive);
    graph.add_edge(union, exclusive);
    graph.add_edge(input, selector);
    graph.add_edge(exclusive, selector);
    // Conditional routing: the selector emits either a selection or an
    // infeasibility marker; exactly one downstream branch runs.
    graph.add_edge(input, abstractor);
    graph.add_edge_when(selector, abstractor, EdgeCond::IfKind(ArtifactKind::Selection));
    graph.add_edge(input, diagnostics);
    graph.add_edge(exclusive, diagnostics);
    graph.add_edge_when(selector, diagnostics, EdgeCond::IfKind(ArtifactKind::Infeasible));

    let mut run = graph.execute()?;
    let merged = run.artifact(union).and_then(Artifact::as_candidates).expect("union ran");
    println!("Union of DFG + session candidates: {} groups", merged.len());

    match run.take_artifact(abstractor).and_then(Artifact::into_abstraction) {
        Some(out) => {
            println!(
                "Abstracted to {} activities (dist = {:.2}, optimal: {}):",
                out.grouping.len(),
                out.distance,
                out.proven_optimal
            );
            for (group, name) in out.grouping.iter().zip(&out.names) {
                println!("  {:<12} ← {}", name, log.format_group(group));
            }
        }
        None => {
            let report = run
                .take_artifact(diagnostics)
                .and_then(Artifact::into_report)
                .expect("diagnostics ran instead");
            println!("Infeasible:\n{}", report.summary);
        }
    }

    // ── Fan-out: three formulations over the same log, one run ──────────
    // Independent branches share one wave; under `--features rayon` they
    // run on separate cores, bit-identical to serial execution.
    let scenarios = vec![
        constraints,
        ConstraintSet::parse("size(g) <= 2;")?,
        ConstraintSet::parse("size(g) >= 6; groups >= 4;")?, // infeasible
    ];
    let branches = gecco::core::run_fanout(&log, &scenarios, |g| {
        g.candidates(CandidateStrategy::DfgUnbounded).label_by("org:role")
    })?;
    println!("\nFan-out over {} constraint formulations:", branches.len());
    for branch in &branches {
        let r = branch.report();
        if r.feasible {
            println!(
                "  scenario {}: {} groups, dist = {:.2}, {} classes after abstraction",
                r.pass,
                r.groups,
                r.distance,
                branch.log().num_classes()
            );
        } else {
            println!("  scenario {}: infeasible — log passes through unchanged", r.pass);
        }
    }
    Ok(())
}
