//! Role-based abstraction of a simulated multi-role process, comparing
//! GECCO's three Step-1 configurations and the greedy baseline.
//!
//! Run with `cargo run --release --example role_based_abstraction`.

use gecco::core::{BeamWidth, Budget};
use gecco::prelude::*;
use gecco_constraints::CompiledConstraintSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized simulated log from the evaluation collection: 24 classes,
    // five roles, choices/concurrency/rework.
    let collection = gecco::datagen::evaluation_collection(gecco::datagen::CollectionScale::Smoke);
    let log = &collection[5].log; // the [19]-shaped log: 24 classes
    let stats = LogStats::from_log(log);
    println!(
        "Input: {} classes, {} traces, {} variants, avg |σ| = {:.1}",
        stats.num_classes, stats.num_traces, stats.num_variants, stats.avg_trace_len
    );

    let dsl = r#"
        size(g) <= 8;
        distinct(instance, "org:role") <= 1;   # one role per activity
        span("time:timestamp") <= 86400000;    # activities finish within a day
    "#;

    for (name, strategy) in [
        ("Exhaustive", CandidateStrategy::Exhaustive),
        ("DFG (unbounded)", CandidateStrategy::DfgUnbounded),
        ("DFG (beam k=5·|C|)", CandidateStrategy::DfgBeam { k: BeamWidth::PerClass(5) }),
    ] {
        let outcome = Gecco::new(log)
            .constraints(ConstraintSet::parse(dsl)?)
            .candidates(strategy)
            .budget(Budget::max_checks(5_000))
            .label_by("org:role")
            .run()?;
        match outcome {
            Outcome::Abstracted(result) => {
                println!(
                    "\n{name}: {} groups, dist = {:.3}, candidates checked = {}, {:?}",
                    result.grouping().len(),
                    result.distance(),
                    result.candidate_stats().checked,
                    result.timings().total(),
                );
                for (group, label) in result.grouping().iter().zip(result.activity_names()) {
                    if group.len() > 1 {
                        println!("  {:<12} ← {}", label, log.format_group(group));
                    }
                }
            }
            Outcome::Infeasible(report) => {
                println!("\n{name}: infeasible\n{}", report.summary);
            }
        }
    }

    // The greedy baseline for contrast (§VI-C: local optima).
    let compiled = CompiledConstraintSet::compile(&ConstraintSet::parse(dsl)?, log)?;
    let index = gecco::eventlog::LogIndex::build(log);
    let ctx = gecco::eventlog::EvalContext::new(log, &index);
    if let Some((grouping, total)) = gecco::baselines::greedy_grouping(&ctx, &compiled) {
        println!("\nGreedy baseline (BL_G): {} groups, dist = {:.3}", grouping.len(), total);
    }
    Ok(())
}
