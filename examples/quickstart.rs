//! Quickstart: abstract the paper's running example with a role constraint.
//!
//! Run with `cargo run --example quickstart`.

use gecco::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table I log: a request-handling process whose steps are
    // performed by clerks, except acceptance/rejection (manager).
    let log = gecco::datagen::running_example();
    println!("Original log ({} classes, {} traces):", log.num_classes(), log.traces().len());
    for t in log.traces() {
        println!("  {}", log.format_trace(t));
    }

    // Declare WHAT the abstraction must satisfy — not how to compute it:
    // every high-level activity may only group steps of one role.
    let constraints = ConstraintSet::parse(
        r#"
        distinct(instance, "org:role") <= 1;
        "#,
    )?;

    let outcome = Gecco::new(&log)
        .constraints(constraints)
        .candidates(CandidateStrategy::DfgUnbounded)
        .label_by("org:role")
        .run()?;

    let result = outcome.expect_abstracted();
    println!(
        "\nOptimal grouping (dist = {:.2}, proven optimal: {}):",
        result.distance(),
        result.proven_optimal()
    );
    for (group, name) in result.grouping().iter().zip(result.activity_names()) {
        println!("  {:<8} ← {}", name, log.format_group(group));
    }

    println!("\nAbstracted log:");
    for t in result.log().traces() {
        println!("  {}", result.log().format_trace(t));
    }

    // The DFG shrinks from 14 edges over 8 nodes to a simple hand-over
    // structure (the paper's Figure 2 → Figure 3).
    let before = Dfg::from_log(&log);
    let after = Dfg::from_log(result.log());
    println!(
        "\nDFG: {} nodes / {} edges  →  {} nodes / {} edges",
        log.num_classes(),
        before.num_edges(),
        result.grouping().len(),
        after.num_edges()
    );
    Ok(())
}
