//! DFG construction and variant folding scaling in log size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecco_datagen::loan_log;
use gecco_eventlog::{Dfg, Variants};

fn bench_dfg(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfg");
    group.sample_size(20);
    for traces in [100usize, 400] {
        let log = loan_log(traces, 2);
        group.bench_with_input(BenchmarkId::new("build", traces), &log, |b, log| {
            b.iter(|| Dfg::from_log(log));
        });
        group.bench_with_input(BenchmarkId::new("variants", traces), &log, |b, log| {
            b.iter(|| Variants::from_log(log));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dfg);
criterion_main!(benches);
