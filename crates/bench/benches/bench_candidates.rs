//! Candidate-computation scaling: Algorithm 1 vs Algorithm 2, plus the
//! ablations DESIGN.md calls out (beam width sweep, pruning modes) and the
//! scan-vs-indexed candidate-check comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::candidates::dfg::{dfg_candidates, NoObserver};
use gecco_core::candidates::exhaustive::exhaustive_candidates;
use gecco_core::{BeamWidth, Budget};
use gecco_datagen::{evaluation_collection, loan_log, CollectionScale};
use gecco_eventlog::{ClassSet, Dfg, EvalContext, EventLog, InstanceCache, LogIndex};

fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
    CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
}

fn bench_candidates(c: &mut Criterion) {
    let log = loan_log(100, 4);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let anti = compile(&log, "size(g) <= 4; distinct(instance, \"org:role\") <= 1;");
    let budget = Budget::max_checks(2_000);
    let mut group = c.benchmark_group("candidates");
    group.sample_size(10);
    group.bench_function("exhaustive_anti_monotonic", |b| {
        b.iter(|| exhaustive_candidates(&ctx, &anti, budget))
    });
    group.bench_function("dfg_unbounded", |b| {
        b.iter(|| dfg_candidates(&ctx, &anti, None, budget, &mut NoObserver))
    });
    // Ablation: beam width sweep (the paper's k = 5·|C_L| vs narrower).
    for k in [1usize, 24, 120] {
        group.bench_with_input(BenchmarkId::new("dfg_beam", k), &k, |b, &k| {
            b.iter(|| {
                dfg_candidates(&ctx, &anti, Some(BeamWidth::Fixed(k)), budget, &mut NoObserver)
            })
        });
    }
    // Ablation: constraint-checking-mode pruning. The same size bound
    // expressed monotonically (>=1, trivially true) disables anti-monotonic
    // pruning and forces full expansion under the same budget.
    let no_prune = compile(&log, "size(g) >= 1;");
    group.bench_function("exhaustive_no_anti_pruning", |b| {
        b.iter(|| exhaustive_candidates(&ctx, &no_prune, budget))
    });
    // Serial vs chunk-parallel hot path (gecco-core feature `rayon`, on by
    // default for this crate): identical work and bit-identical output,
    // toggled at runtime. Thread count follows RAYON_NUM_THREADS/cores; on
    // a single-core host the parallel configuration falls back to serial.
    #[cfg(feature = "rayon")]
    {
        let heavy = loan_log(400, 4);
        let heavy_index = LogIndex::build(&heavy);
        let heavy_ctx = EvalContext::new(&heavy, &heavy_index);
        let heavy_anti = compile(&heavy, "size(g) <= 4; distinct(instance, \"org:role\") <= 1;");
        let heavy_budget = Budget::max_checks(4_000);
        for (label, enabled) in [("serial", false), ("parallel", true)] {
            group.bench_with_input(
                BenchmarkId::new("dfg_unbounded_mode", label),
                &enabled,
                |b, &enabled| {
                    gecco_core::set_parallel(enabled);
                    b.iter(|| {
                        dfg_candidates(&heavy_ctx, &heavy_anti, None, heavy_budget, &mut NoObserver)
                    });
                    gecco_core::set_parallel(true);
                },
            );
            group.bench_with_input(
                BenchmarkId::new("exhaustive_mode", label),
                &enabled,
                |b, &enabled| {
                    gecco_core::set_parallel(enabled);
                    b.iter(|| exhaustive_candidates(&heavy_ctx, &heavy_anti, heavy_budget));
                    gecco_core::set_parallel(true);
                },
            );
        }
    }
    group.finish();
    bench_dfg_build(c);
    bench_check_modes(c);
}

/// DFG construction: the event-by-event log scan vs the postings-based
/// rebuild from the `LogIndex` the pipeline already owns. The candidate
/// stage always has the index at hand, so `from_index` is what Step 1 now
/// calls; `from_log` remains for index-free callers and as the oracle.
fn bench_dfg_build(c: &mut Criterion) {
    let log = loan_log(400, 4);
    let index = LogIndex::build(&log);
    let mut group = c.benchmark_group("dfg_build");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("mode", "scan"), |b| b.iter(|| Dfg::from_log(&log)));
    group.bench_function(BenchmarkId::new("mode", "postings"), |b| {
        b.iter(|| Dfg::from_index(&log, &index))
    });
    group.finish();
}

/// Scan vs indexed vs indexed+cache per-candidate checks on a collection
/// workload: 70 event classes over 90 traces, so the typical candidate's
/// classes occur in only a small fraction of the traces — exactly the shape
/// where the full-log scan wastes its time on foreign traces.
fn bench_check_modes(c: &mut Criterion) {
    let collection = evaluation_collection(CollectionScale::Full);
    let generated =
        collection.into_iter().max_by_key(|g| g.log.num_classes()).expect("collection non-empty");
    let log = generated.log;
    let index = LogIndex::build(&log);
    let constraints =
        compile(&log, "size(g) <= 4; distinct(instance, \"org:role\") <= 1; count(instance) >= 1;");
    // A realistic candidate pool: every occurring singleton plus every
    // DFG-adjacent pair (what the first two beam iterations examine).
    let dfg = Dfg::from_log(&log);
    let mut pool: Vec<ClassSet> =
        gecco_core::grouping::occurring_classes(&log).iter().map(ClassSet::singleton).collect();
    for (a, b, _) in dfg.edges() {
        if a != b {
            pool.push([a, b].into_iter().collect());
        }
    }
    let mut group = c.benchmark_group("candidate_checks");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("mode", "scan"), |b| {
        b.iter(|| pool.iter().filter(|g| constraints.holds_scan(g, &log)).count())
    });
    group.bench_function(BenchmarkId::new("mode", "indexed"), |b| {
        let ctx = EvalContext::new(&log, &index);
        b.iter(|| pool.iter().filter(|g| constraints.holds(g, &ctx)).count())
    });
    group.bench_function(BenchmarkId::new("mode", "indexed_cached"), |b| {
        // Cross-candidate cache: after the first pass every verdict is a
        // lookup (the cross-constraint-set reuse measured in table5/table6).
        let cache = InstanceCache::new();
        let ctx = EvalContext::with_cache(&log, &index, &cache);
        b.iter(|| pool.iter().filter(|g| constraints.holds(g, &ctx)).count())
    });
    group.finish();
    // Sanity: all three modes agree (cheap here; a debug aid for the bench).
    let ctx = EvalContext::new(&log, &index);
    for g in &pool {
        assert_eq!(constraints.holds(g, &ctx), constraints.holds_scan(g, &log));
    }
    bench_occurs_modes(c, &log, &index);
}

/// `occurs(g, L)` on an expansion-shaped workload: all pairs over the
/// occurring classes — exactly what Algorithms 1/2 probe when growing
/// candidates. `scan` tests trace class bitmaps (early exit on the first
/// hit), `indexed` gallops through the classes' trace-id run lists,
/// `adaptive` is the `EvalContext::occurs` dispatch candidate expansion
/// actually uses.
///
/// Two regimes: the 90-trace collection log, where the scan's early exit
/// wins, and a sharded multi-process build (3 shards × 40 replications:
/// 210 shard-local classes over 10800 traces), where most pairs never
/// co-occur — the scan pays a full pass over every trace bitmap per such
/// pair while the galloping cursors detect the disjoint run blocks in a
/// few jumps. The adaptive mode must sit near the winner on both.
fn bench_occurs_modes(c: &mut Criterion, log: &EventLog, index: &LogIndex) {
    let sharded = sharded_log(log, 3, 40);
    let sharded_index = LogIndex::build(&sharded);
    for (label, log, index) in [("90tr", log, index), ("sharded_10800tr", &sharded, &sharded_index)]
    {
        let ctx = EvalContext::new(log, index);
        let classes: Vec<_> = gecco_core::grouping::occurring_classes(log).iter().collect();
        let mut pairs: Vec<ClassSet> = Vec::new();
        for (i, &a) in classes.iter().enumerate() {
            for &b in classes.iter().skip(i + 1) {
                pairs.push([a, b].into_iter().collect());
            }
        }
        let mut group = c.benchmark_group(format!("occurs_{label}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("mode", "scan"), |b| {
            b.iter(|| pairs.iter().filter(|g| log.occurs(g)).count())
        });
        group.bench_function(BenchmarkId::new("mode", "indexed"), |b| {
            b.iter(|| pairs.iter().filter(|g| index.occurs(g)).count())
        });
        group.bench_function(BenchmarkId::new("mode", "adaptive"), |b| {
            b.iter(|| pairs.iter().filter(|g| ctx.occurs(g)).count())
        });
        group.finish();
        // Sanity: all modes agree on every pair.
        for g in &pairs {
            assert_eq!(index.occurs(g), log.occurs(g));
            assert_eq!(ctx.occurs(g), log.occurs(g));
        }
    }
}

/// Builds a multi-process event store from `log`: `shards` copies with
/// shard-local class names (`rcp#0`, `rcp#1`, …), each shard's traces
/// replicated `reps` times. Classes never cross shards, so the trace count
/// grows `shards × reps`-fold while every class's selectivity stays
/// shard-local — the co-occurrence shape of a store serving many processes.
fn sharded_log(log: &EventLog, shards: usize, reps: usize) -> EventLog {
    let mut b = gecco_eventlog::LogBuilder::new();
    for rep in 0..reps {
        for shard in 0..shards {
            for (i, trace) in log.traces().iter().enumerate() {
                let mut tb = b.trace(&format!("s{shard}-r{rep}-c{i}"));
                for event in trace.events() {
                    tb = tb
                        .event(&format!("{}#{shard}", log.class_name(event.class())))
                        .expect("shards × classes stay within MAX_CLASSES");
                }
                tb.done();
            }
        }
    }
    b.build()
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
