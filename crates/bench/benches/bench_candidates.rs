//! Candidate-computation scaling: Algorithm 1 vs Algorithm 2, plus the
//! ablations DESIGN.md calls out (beam width sweep, pruning modes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::candidates::dfg::{dfg_candidates, NoObserver};
use gecco_core::candidates::exhaustive::exhaustive_candidates;
use gecco_core::{BeamWidth, Budget};
use gecco_datagen::loan_log;
use gecco_eventlog::EventLog;

fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
    CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
}

fn bench_candidates(c: &mut Criterion) {
    let log = loan_log(100, 4);
    let anti = compile(&log, "size(g) <= 4; distinct(instance, \"org:role\") <= 1;");
    let budget = Budget::max_checks(2_000);
    let mut group = c.benchmark_group("candidates");
    group.sample_size(10);
    group.bench_function("exhaustive_anti_monotonic", |b| {
        b.iter(|| exhaustive_candidates(&log, &anti, budget))
    });
    group.bench_function("dfg_unbounded", |b| {
        b.iter(|| dfg_candidates(&log, &anti, None, budget, &mut NoObserver))
    });
    // Ablation: beam width sweep (the paper's k = 5·|C_L| vs narrower).
    for k in [1usize, 24, 120] {
        group.bench_with_input(BenchmarkId::new("dfg_beam", k), &k, |b, &k| {
            b.iter(|| {
                dfg_candidates(&log, &anti, Some(BeamWidth::Fixed(k)), budget, &mut NoObserver)
            })
        });
    }
    // Ablation: constraint-checking-mode pruning. The same size bound
    // expressed monotonically (>=1, trivially true) disables anti-monotonic
    // pruning and forces full expansion under the same budget.
    let no_prune = compile(&log, "size(g) >= 1;");
    group.bench_function("exhaustive_no_anti_pruning", |b| {
        b.iter(|| exhaustive_candidates(&log, &no_prune, budget))
    });
    // Serial vs chunk-parallel hot path (gecco-core feature `rayon`, on by
    // default for this crate): identical work and bit-identical output,
    // toggled at runtime. Thread count follows RAYON_NUM_THREADS/cores; on
    // a single-core host the parallel configuration falls back to serial.
    #[cfg(feature = "rayon")]
    {
        let heavy = loan_log(400, 4);
        let heavy_anti = compile(&heavy, "size(g) <= 4; distinct(instance, \"org:role\") <= 1;");
        let heavy_budget = Budget::max_checks(4_000);
        for (label, enabled) in [("serial", false), ("parallel", true)] {
            group.bench_with_input(
                BenchmarkId::new("dfg_unbounded_mode", label),
                &enabled,
                |b, &enabled| {
                    gecco_core::set_parallel(enabled);
                    b.iter(|| {
                        dfg_candidates(&heavy, &heavy_anti, None, heavy_budget, &mut NoObserver)
                    });
                    gecco_core::set_parallel(true);
                },
            );
            group.bench_with_input(
                BenchmarkId::new("exhaustive_mode", label),
                &enabled,
                |b, &enabled| {
                    gecco_core::set_parallel(enabled);
                    b.iter(|| exhaustive_candidates(&heavy, &heavy_anti, heavy_budget));
                    gecco_core::set_parallel(true);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
