//! Step-2 solver ablation: DLX exact cover vs simplex branch-and-bound on
//! synthetic weighted set-partitioning instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecco_solver::{SetPartitionProblem, SolveEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random partitionable instance: `n` elements, singletons (guaranteeing
/// feasibility) plus `extra` random sets of size 2–4.
fn instance(n: usize, extra: usize, seed: u64) -> SetPartitionProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = SetPartitionProblem::new(n);
    for e in 0..n {
        p.add_set(vec![e], 1.0);
    }
    for _ in 0..extra {
        let len = rng.random_range(2..=4usize.min(n));
        let mut members: Vec<usize> = (0..n).collect();
        for i in (1..members.len()).rev() {
            members.swap(i, rng.random_range(0..=i));
        }
        members.truncate(len);
        p.add_set(members, 0.3 + rng.random::<f64>());
    }
    p
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("setpart");
    group.sample_size(10);
    for (n, extra) in [(12usize, 30usize), (20, 80)] {
        let p = instance(n, extra, 99);
        group.bench_with_input(BenchmarkId::new("dlx", format!("{n}x{extra}")), &p, |b, p| {
            b.iter(|| p.solve(SolveEngine::Dlx).expect("feasible"))
        });
        group.bench_with_input(
            BenchmarkId::new("simplex_bnb", format!("{n}x{extra}")),
            &p,
            |b, p| b.iter(|| p.solve(SolveEngine::SimplexBnb).expect("feasible")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
