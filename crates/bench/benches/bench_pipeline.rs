//! End-to-end pipeline routes: the graph executor vs the linear oracle on
//! a single pass, and the multi-branch fan-out serial vs parallel.
//!
//! The graph route must cost no more than artifact bookkeeping over the
//! linear chain (the steps themselves are identical code), and a fan-out's
//! parallel speed-up must come with bit-identical outputs — the
//! `graph_equivalence` suite asserts the identity, this bench watches the
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecco_constraints::ConstraintSet;
use gecco_core::{run_fanout, CandidateStrategy, Gecco};
use gecco_datagen::loan_log;

fn role_constraints() -> ConstraintSet {
    ConstraintSet::parse("size(g) <= 4; distinct(instance, \"org:role\") <= 1;").unwrap()
}

fn bench_pipeline(c: &mut Criterion) {
    // Kept deliberately small: each iteration runs candidate generation,
    // MIP selection, and abstraction end to end, and selection cost grows
    // superlinearly with the log.
    let log = loan_log(40, 4);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(5);
    for (label, graph_route) in [("linear", false), ("graph", true)] {
        group.bench_with_input(BenchmarkId::new("single_pass", label), &graph_route, |b, &g| {
            b.iter(|| {
                let gecco = Gecco::new(&log)
                    .constraints(role_constraints())
                    .candidates(CandidateStrategy::DfgUnbounded)
                    .label_by("org:role");
                if g { gecco.run() } else { gecco.run_linear() }.unwrap()
            })
        });
    }
    // A three-branch fan-out: independent constraint formulations abstract
    // the same log in one executor wave. Under the `rayon` feature (on by
    // default here) the branches spread over cores; serial mode pins the
    // baseline. On a single-core host both configurations coincide.
    // Every branch keeps the role cap: without it the candidate pool (and
    // the selection MIP) explodes and the bench stops measuring executor
    // overhead.
    let sets = vec![
        role_constraints(),
        ConstraintSet::parse("size(g) <= 2; distinct(instance, \"org:role\") <= 1;").unwrap(),
        ConstraintSet::parse(
            "size(g) <= 3; count(instance) >= 2; distinct(instance, \"org:role\") <= 1;",
        )
        .unwrap(),
    ];
    #[cfg(feature = "rayon")]
    let modes: &[(&str, bool)] = &[("serial", false), ("parallel", true)];
    #[cfg(not(feature = "rayon"))]
    let modes: &[(&str, bool)] = &[("serial", false)];
    for &(label, enabled) in modes {
        group.bench_with_input(BenchmarkId::new("fanout_3_branches", label), &enabled, |b, &e| {
            gecco_core::set_parallel(e);
            b.iter(|| {
                run_fanout(&log, &sets, |g| {
                    g.candidates(CandidateStrategy::DfgUnbounded).label_by("org:role")
                })
                .unwrap()
            });
            gecco_core::set_parallel(false);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
