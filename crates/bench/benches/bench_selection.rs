//! Step-2 selection ablation: the presolved/decomposed/parallel pipeline
//! versus the seed single solve, on both engines.
//!
//! Four instance shapes:
//! * `fig7_pool` — a candidate pool at the scale of the paper's Fig. 7
//!   (one connected block, overlapping candidates, duplicates);
//! * `single_block` — one dense component where only dedup/dominance and
//!   the warm start/lower bound can help;
//! * `multi_component` — many independent blocks, the shape where
//!   connected-component decomposition (and, under `rayon`, the parallel
//!   component fan-out) pays off;
//! * `multi_component_bounded` — the same blocks under global
//!   `count(groups)` bounds, exercising the cardinality-aware component
//!   DP: decomposition must stay within ~2× of the unbounded variant
//!   even though component solutions can no longer be combined freely.
//!
//! Configs: `engine/{dlx,bnb} × presolve/{off,on}`, plus a `par` variant
//! of the presolved runs when parallelism is compiled in (identical
//! results, different wall-clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecco_core::{parallel_enabled, set_parallel, solve_set_partition, SelectionOptions};
use gecco_solver::{SetPartitionProblem, SolveEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One feasible block over `[base, base + n)`: singletons (guaranteeing
/// feasibility) plus `extra` random sets of size 2–4, plus a few
/// duplicates of existing sets at a different cost.
fn add_block(p: &mut SetPartitionProblem, base: usize, n: usize, extra: usize, rng: &mut StdRng) {
    let mut added: Vec<Vec<usize>> = Vec::new();
    for e in 0..n {
        p.add_set(vec![base + e], 0.8 + rng.random::<f64>() * 0.4);
    }
    for _ in 0..extra {
        let len = rng.random_range(2..=4usize.min(n));
        let mut members: Vec<usize> = (base..base + n).collect();
        for i in (1..members.len()).rev() {
            members.swap(i, rng.random_range(0..=i));
        }
        members.truncate(len);
        members.sort_unstable();
        p.add_set(members.clone(), 0.3 + rng.random::<f64>() * len as f64);
        added.push(members);
    }
    // Duplicates: every fourth extra set re-added at a different cost.
    for members in added.iter().step_by(4) {
        p.add_set(members.clone(), 0.3 + rng.random::<f64>() * members.len() as f64);
    }
}

/// A pool at the scale of Fig. 7: 8 classes, overlapping candidates.
fn fig7_pool() -> SetPartitionProblem {
    let mut p = SetPartitionProblem::new(8);
    add_block(&mut p, 0, 8, 24, &mut StdRng::seed_from_u64(7));
    p
}

/// One dense 24-element component with 96 extra sets.
fn single_block() -> SetPartitionProblem {
    let mut p = SetPartitionProblem::new(24);
    add_block(&mut p, 0, 24, 96, &mut StdRng::seed_from_u64(24));
    p
}

/// Eight independent 8-element blocks (24 extra sets each): the
/// decomposition showcase.
fn multi_component() -> SetPartitionProblem {
    let mut rng = StdRng::seed_from_u64(64);
    let blocks = 8;
    let mut p = SetPartitionProblem::new(8 * blocks);
    for b in 0..blocks {
        add_block(&mut p, 8 * b, 8, 24, &mut rng);
    }
    p
}

/// The same eight blocks with global group-count bounds. Before the
/// cardinality frontier DP, bounds forced one monolithic solve; with it
/// the instance decomposes and should land within ~2× of the unbounded
/// decomposed solve.
fn multi_component_bounded() -> SetPartitionProblem {
    let mut p = multi_component();
    p.min_sets = Some(24);
    p.max_sets = Some(56);
    p
}

fn bench_selection(c: &mut Criterion) {
    let instances = [
        ("fig7_pool", fig7_pool()),
        ("single_block", single_block()),
        ("multi_component", multi_component()),
        ("multi_component_bounded", multi_component_bounded()),
    ];
    for (name, problem) in instances {
        let mut group = c.benchmark_group(format!("selection_{name}"));
        group.sample_size(10);
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let tag = match engine {
                SolveEngine::Dlx => "dlx",
                SolveEngine::SimplexBnb => "bnb",
            };
            for presolve in [false, true] {
                let options = SelectionOptions { engine, presolve, ..Default::default() };
                let label = if presolve { "on" } else { "off" };
                set_parallel(false);
                group.bench_with_input(
                    BenchmarkId::new(format!("{tag}_presolve"), label),
                    &problem,
                    |b, p| b.iter(|| solve_set_partition(p, options).expect("feasible")),
                );
            }
            // Parallel component fan-out (bit-identical, different clock).
            set_parallel(true);
            if parallel_enabled() {
                let options = SelectionOptions { engine, ..Default::default() };
                group.bench_with_input(
                    BenchmarkId::new(format!("{tag}_presolve"), "on_par"),
                    &problem,
                    |b, p| b.iter(|| solve_set_partition(p, options).expect("feasible")),
                );
            }
            set_parallel(true);
        }
        group.finish();
    }
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
