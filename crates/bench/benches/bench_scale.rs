//! Production-scale end-to-end bench: streaming log generation throughput
//! plus enumerated-vs-column-generation Step-2 selection as the candidate
//! pool outgrows enumeration.
//!
//! Four groups:
//! * `datagen_stream` — chunked simulate-and-serialize throughput
//!   ([`write_xes_stream`] into a sink), the path the `datagen` binary
//!   drives for million-trace logs;
//! * `scale_enumerated` — full pool enumeration + presolved solve, on
//!   production trees of growing class count (the route that stops
//!   scaling: its cost is proportional to the pool);
//! * `scale_colgen` — the lazy route on the same logs plus a class count
//!   past the enumerated sweep. The run prints `pool=` lines so the
//!   enumerated-pool / priced-columns ratio behind the ≥10× claim is
//!   visible in the output;
//! * `scale_dense` — the headline configs (`size(g) ≤ 6`, trace length
//!   scaled with the class count). The enumerated route needs 12.7 s on
//!   the 16-class instance (pool 11,541) and did not finish a 400 s
//!   calibration timeout on the 32-class one (pool 122,992); column
//!   generation solves the 32-class pool — 10.7× the largest
//!   enumerated-handled pool — in 37.2 s with the warm-started revised
//!   master (76.8 s before it, on the rebuilt-per-round dense tableau).
//!   The group also sweeps the master phase on the 16-class instance:
//!   `master/{dense,revised}` × smoothing on (`master/...`) / off
//!   (`master/...-plain`).
//!
//! `GECCO_SCALE=smoke` shrinks every size for CI (and skips the dense
//! group); `GECCO_SCALE=deep` additionally runs the 40-class instance
//! whose implicit pool holds 4.6M candidates (enumeration alone takes
//! ~158 s; the colgen solve runs for hours — budget accordingly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::candidates::exhaustive::exhaustive_candidates;
use gecco_core::{
    select_optimal, select_optimal_colgen, Budget, ColGenMode, DistanceOracle, MasterEngine,
    SelectionOptions,
};
use gecco_datagen::{production_tree, simulate, write_xes_stream, SimulationOptions};
use gecco_eventlog::{EvalContext, EventLog, LogIndex, Segmenter};

fn smoke() -> bool {
    std::env::var("GECCO_SCALE").is_ok_and(|v| v == "smoke")
}

fn sim_options(num_traces: usize) -> SimulationOptions {
    SimulationOptions { num_traces, seed: 77, ..Default::default() }
}

/// A production log over `classes` event classes.
fn production_log(classes: usize, traces: usize) -> EventLog {
    let tree = production_tree(classes, 12, 0xACE + classes as u64);
    simulate(&tree, &sim_options(traces))
}

fn compile(log: &EventLog) -> CompiledConstraintSet {
    // The paper-style shape constraint: bounded group size keeps both
    // routes on the same implicit pool (all co-occurring groups of ≤ 4
    // classes that hold), which still grows combinatorially in |C_L|.
    CompiledConstraintSet::compile(&ConstraintSet::parse("size(g) <= 4;").unwrap(), log).unwrap()
}

fn bench_datagen_stream(c: &mut Criterion) {
    let (traces, chunk) = if smoke() { (500, 100) } else { (5_000, 1_000) };
    let tree = production_tree(40, 12, 7);
    // Event count for throughput reporting (same seed as the measured run).
    let events = simulate(&tree, &sim_options(traces)).num_events() as u64;

    let mut group = c.benchmark_group("datagen_stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    group.bench_function(BenchmarkId::new("production", traces), |b| {
        b.iter(|| {
            let mut sink = std::io::sink();
            write_xes_stream(&tree, &sim_options(traces), chunk, &mut sink).unwrap()
        })
    });
    group.finish();
}

fn bench_scale_selection(c: &mut Criterion) {
    // Class counts. The enumerated route materializes and prices the whole
    // pool, so it only gets the small end; colgen continues past it.
    let (enumerated_sizes, colgen_sizes, traces): (&[usize], &[usize], usize) = if smoke() {
        (&[8, 12], &[8, 12, 20], 60)
    } else {
        (&[8, 12, 16, 20], &[8, 12, 16, 20, 28], 100)
    };

    let mut group = c.benchmark_group("scale_enumerated");
    // Full-preset solves run whole seconds; a handful of samples is enough.
    group.sample_size(3);
    for &classes in enumerated_sizes {
        let log = production_log(classes, traces);
        let compiled = compile(&log);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let pool = exhaustive_candidates(&ctx, &compiled, Budget::UNLIMITED);
        println!("pool= classes={classes} enumerated_pool={}", pool.len());
        group.bench_with_input(BenchmarkId::new("classes", classes), &log, |b, log| {
            b.iter(|| {
                let pool = exhaustive_candidates(&ctx, &compiled, Budget::UNLIMITED);
                select_optimal(
                    log,
                    pool.groups(),
                    &oracle,
                    compiled.group_count_bounds(),
                    SelectionOptions::default(),
                )
                .expect("feasible")
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scale_colgen");
    group.sample_size(3);
    for &classes in colgen_sizes {
        let log = production_log(classes, traces);
        let compiled = compile(&log);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let options = SelectionOptions { column_generation: ColGenMode::On, ..Default::default() };
        let selection =
            select_optimal_colgen(&log, &compiled, &oracle, compiled.group_count_bounds(), options)
                .expect("feasible");
        let pricing = selection.pricing.expect("lazy route ran");
        println!(
            "pool= classes={classes} colgen_examined={} columns_emitted={} sketch_pruned={}",
            pricing.groups_examined, pricing.columns_emitted, pricing.sketch_pruned
        );
        group.bench_with_input(BenchmarkId::new("classes", classes), &log, |b, log| {
            b.iter(|| {
                select_optimal_colgen(
                    log,
                    &compiled,
                    &oracle,
                    compiled.group_count_bounds(),
                    options,
                )
                .expect("feasible")
            })
        });
    }
    group.finish();
}

/// The headline comparison: `size(g) ≤ 6` with trace length scaled to
/// the class count, the configuration where the enumerated route falls
/// over while the lazy route keeps pricing only the columns it needs.
fn bench_scale_dense(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let deep = std::env::var("GECCO_SCALE").is_ok_and(|v| v == "deep");
    // (classes, target trace length). 16 → pool 11,541; 32 → 122,992;
    // 40 → 4,598,478 (enumeration alone takes ~158 s, hence deep-only).
    let enumerated_configs: &[(usize, usize)] = &[(16, 16)];
    let colgen_configs: &[(usize, usize)] =
        if deep { &[(16, 16), (32, 24), (40, 24)] } else { &[(16, 16), (32, 24)] };
    let traces = 100;

    let dense_log = |classes: usize, len: usize| {
        let tree = production_tree(classes, len, 0xACE + classes as u64);
        simulate(&tree, &sim_options(traces))
    };
    let dense_compile = |log: &EventLog| {
        CompiledConstraintSet::compile(&ConstraintSet::parse("size(g) <= 6;").unwrap(), log)
            .unwrap()
    };

    let mut group = c.benchmark_group("scale_dense");
    // Individual solves run for seconds to minutes; one calibrated sample
    // (plus the warmup call) is plenty for a median at this scale.
    group.sample_size(1);
    for &(classes, len) in enumerated_configs {
        let log = dense_log(classes, len);
        let compiled = dense_compile(&log);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let pool = exhaustive_candidates(&ctx, &compiled, Budget::UNLIMITED);
        println!("pool= dense classes={classes} enumerated_pool={}", pool.len());
        group.bench_with_input(BenchmarkId::new("enumerated", classes), &log, |b, log| {
            b.iter(|| {
                let pool = exhaustive_candidates(&ctx, &compiled, Budget::UNLIMITED);
                select_optimal(
                    log,
                    pool.groups(),
                    &oracle,
                    compiled.group_count_bounds(),
                    SelectionOptions::default(),
                )
                .expect("feasible")
            })
        });
    }
    for &(classes, len) in colgen_configs {
        let log = dense_log(classes, len);
        let compiled = dense_compile(&log);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let options = SelectionOptions { column_generation: ColGenMode::On, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("colgen", classes), &log, |b, log| {
            b.iter(|| {
                select_optimal_colgen(
                    log,
                    &compiled,
                    &oracle,
                    compiled.group_count_bounds(),
                    options,
                )
                .expect("feasible")
            })
        });
        let selection =
            select_optimal_colgen(&log, &compiled, &oracle, compiled.group_count_bounds(), options)
                .expect("feasible");
        let pricing = selection.pricing.expect("lazy route ran");
        println!(
            "pool= dense classes={classes} colgen_examined={} columns_emitted={} sketch_pruned={}",
            pricing.groups_examined, pricing.columns_emitted, pricing.sketch_pruned
        );
    }
    // Master-phase sweep: dense tableau versus warm-started revised
    // simplex, Wentges smoothing on and off, on the 16-class instance.
    // (All four variants return bit-identical selections — the
    // equivalence suites assert that — so this isolates the master
    // solve cost; the 32-class dense master alone would dominate the
    // whole bench run, hence the small instance.)
    let (classes, len) = (16usize, 16usize);
    let log = dense_log(classes, len);
    let compiled = dense_compile(&log);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
    for (name, master, smoothing) in [
        ("master/revised", MasterEngine::Revised, true),
        ("master/revised-plain", MasterEngine::Revised, false),
        ("master/dense", MasterEngine::Dense, true),
        ("master/dense-plain", MasterEngine::Dense, false),
    ] {
        let options = SelectionOptions {
            column_generation: ColGenMode::On,
            colgen_master: master,
            colgen_smoothing: smoothing,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new(name, classes), &log, |b, log| {
            b.iter(|| {
                select_optimal_colgen(
                    log,
                    &compiled,
                    &oracle,
                    compiled.group_count_bounds(),
                    options,
                )
                .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datagen_stream, bench_scale_selection, bench_scale_dense);
criterion_main!(benches);
