//! XES parse/write throughput on simulated logs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gecco_datagen::loan_log;
use gecco_eventlog::xes;

fn bench_xes(c: &mut Criterion) {
    let mut group = c.benchmark_group("xes");
    group.sample_size(10);
    for traces in [50usize, 200] {
        let log = loan_log(traces, 1);
        let text = xes::write_string(&log);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("write", traces), &log, |b, log| {
            b.iter(|| xes::write_string(log));
        });
        group.bench_with_input(BenchmarkId::new("parse", traces), &text, |b, text| {
            b.iter(|| xes::parse_str(text).expect("valid"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xes);
criterion_main!(benches);
