//! Instance segmentation (`inst`) and distance evaluation (Eq. 1) costs —
//! the inner loop of candidate checking — scan vs indexed.

use criterion::{criterion_group, criterion_main, Criterion};
use gecco_core::{group_distance, group_distance_scan};
use gecco_datagen::loan_log;
use gecco_eventlog::{instances, ClassSet, EvalContext, LogIndex, Segmenter};
use std::ops::ControlFlow;

fn bench_instances(c: &mut Criterion) {
    let log = loan_log(200, 3);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    // A mid-sized group: the first 4 application-system classes.
    let group: ClassSet =
        log.classes().ids().filter(|&cid| log.class_name(cid).starts_with("A_")).take(4).collect();
    let mut g = c.benchmark_group("instances");
    g.bench_function("segment_log_scan", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in log.traces() {
                n += instances(t, &group, Segmenter::RepeatSplit).len();
            }
            n
        })
    });
    g.bench_function("segment_log_indexed", |b| {
        b.iter(|| {
            let mut n = 0usize;
            let _: Option<()> = ctx.visit_instances(&group, Segmenter::RepeatSplit, |_, _| {
                n += 1;
                ControlFlow::Continue(())
            });
            n
        })
    });
    g.bench_function("group_distance_scan", |b| {
        b.iter(|| group_distance_scan(&log, &group, Segmenter::RepeatSplit))
    });
    g.bench_function("group_distance_indexed", |b| {
        b.iter(|| group_distance(&ctx, &group, Segmenter::RepeatSplit))
    });
    g.finish();
}

criterion_group!(benches, bench_instances);
criterion_main!(benches);
