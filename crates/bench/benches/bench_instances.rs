//! Instance segmentation (`inst`) and distance evaluation (Eq. 1) costs —
//! the inner loop of candidate checking — scan vs indexed, plus Step-3
//! index maintenance: incremental splice vs full rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gecco_core::abstraction::{abstract_log, activity_names, AbstractionStrategy};
use gecco_core::{group_distance, group_distance_scan, Grouping};
use gecco_datagen::{evaluation_collection, loan_log, CollectionScale};
use gecco_eventlog::{instances, ClassSet, EvalContext, LogIndex, Segmenter};
use std::ops::ControlFlow;

fn bench_instances(c: &mut Criterion) {
    let log = loan_log(200, 3);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    // A mid-sized group: the first 4 application-system classes.
    let group: ClassSet =
        log.classes().ids().filter(|&cid| log.class_name(cid).starts_with("A_")).take(4).collect();
    let mut g = c.benchmark_group("instances");
    g.bench_function("segment_log_scan", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in log.traces() {
                n += instances(t, &group, Segmenter::RepeatSplit).len();
            }
            n
        })
    });
    g.bench_function("segment_log_indexed", |b| {
        b.iter(|| {
            let mut n = 0usize;
            let _: Option<()> = ctx.visit_instances(&group, Segmenter::RepeatSplit, |_, _| {
                n += 1;
                ControlFlow::Continue(())
            });
            n
        })
    });
    g.bench_function("group_distance_scan", |b| {
        b.iter(|| group_distance_scan(&log, &group, Segmenter::RepeatSplit))
    });
    g.bench_function("group_distance_indexed", |b| {
        b.iter(|| group_distance(&ctx, &group, Segmenter::RepeatSplit))
    });
    g.finish();
    bench_abstraction_index(c);
}

/// Step-3 index maintenance on the 70-class collection log: ending up with
/// `(L', index)` by splicing during the rewrite (`incremental`) vs
/// rebuilding from scratch afterwards (`rebuild`, the pre-incremental
/// behavior of every pipeline pass). The `rebuild` configuration also pays
/// the (cheap) splice `abstract_log` now always performs, so the measured
/// gap *understates* the win slightly.
fn bench_abstraction_index(c: &mut Criterion) {
    let collection = evaluation_collection(CollectionScale::Full);
    let generated =
        collection.into_iter().max_by_key(|g| g.log.num_classes()).expect("collection non-empty");
    let log = generated.log;
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    // A deterministic mid-coarseness grouping: occurring classes chunked
    // five at a time (abstraction itself does not require an exact cover).
    let ids: Vec<_> = gecco_core::grouping::occurring_classes(&log).iter().collect();
    let groups: Vec<ClassSet> =
        ids.chunks(5).map(|chunk| chunk.iter().copied().collect()).collect();
    let grouping = Grouping::new(groups);
    let names = activity_names(&log, &grouping, None);
    let mut g = c.benchmark_group("abstraction_index");
    // The configurations differ by one `LogIndex::build` over the (small)
    // abstracted log; enough samples to keep the median stable against
    // container noise.
    g.sample_size(40);
    g.bench_function(BenchmarkId::new("config", "rebuild"), |b| {
        b.iter(|| {
            let (abstracted, _spliced) = abstract_log(
                &ctx,
                &grouping,
                &names,
                AbstractionStrategy::Completion,
                Segmenter::RepeatSplit,
            );
            LogIndex::build(&abstracted)
        })
    });
    g.bench_function(BenchmarkId::new("config", "incremental"), |b| {
        b.iter(|| {
            let (_abstracted, spliced) = abstract_log(
                &ctx,
                &grouping,
                &names,
                AbstractionStrategy::Completion,
                Segmenter::RepeatSplit,
            );
            spliced
        })
    });
    g.finish();
    // Sanity (debug aid for the bench): the two configurations agree.
    let (abstracted, spliced) = abstract_log(
        &ctx,
        &grouping,
        &names,
        AbstractionStrategy::Completion,
        Segmenter::RepeatSplit,
    );
    assert_eq!(spliced, LogIndex::build(&abstracted));
}

criterion_group!(benches, bench_instances);
criterion_main!(benches);
