//! Instance segmentation (`inst`) and distance evaluation (Eq. 1) costs —
//! the inner loop of candidate checking.

use criterion::{criterion_group, criterion_main, Criterion};
use gecco_core::group_distance;
use gecco_datagen::loan_log;
use gecco_eventlog::{instances, ClassSet, Segmenter};

fn bench_instances(c: &mut Criterion) {
    let log = loan_log(200, 3);
    // A mid-sized group: the first 4 application-system classes.
    let group: ClassSet =
        log.classes().ids().filter(|&cid| log.class_name(cid).starts_with("A_")).take(4).collect();
    let mut g = c.benchmark_group("instances");
    g.bench_function("segment_log", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in log.traces() {
                n += instances(t, &group, Segmenter::RepeatSplit).len();
            }
            n
        })
    });
    g.bench_function("group_distance", |b| {
        b.iter(|| group_distance(&log, &group, Segmenter::RepeatSplit))
    });
    g.finish();
}

criterion_group!(benches, bench_instances);
criterion_main!(benches);
