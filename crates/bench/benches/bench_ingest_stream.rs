//! Streaming-ingestion throughput: the whole-document in-memory parse vs
//! the incremental reader (`parse_reader`, bounded scan window) vs the
//! full store route (`ingest_to_store` + `load_log`, traces spilled to
//! disk and read back), serial and parallel.
//!
//! The in-memory parse is the ceiling — it sees the whole document at
//! once and never touches disk. `stream_reader` pays for windowed
//! scanning and per-batch fragment merging; `store_round_trip`
//! additionally pays columnar encode/decode and segment-file I/O. The
//! numbers quantify the cost of the 256 MB ingestion ceiling the CI
//! smoke enforces.
//!
//! `GECCO_SCALE=smoke` shrinks the input for CI.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gecco_datagen::loan_log;
use gecco_eventlog::{ingest_to_store, set_parallel, xes, IngestOptions};
use std::path::PathBuf;

fn smoke() -> bool {
    std::env::var("GECCO_SCALE").is_ok_and(|v| v == "smoke")
}

fn store_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("bench-ingest-{}", std::process::id()))
}

fn bench_ingest_stream(c: &mut Criterion) {
    let traces = if smoke() { 100 } else { 2_000 };
    let text = xes::write_string(&loan_log(traces, 1));
    let mb = text.len() as f64 / 1e6;
    let options = IngestOptions::default();
    let dir = store_dir();

    // Cross-check once: every route lands on the same bytes.
    let expect = xes::parse_str(&text).expect("pipeline accepts the input");
    let streamed = xes::parse_reader(text.as_bytes(), &options).expect("reader accepts");
    assert_eq!(expect.traces(), streamed.traces());
    let store = ingest_to_store(text.as_bytes(), &dir, &options).expect("store ingest");
    assert_eq!(expect.traces(), store.load_log().expect("store load").traces());

    let mut group = c.benchmark_group(format!("ingest_stream_{mb:.1}MB"));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    for (label, parallel) in [("serial", false), ("rayon", true)] {
        set_parallel(parallel);
        group.bench_with_input(format!("in_memory_{label}"), &text, |b, text| {
            b.iter(|| xes::parse_str(text).expect("valid"));
        });
        group.bench_with_input(format!("stream_reader_{label}"), &text, |b, text| {
            b.iter(|| xes::parse_reader(text.as_bytes(), &options).expect("valid"));
        });
        group.bench_with_input(format!("store_round_trip_{label}"), &text, |b, text| {
            b.iter(|| {
                let store = ingest_to_store(text.as_bytes(), &dir, &options).expect("store ingest");
                store.load_log().expect("store load")
            });
        });
    }
    set_parallel(true);
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_ingest_stream);
criterion_main!(benches);
