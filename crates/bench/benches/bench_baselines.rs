//! End-to-end baseline costs vs GECCO on the loan log.

use criterion::{criterion_group, criterion_main, Criterion};
use gecco_baselines::{greedy_grouping, query_candidates, spectral_partitioning};
use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::{Budget, CandidateStrategy, Gecco};
use gecco_datagen::loan_log;
use gecco_eventlog::{EvalContext, LogIndex};

fn bench_baselines(c: &mut Criterion) {
    let log = loan_log(80, 5);
    let dsl = "size(g) <= 5;";
    let compiled =
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), &log).unwrap();
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("blq_query", |b| b.iter(|| query_candidates(&ctx, &compiled, 5)));
    group.bench_function("blp_spectral", |b| {
        b.iter(|| spectral_partitioning(&log, 12).expect("feasible"))
    });
    group.bench_function("blg_greedy", |b| {
        b.iter(|| greedy_grouping(&ctx, &compiled).expect("feasible"))
    });
    group.bench_function("gecco_dfg_beam", |b| {
        b.iter(|| {
            Gecco::new(&log)
                .constraints(ConstraintSet::parse(dsl).unwrap())
                .candidates(CandidateStrategy::DfgBeam { k: gecco_core::BeamWidth::PerClass(5) })
                .budget(Budget::max_checks(2_000))
                .run()
                .expect("compiles")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
