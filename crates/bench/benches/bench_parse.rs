//! Ingestion throughput: the seed (pre-chunking) parser vs the chunked
//! pipeline, serial and parallel, on a generated multi-MB log.
//!
//! `seed` is a frozen copy of the original char-level, String-allocating
//! XML parser and XES reader (and the line-based CSV importer) as of the
//! pre-pipeline tree — kept here, and only here, as the baseline this
//! rewrite has to beat. `chunked_serial` / `chunked_rayon` run the live
//! `gecco_eventlog` pipeline with the runtime parallelism toggle off / on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gecco_datagen::loan_log;
use gecco_eventlog::{csv, set_parallel, xes};

/// Frozen seed implementation. Do not fix bugs or optimize here — its whole
/// purpose is to measure what the pipeline replaced. (It still contains the
/// class-attribute misfiling bug; the generated benchmark input gives every
/// class at most one attribute, so the measured work is representative.)
mod seed {
    pub mod xml {
        use gecco_eventlog::{Error, Result};

        #[derive(Debug, Clone, PartialEq)]
        pub enum XmlEvent {
            StartElement { name: String, attributes: Vec<(String, String)>, self_closing: bool },
            EndElement { name: String },
            Text(String),
        }

        #[derive(Debug)]
        pub struct XmlParser<'a> {
            input: &'a [u8],
            pos: usize,
            line: usize,
            pending_end: Option<String>,
            open: Vec<String>,
        }

        impl<'a> XmlParser<'a> {
            pub fn new(input: &'a str) -> Self {
                XmlParser {
                    input: input.as_bytes(),
                    pos: 0,
                    line: 1,
                    pending_end: None,
                    open: Vec::new(),
                }
            }

            pub fn line(&self) -> usize {
                self.line
            }

            fn err(&self, message: impl Into<String>) -> Error {
                Error::Xml { line: self.line, message: message.into() }
            }

            #[inline]
            fn peek(&self) -> Option<u8> {
                self.input.get(self.pos).copied()
            }

            #[inline]
            fn bump(&mut self) -> Option<u8> {
                let b = self.peek()?;
                self.pos += 1;
                if b == b'\n' {
                    self.line += 1;
                }
                Some(b)
            }

            fn skip_whitespace(&mut self) {
                while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.bump();
                }
            }

            fn expect(&mut self, b: u8) -> Result<()> {
                match self.bump() {
                    Some(got) if got == b => Ok(()),
                    Some(got) => {
                        Err(self.err(format!("expected `{}`, found `{}`", b as char, got as char)))
                    }
                    None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
                }
            }

            fn starts_with(&self, s: &[u8]) -> bool {
                self.input[self.pos..].starts_with(s)
            }

            fn advance_over(&mut self, s: &[u8]) {
                for _ in 0..s.len() {
                    self.bump();
                }
            }

            fn skip_until(&mut self, until: &[u8]) -> Result<()> {
                while self.pos < self.input.len() {
                    if self.starts_with(until) {
                        self.advance_over(until);
                        return Ok(());
                    }
                    self.bump();
                }
                Err(self.err(format!(
                    "unterminated construct; expected `{}`",
                    String::from_utf8_lossy(until)
                )))
            }

            fn read_name(&mut self) -> Result<String> {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    let ok = b.is_ascii_alphanumeric()
                        || matches!(b, b'_' | b'-' | b'.' | b':')
                        || b >= 0x80;
                    if !ok {
                        break;
                    }
                    self.bump();
                }
                if self.pos == start {
                    return Err(self.err("expected a name"));
                }
                Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
            }

            fn decode_entities(&self, raw: &str) -> Result<String> {
                if !raw.contains('&') {
                    return Ok(raw.to_string());
                }
                let mut out = String::with_capacity(raw.len());
                let mut rest = raw;
                while let Some(amp) = rest.find('&') {
                    out.push_str(&rest[..amp]);
                    rest = &rest[amp..];
                    let semi =
                        rest.find(';').ok_or_else(|| self.err("unterminated entity reference"))?;
                    let ent = &rest[1..semi];
                    match ent {
                        "amp" => out.push('&'),
                        "lt" => out.push('<'),
                        "gt" => out.push('>'),
                        "quot" => out.push('"'),
                        "apos" => out.push('\''),
                        _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                            let code = u32::from_str_radix(&ent[2..], 16)
                                .map_err(|_| self.err("bad character reference"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ if ent.starts_with('#') => {
                            let code = ent[1..]
                                .parse::<u32>()
                                .map_err(|_| self.err("bad character reference"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err(format!("unknown entity `&{ent};`"))),
                    }
                    rest = &rest[semi + 1..];
                }
                out.push_str(rest);
                Ok(out)
            }

            fn read_attribute_value(&mut self) -> Result<String> {
                let quote = match self.bump() {
                    Some(q @ (b'"' | b'\'')) => q,
                    _ => return Err(self.err("expected quoted attribute value")),
                };
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == quote {
                        let raw =
                            String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                        self.bump();
                        return self.decode_entities(&raw);
                    }
                    if b == b'<' {
                        return Err(self.err("`<` not allowed in attribute value"));
                    }
                    self.bump();
                }
                Err(self.err("unterminated attribute value"))
            }

            pub fn next_event(&mut self) -> Result<Option<XmlEvent>> {
                if let Some(name) = self.pending_end.take() {
                    return Ok(Some(XmlEvent::EndElement { name }));
                }
                loop {
                    if self.pos >= self.input.len() {
                        if let Some(open) = self.open.last() {
                            return Err(
                                self.err(format!("unexpected end of input; `<{open}>` not closed"))
                            );
                        }
                        return Ok(None);
                    }
                    if self.peek() != Some(b'<') {
                        let start = self.pos;
                        while self.peek().is_some_and(|b| b != b'<') {
                            self.bump();
                        }
                        let raw =
                            String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                        let text = self.decode_entities(&raw)?;
                        if text.chars().all(char::is_whitespace) {
                            continue;
                        }
                        return Ok(Some(XmlEvent::Text(text)));
                    }
                    if self.starts_with(b"<?") {
                        self.skip_until(b"?>")?;
                        continue;
                    }
                    if self.starts_with(b"<!--") {
                        self.skip_until(b"-->")?;
                        continue;
                    }
                    if self.starts_with(b"<![CDATA[") {
                        self.advance_over(b"<![CDATA[");
                        let start = self.pos;
                        while self.pos < self.input.len() && !self.starts_with(b"]]>") {
                            self.bump();
                        }
                        let text =
                            String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                        self.skip_until(b"]]>")?;
                        return Ok(Some(XmlEvent::Text(text)));
                    }
                    if self.starts_with(b"<!") {
                        self.skip_until(b">")?;
                        continue;
                    }
                    if self.starts_with(b"</") {
                        self.advance_over(b"</");
                        let name = self.read_name()?;
                        self.skip_whitespace();
                        self.expect(b'>')?;
                        match self.open.pop() {
                            Some(expected) if expected == name => {}
                            Some(expected) => {
                                return Err(self.err(format!(
                                    "mismatched `</{name}>`; expected `</{expected}>`"
                                )))
                            }
                            None => {
                                return Err(
                                    self.err(format!("closing `</{name}>` with no open element"))
                                )
                            }
                        }
                        return Ok(Some(XmlEvent::EndElement { name }));
                    }
                    self.expect(b'<')?;
                    let name = self.read_name()?;
                    let mut attributes = Vec::new();
                    loop {
                        self.skip_whitespace();
                        match self.peek() {
                            Some(b'>') => {
                                self.bump();
                                self.open.push(name.clone());
                                return Ok(Some(XmlEvent::StartElement {
                                    name,
                                    attributes,
                                    self_closing: false,
                                }));
                            }
                            Some(b'/') => {
                                self.bump();
                                self.expect(b'>')?;
                                self.pending_end = Some(name.clone());
                                return Ok(Some(XmlEvent::StartElement {
                                    name,
                                    attributes,
                                    self_closing: true,
                                }));
                            }
                            Some(_) => {
                                let key = self.read_name()?;
                                self.skip_whitespace();
                                self.expect(b'=')?;
                                self.skip_whitespace();
                                let value = self.read_attribute_value()?;
                                attributes.push((key, value));
                            }
                            None => return Err(self.err("unterminated start tag")),
                        }
                    }
                }
            }
        }
    }

    pub mod reader {
        use super::xml::{XmlEvent, XmlParser};
        use gecco_eventlog::time::parse_iso8601;
        use gecco_eventlog::xes::reader::CLASS_ATTR_KEY;
        use gecco_eventlog::{AttributeValue, Error, EventLog, LogBuilder, Result};

        pub fn parse_str(input: &str) -> Result<EventLog> {
            Reader::new(input).parse()
        }

        struct RawAttr {
            key: String,
            value: RawValue,
        }

        enum RawValue {
            Str(String),
            Int(i64),
            Float(f64),
            Bool(bool),
            Timestamp(i64),
        }

        struct Reader<'a> {
            parser: XmlParser<'a>,
            builder: LogBuilder,
        }

        impl<'a> Reader<'a> {
            fn new(input: &'a str) -> Self {
                Reader { parser: XmlParser::new(input), builder: LogBuilder::new() }
            }

            fn err(&self, message: impl Into<String>) -> Error {
                Error::Xes { line: self.parser.line(), message: message.into() }
            }

            fn parse(mut self) -> Result<EventLog> {
                loop {
                    match self.parser.next_event()? {
                        Some(XmlEvent::StartElement { name, self_closing, .. })
                            if name == "log" =>
                        {
                            if self_closing {
                                return Ok(self.builder.build());
                            }
                            break;
                        }
                        Some(XmlEvent::StartElement { self_closing, .. }) => {
                            if !self_closing {
                                self.skip_subtree()?;
                            }
                        }
                        Some(_) => {}
                        None => return Err(self.err("no <log> element found")),
                    }
                }
                loop {
                    match self.parser.next_event()? {
                        Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                            match name.as_str() {
                                "trace" => {
                                    if !self_closing {
                                        self.parse_trace()?;
                                    } else {
                                        self.builder.trace_raw().done();
                                    }
                                }
                                "extension" | "global" | "classifier" => {
                                    if !self_closing {
                                        self.skip_subtree()?;
                                    }
                                }
                                _ => {
                                    if let Some(attr) = self.attr_from(&name, &attributes)? {
                                        if attr.key == CLASS_ATTR_KEY {
                                            self.parse_class_attrs(&attr, self_closing)?;
                                        } else {
                                            if !self_closing {
                                                self.skip_subtree()?;
                                            }
                                            let value = self.intern_value(attr.value);
                                            self.builder.log_attr(&attr.key, value);
                                        }
                                    } else if !self_closing {
                                        self.skip_subtree()?;
                                    }
                                }
                            }
                        }
                        Some(XmlEvent::EndElement { name }) if name == "log" => break,
                        Some(XmlEvent::EndElement { .. }) | Some(XmlEvent::Text(_)) => {}
                        None => return Err(self.err("unexpected end of input inside <log>")),
                    }
                }
                Ok(self.builder.build())
            }

            fn parse_trace(&mut self) -> Result<()> {
                struct PendingEvent {
                    class: String,
                    attrs: Vec<RawAttr>,
                }
                let mut trace_attrs: Vec<RawAttr> = Vec::new();
                let mut events: Vec<PendingEvent> = Vec::new();
                loop {
                    match self.parser.next_event()? {
                        Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                            if name == "event" {
                                let attrs = if self_closing {
                                    Vec::new()
                                } else {
                                    self.parse_event_attrs()?
                                };
                                let class = attrs
                                    .iter()
                                    .find(|a| a.key == "concept:name")
                                    .and_then(|a| match &a.value {
                                        RawValue::Str(s) => Some(s.clone()),
                                        _ => None,
                                    })
                                    .ok_or_else(|| {
                                        self.err("event without string `concept:name`")
                                    })?;
                                events.push(PendingEvent { class, attrs });
                            } else if let Some(attr) = self.attr_from(&name, &attributes)? {
                                if !self_closing {
                                    self.skip_subtree()?;
                                }
                                trace_attrs.push(attr);
                            } else if !self_closing {
                                self.skip_subtree()?;
                            }
                        }
                        Some(XmlEvent::EndElement { name }) if name == "trace" => break,
                        Some(_) => {}
                        None => return Err(self.err("unexpected end of input inside <trace>")),
                    }
                }
                let mut tb = self.builder.trace_raw();
                for a in trace_attrs {
                    let v = match a.value {
                        RawValue::Str(s) => AttributeValue::Str(tb.intern(&s)),
                        RawValue::Int(i) => AttributeValue::Int(i),
                        RawValue::Float(f) => AttributeValue::Float(f),
                        RawValue::Bool(b) => AttributeValue::Bool(b),
                        RawValue::Timestamp(t) => AttributeValue::Timestamp(t),
                    };
                    tb = tb.attr(&a.key, v);
                }
                for ev in events {
                    tb = tb.event_with(&ev.class, |e| {
                        for a in &ev.attrs {
                            match &a.value {
                                RawValue::Str(s) => e.str(&a.key, s),
                                RawValue::Int(i) => e.int(&a.key, *i),
                                RawValue::Float(f) => e.float(&a.key, *f),
                                RawValue::Bool(b) => e.bool(&a.key, *b),
                                RawValue::Timestamp(t) => e.timestamp(&a.key, *t),
                            };
                        }
                    })?;
                }
                tb.done();
                Ok(())
            }

            fn parse_event_attrs(&mut self) -> Result<Vec<RawAttr>> {
                let mut out = Vec::new();
                loop {
                    match self.parser.next_event()? {
                        Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                            if let Some(attr) = self.attr_from(&name, &attributes)? {
                                out.push(attr);
                            }
                            if !self_closing {
                                self.skip_subtree()?;
                            }
                        }
                        Some(XmlEvent::EndElement { name }) if name == "event" => return Ok(out),
                        Some(_) => {}
                        None => return Err(self.err("unexpected end of input inside <event>")),
                    }
                }
            }

            fn parse_class_attrs(&mut self, outer: &RawAttr, self_closing: bool) -> Result<()> {
                let class = match &outer.value {
                    RawValue::Str(s) => s.clone(),
                    _ => return Err(self.err("gecco:classattr value must be the class name")),
                };
                if self_closing {
                    return Ok(());
                }
                loop {
                    match self.parser.next_event()? {
                        Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                            if let Some(attr) = self.attr_from(&name, &attributes)? {
                                match &attr.value {
                                    RawValue::Str(s) => {
                                        self.builder.class_attr_str(&class, &attr.key, s)?;
                                    }
                                    _ => {
                                        return Err(
                                            self.err("class-level attributes must be strings")
                                        )
                                    }
                                }
                            }
                            if !self_closing {
                                self.skip_subtree()?;
                            }
                        }
                        Some(XmlEvent::EndElement { .. }) => return Ok(()),
                        Some(_) => {}
                        None => return Err(self.err("unexpected end of input in class attributes")),
                    }
                }
            }

            fn attr_from(
                &self,
                tag: &str,
                attributes: &[(String, String)],
            ) -> Result<Option<RawAttr>> {
                let typed = matches!(tag, "string" | "date" | "int" | "float" | "boolean" | "id");
                if !typed {
                    return Ok(None);
                }
                let key = attributes
                    .iter()
                    .find(|(k, _)| k == "key")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| self.err(format!("<{tag}> without `key`")))?;
                let raw = attributes
                    .iter()
                    .find(|(k, _)| k == "value")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| self.err(format!("<{tag} key=\"{key}\"> without `value`")))?;
                let value = match tag {
                    "string" | "id" => RawValue::Str(raw),
                    "date" => RawValue::Timestamp(parse_iso8601(&raw)?),
                    "int" => RawValue::Int(raw.parse().map_err(|_| self.err("bad int value"))?),
                    "float" => {
                        RawValue::Float(raw.parse().map_err(|_| self.err("bad float value"))?)
                    }
                    "boolean" => match raw.as_str() {
                        "true" | "True" | "TRUE" | "1" => RawValue::Bool(true),
                        "false" | "False" | "FALSE" | "0" => RawValue::Bool(false),
                        _ => return Err(self.err("bad boolean value")),
                    },
                    _ => unreachable!(),
                };
                Ok(Some(RawAttr { key, value }))
            }

            fn skip_subtree(&mut self) -> Result<()> {
                let mut depth = 1usize;
                loop {
                    match self.parser.next_event()? {
                        Some(XmlEvent::StartElement { .. }) => depth += 1,
                        Some(XmlEvent::EndElement { .. }) => {
                            depth -= 1;
                            if depth == 0 {
                                return Ok(());
                            }
                        }
                        Some(XmlEvent::Text(_)) => {}
                        None => {
                            return Err(self.err("unexpected end of input while skipping element"))
                        }
                    }
                }
            }

            fn intern_value(&mut self, raw: RawValue) -> AttributeValue {
                match raw {
                    RawValue::Str(s) => AttributeValue::Str(self.builder.intern(&s)),
                    RawValue::Int(i) => AttributeValue::Int(i),
                    RawValue::Float(f) => AttributeValue::Float(f),
                    RawValue::Bool(b) => AttributeValue::Bool(b),
                    RawValue::Timestamp(t) => AttributeValue::Timestamp(t),
                }
            }
        }
    }

    pub mod csv {
        use gecco_eventlog::csv::CsvOptions;
        use gecco_eventlog::time::parse_iso8601;
        use gecco_eventlog::{Error, EventLog, LogBuilder, Result};

        fn split_record(lines: &[&str], start: usize, delim: char) -> Result<(Vec<String>, usize)> {
            let mut fields = Vec::new();
            let mut field = String::new();
            let mut in_quotes = false;
            let mut li = start;
            let mut chars: Vec<char> = lines[li].chars().collect();
            let mut ci = 0;
            loop {
                if ci >= chars.len() {
                    if in_quotes {
                        li += 1;
                        if li >= lines.len() {
                            return Err(Error::Csv {
                                line: start + 1,
                                message: "unterminated quote".into(),
                            });
                        }
                        field.push('\n');
                        chars = lines[li].chars().collect();
                        ci = 0;
                        continue;
                    }
                    fields.push(std::mem::take(&mut field));
                    return Ok((fields, li - start + 1));
                }
                let c = chars[ci];
                if in_quotes {
                    if c == '"' {
                        if chars.get(ci + 1) == Some(&'"') {
                            field.push('"');
                            ci += 2;
                        } else {
                            in_quotes = false;
                            ci += 1;
                        }
                    } else {
                        field.push(c);
                        ci += 1;
                    }
                } else if c == '"' && field.is_empty() {
                    in_quotes = true;
                    ci += 1;
                } else if c == delim {
                    fields.push(std::mem::take(&mut field));
                    ci += 1;
                } else {
                    field.push(c);
                    ci += 1;
                }
            }
        }

        pub fn read_str(input: &str, options: &CsvOptions) -> Result<EventLog> {
            let lines: Vec<&str> = input.lines().collect();
            if lines.is_empty() {
                return Ok(LogBuilder::new().build());
            }
            let (header, mut row_start) = split_record(&lines, 0, options.delimiter)?;
            let case_idx = header
                .iter()
                .position(|h| *h == options.case_column)
                .ok_or_else(|| Error::Csv { line: 1, message: "missing case column".into() })?;
            let act_idx = header
                .iter()
                .position(|h| *h == options.activity_column)
                .ok_or_else(|| Error::Csv { line: 1, message: "missing activity column".into() })?;
            let mut case_order: Vec<String> = Vec::new();
            let mut rows_by_case: std::collections::HashMap<String, Vec<Vec<String>>> =
                std::collections::HashMap::new();
            while row_start < lines.len() {
                if lines[row_start].trim().is_empty() {
                    row_start += 1;
                    continue;
                }
                let (fields, consumed) = split_record(&lines, row_start, options.delimiter)?;
                if fields.len() != header.len() {
                    return Err(Error::Csv {
                        line: row_start + 1,
                        message: "field count mismatch".into(),
                    });
                }
                let case = fields[case_idx].clone();
                if !rows_by_case.contains_key(&case) {
                    case_order.push(case.clone());
                }
                rows_by_case.entry(case).or_default().push(fields);
                row_start += consumed;
            }
            let mut builder = LogBuilder::new();
            for case in case_order {
                let rows = rows_by_case.remove(&case).expect("case registered above");
                let mut tb = builder.trace(&case);
                for row in rows {
                    let class = row[act_idx].clone();
                    tb = tb.event_with(&class, |e| {
                        for (i, value) in row.iter().enumerate() {
                            if i == case_idx || i == act_idx {
                                continue;
                            }
                            let key = &header[i];
                            if value.is_empty() {
                                continue;
                            }
                            if let Ok(ts) = parse_iso8601(value) {
                                e.timestamp(key, ts);
                            } else if let Ok(i64v) = value.parse::<i64>() {
                                e.int(key, i64v);
                            } else if let Ok(f64v) = value.parse::<f64>() {
                                e.float(key, f64v);
                            } else if value == "true" || value == "false" {
                                e.bool(key, value == "true");
                            } else {
                                e.str(key, value);
                            }
                        }
                    })?;
                }
                tb.done();
            }
            Ok(builder.build())
        }
    }
}

fn bench_parse(c: &mut Criterion) {
    // ~1000 loan traces serialize to a multi-MB XES document.
    let log = loan_log(1000, 1);
    let text = xes::write_string(&log);
    let mb = text.len() as f64 / 1e6;

    // Cross-check once: all three paths agree on the parsed structure.
    let seed_parsed = seed::reader::parse_str(&text).expect("seed parser accepts the input");
    let live_parsed = xes::parse_str(&text).expect("pipeline accepts the input");
    assert_eq!(seed_parsed.num_events(), live_parsed.num_events());
    assert_eq!(seed_parsed.traces().len(), live_parsed.traces().len());

    let mut group = c.benchmark_group(format!("xes_parse_{mb:.1}MB"));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_with_input("seed", &text, |b, text| {
        b.iter(|| seed::reader::parse_str(text).expect("valid"));
    });
    set_parallel(false);
    group.bench_with_input("chunked_serial", &text, |b, text| {
        b.iter(|| xes::parse_str(text).expect("valid"));
    });
    set_parallel(true);
    group.bench_with_input("chunked_rayon", &text, |b, text| {
        b.iter(|| xes::parse_str(text).expect("valid"));
    });
    set_parallel(true);
    group.finish();
}

fn bench_csv(c: &mut Criterion) {
    let log = loan_log(1000, 1);
    let text = csv::write_string(&log);
    let mb = text.len() as f64 / 1e6;
    let options = csv::CsvOptions::default();

    let seed_parsed = seed::csv::read_str(&text, &options).expect("seed importer accepts");
    let live_parsed = csv::read_str(&text, &options).expect("pipeline accepts");
    assert_eq!(seed_parsed.num_events(), live_parsed.num_events());

    let mut group = c.benchmark_group(format!("csv_read_{mb:.1}MB"));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_with_input("seed", &text, |b, text| {
        b.iter(|| seed::csv::read_str(text, &options).expect("valid"));
    });
    set_parallel(false);
    group.bench_with_input("chunked_serial", &text, |b, text| {
        b.iter(|| csv::read_str(text, &options).expect("valid"));
    });
    set_parallel(true);
    group.bench_with_input("chunked_rayon", &text, |b, text| {
        b.iter(|| csv::read_str(text, &options).expect("valid"));
    });
    set_parallel(true);
    group.finish();
}

criterion_group!(benches, bench_parse, bench_csv);
criterion_main!(benches);
