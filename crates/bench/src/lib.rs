//! Experiment harness reproducing the paper's evaluation (§VI).
//!
//! * [`constraint_sets`] — the ten constraint sets of Table IV;
//! * [`runner`] — runs one abstraction problem and computes the paper's
//!   measures (Solved, S. red., C. red., Sil., T);
//! * [`report`] — aligned text tables comparing measured values against
//!   the numbers printed in the paper.
//!
//! Binaries (`cargo run --release -p gecco-bench --bin <name>`):
//! `table3`, `table5`, `table6`, `table7`, `fig_running_example`,
//! `fig_case_study`. All accept `--smoke` for a quick downscaled run.

pub mod constraint_sets;
pub mod report;
pub mod runner;

pub use constraint_sets::{applicable, constraint_dsl, ConstraintSetId, ALL_SETS};
pub use runner::{
    evaluate_grouping, evaluate_grouping_in, run_gecco, run_gecco_shared, Aggregate, LogSession,
    ProblemOutcome, RunConfig,
};
