//! Running abstraction problems and computing the paper's measures.

use gecco_constraints::ConstraintSet;
use gecco_core::{
    abstraction::{abstract_log, activity_names},
    AbstractionStrategy, Budget, CandidateStrategy, Gecco, Grouping, Outcome, SelectionOptions,
};
use gecco_discovery::DiscoveryOptions;
use gecco_eventlog::{
    CacheStats, ClassSet, EvalContext, EventLog, InstanceCache, LogIndex, Segmenter,
};
use gecco_metrics::{complexity_reduction, silhouette_coefficient, size_reduction, ClassDistances};
use std::time::Instant;

/// Shared per-log evaluation state for a *series* of abstraction problems:
/// the occurrence index (built once) plus the cross-candidate,
/// cross-constraint-set instance/verdict cache.
///
/// The evaluation harness runs the same log under up to ten constraint
/// sets (Tables V–VII); every set re-examines largely the same candidate
/// groups, so sharing one session avoids re-indexing the log and
/// re-materializing `inst(L, g)` per set.
#[derive(Debug)]
pub struct LogSession<'a> {
    log: &'a EventLog,
    index: LogIndex,
    cache: InstanceCache,
}

impl<'a> LogSession<'a> {
    /// Indexes `log` and starts an empty shared cache.
    pub fn new(log: &'a EventLog) -> LogSession<'a> {
        LogSession { log, index: LogIndex::build(log), cache: InstanceCache::new() }
    }

    /// Starts a session over a log whose index already exists — e.g. the
    /// spliced index returned by an abstraction pass
    /// (`AbstractionResult::into_log_and_index`) — skipping the rebuild.
    pub fn with_index(log: &'a EventLog, index: LogIndex) -> LogSession<'a> {
        LogSession { log, index, cache: InstanceCache::new() }
    }

    /// The session's log.
    pub fn log(&self) -> &'a EventLog {
        self.log
    }

    /// An evaluation context over the session's shared state.
    pub fn context(&self) -> EvalContext<'_> {
        EvalContext::with_cache(self.log, &self.index, &self.cache)
    }

    /// Usage counters of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Number of classes that actually occur in traces.
pub fn occurring_class_count(log: &EventLog) -> usize {
    gecco_core::grouping::occurring_classes(log).len()
}

/// One problem's results: the columns of Tables V–VII.
#[derive(Debug, Clone)]
pub struct ProblemOutcome {
    /// Whether a feasible grouping was found.
    pub solved: bool,
    /// `1 − |G|/|C_L|`.
    pub s_red: f64,
    /// `1 − CFC(L')/CFC(L)`.
    pub c_red: f64,
    /// Silhouette coefficient of the grouping.
    pub sil: f64,
    /// Wall-clock seconds for the full pipeline.
    pub seconds: f64,
    /// Number of groups in the grouping (0 when unsolved).
    pub groups: usize,
}

/// Shared run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Step-1 strategy.
    pub strategy: CandidateStrategy,
    /// Step-1 budget (mirrors the paper's candidate-computation timeout).
    pub budget: Budget,
    /// Step-2 node budget.
    pub selection_nodes: usize,
    /// Step-2 presolve + component decomposition (on by default; off is
    /// the seed single-solve path, kept for ablation).
    pub presolve: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            strategy: CandidateStrategy::Exhaustive,
            budget: Budget::max_checks(10_000),
            selection_nodes: 2_000_000,
            presolve: true,
        }
    }
}

/// Runs GECCO on `(log, dsl)` and measures the outcome. `Err` means the
/// constraints do not apply to this log (e.g. BL3 without class attributes).
///
/// Builds a throwaway [`LogSession`]; callers evaluating several
/// constraint sets over one log should build the session once and use
/// [`run_gecco_shared`].
pub fn run_gecco(log: &EventLog, dsl: &str, config: RunConfig) -> Result<ProblemOutcome, String> {
    let session = LogSession::new(log);
    run_gecco_shared(&session, dsl, config)
}

/// Like [`run_gecco`], but reuses a [`LogSession`]: the log index is built
/// once per log, and materialized instances/verdicts are shared across
/// candidates and constraint sets (the ROADMAP's "shared candidate cache").
///
/// Both entry points call [`Gecco::run`], which since the pipeline-as-graph
/// refactor drives the `gecco_core::graph` DAG executor — bit-identical to
/// the linear oracle, so every number the harness reports is unchanged.
pub fn run_gecco_shared(
    session: &LogSession<'_>,
    dsl: &str,
    config: RunConfig,
) -> Result<ProblemOutcome, String> {
    let log = session.log();
    let constraints = ConstraintSet::parse(dsl).map_err(|e| e.to_string())?;
    let start = Instant::now();
    let outcome = Gecco::new(log)
        .constraints(constraints)
        .candidates(config.strategy)
        .budget(config.budget)
        .selection(SelectionOptions {
            max_nodes: config.selection_nodes,
            presolve: config.presolve,
            ..Default::default()
        })
        .with_index(&session.index)
        .instance_cache(&session.cache)
        .run()
        .map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();
    match outcome {
        Outcome::Abstracted(result) => {
            let (s_red, c_red, sil) = grouping_measures(log, result.grouping(), result.log());
            Ok(ProblemOutcome {
                solved: true,
                s_red,
                c_red,
                sil,
                seconds,
                groups: result.grouping().len(),
            })
        }
        Outcome::Infeasible(_) => Ok(ProblemOutcome {
            solved: false,
            s_red: 0.0,
            c_red: 0.0,
            sil: 0.0,
            seconds,
            groups: 0,
        }),
    }
}

/// Measures a grouping produced by a baseline (which bypasses the
/// pipeline): abstracts the log itself, then computes the measure triple.
///
/// Builds a throwaway index; callers that already hold an [`EvalContext`]
/// over the log should use [`evaluate_grouping_in`].
pub fn evaluate_grouping(log: &EventLog, groups: &[ClassSet]) -> (f64, f64, f64) {
    let index = LogIndex::build(log);
    let ctx = EvalContext::new(log, &index);
    evaluate_grouping_in(&ctx, groups)
}

/// Like [`evaluate_grouping`], but reuses an existing evaluation context —
/// the baseline runners (table VII) already hold one for their candidate
/// phase, so the log is not re-indexed just to measure the outcome.
pub fn evaluate_grouping_in(ctx: &EvalContext<'_>, groups: &[ClassSet]) -> (f64, f64, f64) {
    let log = ctx.log();
    let grouping = Grouping::new(groups.to_vec());
    let names = activity_names(log, &grouping, Some("org:role"));
    let (abstracted, _spliced) = abstract_log(
        ctx,
        &grouping,
        &names,
        AbstractionStrategy::Completion,
        Segmenter::RepeatSplit,
    );
    grouping_measures(log, &grouping, &abstracted)
}

fn grouping_measures(
    log: &EventLog,
    grouping: &Grouping,
    abstracted: &EventLog,
) -> (f64, f64, f64) {
    let s_red = size_reduction(grouping.len(), occurring_class_count(log));
    let c_red = complexity_reduction(log, abstracted, DiscoveryOptions::default());
    let distances = ClassDistances::compute(log);
    let sil = silhouette_coefficient(&distances, grouping.groups());
    (s_red, c_red, sil)
}

/// Mean measures over a series of problems, averaged over *solved* ones as
/// the paper does; `solved` is the fraction of solved problems.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Fraction of solved problems.
    pub solved: f64,
    /// Mean size reduction over solved problems.
    pub s_red: f64,
    /// Mean complexity reduction over solved problems.
    pub c_red: f64,
    /// Mean silhouette over solved problems.
    pub sil: f64,
    /// Mean runtime over solved problems (seconds).
    pub seconds: f64,
    /// Number of problems aggregated.
    pub problems: usize,
}

impl Aggregate {
    /// Aggregates outcomes (paper style: measures averaged over solved).
    pub fn from_outcomes(outcomes: &[ProblemOutcome]) -> Aggregate {
        let problems = outcomes.len();
        if problems == 0 {
            return Aggregate::default();
        }
        let solved: Vec<&ProblemOutcome> = outcomes.iter().filter(|o| o.solved).collect();
        let n = solved.len().max(1) as f64;
        Aggregate {
            solved: solved.len() as f64 / problems as f64,
            s_red: solved.iter().map(|o| o.s_red).sum::<f64>() / n,
            c_red: solved.iter().map(|o| o.c_red).sum::<f64>() / n,
            sil: solved.iter().map(|o| o.sil).sum::<f64>() / n,
            seconds: solved.iter().map(|o| o.seconds).sum::<f64>() / n,
            problems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_datagen::running_example;

    #[test]
    fn run_gecco_measures_running_example() {
        let log = running_example();
        let out = run_gecco(
            &log,
            "size(g) <= 8; distinct(instance, \"org:role\") <= 1;",
            RunConfig { strategy: CandidateStrategy::DfgUnbounded, ..Default::default() },
        )
        .unwrap();
        assert!(out.solved);
        assert_eq!(out.groups, 4);
        assert!((out.s_red - 0.5).abs() < 1e-9, "8 classes → 4 groups");
        assert!(out.c_red > 0.0, "abstraction must simplify the model");
        assert!(out.seconds >= 0.0);
    }

    #[test]
    fn shared_session_reuses_instances_across_constraint_sets() {
        let log = running_example();
        let session = LogSession::new(&log);
        let config = RunConfig { strategy: CandidateStrategy::DfgUnbounded, ..Default::default() };
        let a =
            run_gecco_shared(&session, "distinct(instance, \"org:role\") <= 1;", config).unwrap();
        let after_first = session.cache_stats();
        assert!(after_first.instance_entries > 0, "first run populates the cache");
        // A second constraint set over the same log: same candidates, so the
        // materialized instances are reused instead of recomputed.
        let b = run_gecco_shared(
            &session,
            "size(g) <= 8; distinct(instance, \"org:role\") <= 1;",
            config,
        )
        .unwrap();
        let after_second = session.cache_stats();
        assert!(after_second.instance_hits > after_first.instance_hits);
        assert!(a.solved && b.solved);
        // Re-running the *same* specification re-compiles it, but the
        // structural signature resolves to the same verdict token, so the
        // whole candidate search is answered from the verdict cache.
        let a2 =
            run_gecco_shared(&session, "distinct(instance, \"org:role\") <= 1;", config).unwrap();
        assert!(session.cache_stats().verdict_hits > after_second.verdict_hits);
        assert_eq!(a2.groups, a.groups);
        // Shared-session outcomes match isolated runs.
        let isolated = run_gecco(&log, "distinct(instance, \"org:role\") <= 1;", config).unwrap();
        assert_eq!(a.groups, isolated.groups);
        assert!((a.s_red - isolated.s_red).abs() < 1e-12);
        assert!((a.sil - isolated.sil).abs() < 1e-12);
    }

    #[test]
    fn session_over_abstracted_log_reuses_spliced_index() {
        let log = running_example();
        let result = Gecco::new(&log)
            .constraints(ConstraintSet::parse("distinct(instance, \"org:role\") <= 1;").unwrap())
            .run()
            .unwrap()
            .expect_abstracted();
        // Re-abstraction session seeded by Step 3's spliced index: no
        // LogIndex::build for the abstracted log.
        let (abstracted, index) = result.into_log_and_index();
        let session = LogSession::with_index(&abstracted, index);
        let config = RunConfig { strategy: CandidateStrategy::DfgUnbounded, ..Default::default() };
        let out = run_gecco_shared(&session, "size(g) <= 2;", config).unwrap();
        assert!(out.solved);
    }

    #[test]
    fn infeasible_is_reported_not_crashed() {
        let log = running_example();
        let out = run_gecco(&log, "size(g) >= 5; groups >= 2;", RunConfig::default()).unwrap();
        assert!(!out.solved);
        assert_eq!(out.groups, 0);
    }

    #[test]
    fn aggregate_averages_over_solved() {
        let outcomes = vec![
            ProblemOutcome {
                solved: true,
                s_red: 0.6,
                c_red: 0.4,
                sil: 0.2,
                seconds: 1.0,
                groups: 3,
            },
            ProblemOutcome {
                solved: false,
                s_red: 0.0,
                c_red: 0.0,
                sil: 0.0,
                seconds: 9.0,
                groups: 0,
            },
            ProblemOutcome {
                solved: true,
                s_red: 0.4,
                c_red: 0.2,
                sil: 0.0,
                seconds: 3.0,
                groups: 5,
            },
        ];
        let agg = Aggregate::from_outcomes(&outcomes);
        assert!((agg.solved - 2.0 / 3.0).abs() < 1e-12);
        assert!((agg.s_red - 0.5).abs() < 1e-12);
        assert!((agg.seconds - 2.0).abs() < 1e-12, "unsolved runtimes excluded");
    }

    #[test]
    fn evaluate_grouping_matches_pipeline_measures() {
        let log = running_example();
        let set = |names: &[&str]| -> ClassSet {
            names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
        };
        let groups = vec![
            set(&["rcp", "ckc", "ckt"]),
            set(&["acc"]),
            set(&["rej"]),
            set(&["prio", "inf", "arv"]),
        ];
        let (s_red, _c_red, sil) = evaluate_grouping(&log, &groups);
        assert!((s_red - 0.5).abs() < 1e-9);
        assert!(sil > -1.0 && sil < 1.0);
    }
}
