//! Reproduces Table III: properties of the evaluation log collection.
//!
//! Prints the generated (simulated) collection's statistics next to the
//! paper's values. Class counts match exactly by construction; trace
//! counts are scaled ~100× down (see DESIGN.md).

use gecco_bench::report::smoke_requested;
use gecco_datagen::{evaluation_collection, CollectionScale};
use gecco_eventlog::LogStats;

/// The paper's Table III rows: (|C_L|, traces, variants, |E| in thousands
/// — the paper prints raw counts; we keep them for reference only).
const PAPER: [(usize, usize); 13] = [
    (11, 150_370),
    (40, 75_928),
    (39, 46_616),
    (24, 31_509),
    (39, 14_550),
    (24, 13_087),
    (8, 10_035),
    (51, 7_065),
    (4, 1_487),
    (27, 1_434),
    (16, 1_050),
    (70, 902),
    (29, 20),
];

fn main() {
    let scale = if smoke_requested() { CollectionScale::Smoke } else { CollectionScale::Full };
    println!("Table III — Properties of the (simulated) log collection");
    println!("{}", "=".repeat(78));
    println!(
        "{:<6} {:>5} {:>9} {:>9} {:>10} {:>8}   {:>10} {:>10}",
        "Ref", "|C_L|", "Traces", "Variants", "|E|", "Avg|σ|", "paper|C_L|", "paperTr"
    );
    println!("{}", "-".repeat(78));
    for (generated, (paper_classes, paper_traces)) in evaluation_collection(scale).iter().zip(PAPER)
    {
        let stats = LogStats::from_log(&generated.log);
        println!(
            "{:<6} {}   {:>10} {:>10}",
            generated.reference,
            stats.table_row(),
            paper_classes,
            paper_traces
        );
        assert_eq!(stats.num_classes, paper_classes, "class counts must match Table III");
    }
    println!("{}", "-".repeat(78));
    println!("Class counts match Table III exactly; trace counts are scaled ~1/100.");
}
