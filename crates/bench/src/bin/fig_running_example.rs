//! Reproduces Figures 2, 3, 5, 6 and 7 on the running example (Table I).

use gecco_constraints::ConstraintSet;
use gecco_core::{
    candidates::dfg::{IterationObserver, Path},
    CandidateStrategy, Gecco, Outcome,
};
use gecco_datagen::running_example;
use gecco_eventlog::{Dfg, EventLog};

struct Figure5Printer<'a> {
    log: &'a EventLog,
}

impl IterationObserver for Figure5Printer<'_> {
    fn iteration(&mut self, iteration: usize, examined: &[(Path, bool)]) {
        if iteration > 2 || examined.is_empty() {
            return; // the paper shows iterations 1 and 2 only
        }
        println!("\nFigure 5 — DFG-based candidate computation, iteration {iteration}:");
        for (path, holds) in examined {
            let mark = if *holds { "✓" } else { "✗" };
            let nodes: Vec<&str> = path.nodes.iter().map(|&c| self.log.class_name(c)).collect();
            println!("  {mark} [{}]", nodes.join(", "));
        }
    }
}

fn main() {
    let log = running_example();
    println!("Table I — the running example:");
    for (i, t) in log.traces().iter().enumerate() {
        println!("  σ{} = {}", i + 1, log.format_trace(t));
    }

    let dfg = Dfg::from_log(&log);
    println!("\nFigure 2 — DFG of the running example ({} edges):", dfg.num_edges());
    println!("{}", dfg.to_dot(&log));

    let constraints =
        ConstraintSet::parse("distinct(instance, \"org:role\") <= 1;").expect("valid DSL");
    let mut observer = Figure5Printer { log: &log };
    let outcome = Gecco::new(&log)
        .constraints(constraints)
        .candidates(CandidateStrategy::DfgUnbounded)
        .label_by("org:role")
        .run_observed(&mut observer)
        .expect("compiles");
    let result = match outcome {
        Outcome::Abstracted(r) => r,
        Outcome::Infeasible(rep) => panic!("unexpectedly infeasible: {}", rep.summary),
    };

    println!("\nFigure 6 — exclusive behavioral alternatives:");
    println!(
        "  candidates contributed by Algorithm 3 (merged alternatives): {}",
        result.candidate_stats().exclusive_candidates
    );
    println!("  {{ckc, ckt}} share pre {{rcp}} / post {{acc, rej}} → merged;");
    println!("  {{acc, rej}} differ in postsets (rej loops back to rcp) → kept apart.");

    println!("\nFigure 7 — optimal grouping (dist = {:.2}, paper: 3.08):", result.distance());
    for (group, name) in result.grouping().iter().zip(result.activity_names()) {
        println!("  {:<8} ← {}", name, log.format_group(group));
    }
    assert!((result.distance() - 37.0 / 12.0).abs() < 1e-9, "must match the paper");

    println!("\nAbstracted traces:");
    for (i, t) in result.log().traces().iter().enumerate() {
        println!("  σ{}' = {}", i + 1, result.log().format_trace(t));
    }

    let abstracted_dfg = Dfg::from_log(result.log());
    println!(
        "\nFigure 3 — DFG of the abstracted log ({} nodes, {} edges):",
        result.grouping().len(),
        abstracted_dfg.num_edges()
    );
    println!("{}", abstracted_dfg.to_dot(result.log()));
}
