//! Reproduces Table VI: the three GECCO configurations (`Exh`, `DFG∞`,
//! `DFGk` with `k = 5·|C_L|`) over all solvable problems.

use gecco_bench::report::{header, row, smoke_requested, PaperRow};
use gecco_bench::{
    applicable, constraint_dsl, run_gecco_shared, Aggregate, LogSession, RunConfig, ALL_SETS,
};
use gecco_core::{BeamWidth, Budget, CandidateStrategy};
use gecco_datagen::{evaluation_collection, CollectionScale};

fn main() {
    let smoke = smoke_requested();
    let scale = if smoke { CollectionScale::Smoke } else { CollectionScale::Full };
    let budget = std::env::var("GECCO_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1_000 } else { 10_000 });
    let collection = evaluation_collection(scale);
    // One session per log, shared across constraint sets and configurations
    // (instances depend only on the group and segmenter, never on the
    // Step-1 strategy).
    let sessions: Vec<LogSession<'_>> =
        collection.iter().map(|generated| LogSession::new(&generated.log)).collect();
    let configs: [(&str, CandidateStrategy, Option<PaperRow>); 3] = [
        (
            "Exh",
            CandidateStrategy::Exhaustive,
            Some(PaperRow { solved: 0.78, s_red: 0.63, c_red: 0.57, sil: 0.11, t_minutes: 130.0 }),
        ),
        (
            "DFGinf",
            CandidateStrategy::DfgUnbounded,
            Some(PaperRow { solved: 0.78, s_red: 0.62, c_red: 0.56, sil: 0.16, t_minutes: 108.0 }),
        ),
        (
            "DFGk",
            CandidateStrategy::DfgBeam { k: BeamWidth::PerClass(5) },
            Some(PaperRow { solved: 0.77, s_red: 0.56, c_red: 0.50, sil: 0.08, t_minutes: 49.0 }),
        ),
    ];
    println!("Table VI — Results per configuration over all problems (ours vs paper)\n");
    header("Conf.");
    for (name, strategy, paper) in configs {
        let config =
            RunConfig { strategy, budget: Budget::max_checks(budget), ..Default::default() };
        let mut outcomes = Vec::new();
        for (generated, session) in collection.iter().zip(&sessions) {
            for set in ALL_SETS {
                if !applicable(set, &generated.log) {
                    continue;
                }
                let dsl = constraint_dsl(set, &generated.log);
                if let Ok(outcome) = run_gecco_shared(session, &dsl, config) {
                    outcomes.push(outcome);
                }
            }
        }
        row(name, &Aggregate::from_outcomes(&outcomes), paper);
    }
    println!("{}", "-".repeat(100));
    println!("Expected shape: DFG-based configurations trade a little abstraction quality");
    println!("for large runtime gains; DFGk is the fastest and least complete.");
}
