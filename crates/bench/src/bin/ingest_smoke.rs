//! Round-trip ingestion smoke for CI: one process, one route.
//!
//! ```text
//! ingest_smoke --xes PATH --route store|memory [--store-dir DIR] [--batch N]
//! ```
//!
//! Both routes end in the same abstraction run (`size(g) <= 4` over DFG
//! candidates) and print FNV digests of the ingested log and of the
//! abstracted output, plus the process peak RSS (`VmHWM`). CI runs the
//! binary twice — once per route — asserts the digest lines match (the
//! bit-identity oracle) and that the store route stayed under its memory
//! ceiling. The routes must run in separate processes: `VmHWM` is a
//! high-water mark, so an in-memory parse in the same process would mask
//! the store route's footprint.

use gecco_constraints::ConstraintSet;
use gecco_core::Gecco;
use gecco_eventlog::{ingest_to_store, AttributeValue, EventLog, IngestOptions, LogIndex, Trace};
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    xes: String,
    route: String,
    store_dir: String,
    batch: usize,
    ingest_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut xes = None;
    let mut route = None;
    let mut store_dir = None;
    let mut batch = 4096usize;
    let mut ingest_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--xes" => xes = Some(value("--xes")?),
            "--route" => route = Some(value("--route")?),
            "--store-dir" => store_dir = Some(value("--store-dir")?),
            "--batch" => {
                batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?;
            }
            // Stop after the store is written: the path whose peak RSS is
            // bounded by the batch size at ANY trace count. (Both digests
            // and the abstraction need the materialized log, whose
            // footprint is proportional to the log itself.)
            "--ingest-only" => ingest_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: ingest_smoke --xes PATH --route store|memory \
                     [--store-dir DIR] [--batch N] [--ingest-only]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let xes = xes.ok_or("--xes is required")?;
    let route = route.ok_or("--route is required")?;
    let store_dir = store_dir.unwrap_or_else(|| format!("{xes}.store"));
    Ok(Args { xes, route, store_dir, batch, ingest_only })
}

/// 64-bit FNV-1a, fed structured fields as little-endian words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn value(&mut self, v: &AttributeValue) {
        match v {
            AttributeValue::Str(s) => {
                self.u64(0);
                self.u64(s.0 as u64);
            }
            AttributeValue::Int(i) => {
                self.u64(1);
                self.u64(*i as u64);
            }
            AttributeValue::Float(f) => {
                self.u64(2);
                self.u64(f.to_bits());
            }
            AttributeValue::Bool(b) => {
                self.u64(3);
                self.u64(*b as u64);
            }
            AttributeValue::Timestamp(t) => {
                self.u64(4);
                self.u64(*t as u64);
            }
        }
    }

    fn traces(&mut self, traces: &[Trace]) {
        for trace in traces {
            self.u64(trace.attributes().len() as u64);
            for (k, v) in trace.attributes() {
                self.u64(k.0 as u64);
                self.value(v);
            }
            self.u64(trace.events().len() as u64);
            for event in trace.events() {
                self.u64(event.class().index() as u64);
                self.u64(event.attributes().len() as u64);
                for (k, v) in event.attributes() {
                    self.u64(k.0 as u64);
                    self.value(v);
                }
            }
        }
    }
}

/// Everything the event model observes, folded into one u64. Symbols are
/// hashed raw: the store route's bit-identity contract says they must
/// match the in-memory route's numbering exactly.
fn digest(log: &EventLog) -> u64 {
    let mut h = Fnv::new();
    for (sym, s) in log.interner().iter() {
        h.u64(sym.0 as u64);
        h.bytes(s.as_bytes());
        h.bytes(&[0xff]);
    }
    for id in log.classes().ids() {
        let info = log.classes().info(id);
        h.u64(info.name.0 as u64);
        h.u64(info.attributes.len() as u64);
        for (k, v) in &info.attributes {
            h.u64(k.0 as u64);
            h.value(v);
        }
    }
    h.u64(log.attributes().len() as u64);
    for (k, v) in log.attributes() {
        h.u64(k.0 as u64);
        h.value(v);
    }
    h.u64(log.traces().len() as u64);
    h.traces(log.traces());
    h.0
}

/// Peak resident set size of this process in kB, from `/proc/self/status`.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let started = Instant::now();
    let (log, index) = match args.route.as_str() {
        "store" => {
            let file = std::fs::File::open(&args.xes)
                .map_err(|e| format!("cannot open {}: {e}", args.xes))?;
            let options = IngestOptions { batch_traces: args.batch, ..IngestOptions::default() };
            let store = ingest_to_store(BufReader::new(file), &args.store_dir, &options)
                .map_err(|e| format!("store ingest failed: {e}"))?;
            if args.ingest_only {
                println!(
                    "route=store traces={} batches={} ingest_only=true",
                    store.num_traces(),
                    store.num_batches()
                );
                println!("ingest_seconds={:.2}", started.elapsed().as_secs_f64());
                match vm_hwm_kb() {
                    Some(kb) => println!("vm_hwm_kb={kb}"),
                    None => println!("vm_hwm_kb=unavailable"),
                }
                return Ok(());
            }
            let log = store.load_log().map_err(|e| format!("store load failed: {e}"))?;
            let index = store.build_index().map_err(|e| format!("store index failed: {e}"))?;
            (log, index)
        }
        "memory" => {
            let log = gecco_eventlog::xes::parse_file(&args.xes)
                .map_err(|e| format!("parse failed: {e}"))?;
            let index = LogIndex::build(&log);
            (log, index)
        }
        other => return Err(format!("unknown route {other:?} (store|memory)")),
    };
    let ingested = started.elapsed().as_secs_f64();
    let log_digest = digest(&log);

    let constraints =
        ConstraintSet::parse("size(g) <= 4;").map_err(|e| format!("constraints: {e}"))?;
    let outcome = Gecco::new(&log)
        .constraints(constraints)
        .with_index(&index)
        .run()
        .map_err(|e| format!("abstraction failed: {e}"))?;
    let out = outcome.expect_abstracted();
    let mut h = Fnv::new();
    h.u64(out.grouping().len() as u64);
    h.u64(out.log().traces().len() as u64);
    h.traces(out.log().traces());
    let abstraction_digest = h.0;

    println!(
        "route={} traces={} log_digest={log_digest:016x} \
         abstraction_digest={abstraction_digest:016x} groups={}",
        args.route,
        log.traces().len(),
        out.grouping().len()
    );
    println!("ingest_seconds={ingested:.2} total_seconds={:.2}", started.elapsed().as_secs_f64());
    match vm_hwm_kb() {
        Some(kb) => println!("vm_hwm_kb={kb}"),
        None => println!("vm_hwm_kb=unavailable"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ingest_smoke: {e}");
            ExitCode::FAILURE
        }
    }
}
