//! Reproduces Table VII: GECCO against the three baselines on the
//! constraint sets each baseline can handle.
//!
//! * `BL[1-3]`: graph-query candidates (BL_Q) vs GECCO `DFG∞`;
//! * `BL4`: spectral DFG partitioning (BL_P) vs GECCO `Exh`;
//! * `A, M, N`: greedy agglomeration (BL_G) vs GECCO `DFGk`.

use gecco_baselines::{greedy_grouping, query_candidates, spectral_partitioning};
use gecco_bench::report::{header, row, smoke_requested, PaperRow};
use gecco_bench::{
    applicable, constraint_dsl, evaluate_grouping, evaluate_grouping_in, run_gecco, Aggregate,
    ConstraintSetId, ProblemOutcome, RunConfig,
};
use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::{
    grouping::occurring_classes, BeamWidth, Budget, CandidateStrategy, DistanceOracle,
    SelectionOptions,
};
use gecco_datagen::{evaluation_collection, CollectionScale, GeneratedLog};
use gecco_eventlog::{EvalContext, EventLog, LogIndex, Segmenter};
use std::time::Instant;

fn compile(log: &EventLog, dsl: &str) -> Option<CompiledConstraintSet> {
    let spec = ConstraintSet::parse(dsl).ok()?;
    CompiledConstraintSet::compile(&spec, log).ok()
}

/// BL_Q: query candidates from the DFG property graph, then run GECCO's
/// selection over them.
fn run_blq(log: &EventLog, dsl: &str) -> Option<ProblemOutcome> {
    let constraints = compile(log, dsl)?;
    // Index construction stays outside the timed region, matching
    // run_gecco (whose LogSession builds the index before its clock starts).
    let index = LogIndex::build(log);
    let ctx = EvalContext::new(log, &index);
    let start = Instant::now();
    let candidates = query_candidates(&ctx, &constraints, 5);
    let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
    let selection = gecco_core::select_optimal(
        log,
        &candidates,
        &oracle,
        constraints.group_count_bounds(),
        SelectionOptions { max_nodes: 2_000_000, ..Default::default() },
    );
    let seconds = start.elapsed().as_secs_f64();
    Some(match selection {
        Some(sel) => {
            let (s_red, c_red, sil) = evaluate_grouping_in(&ctx, sel.grouping.groups());
            ProblemOutcome { solved: true, s_red, c_red, sil, seconds, groups: sel.grouping.len() }
        }
        None => {
            ProblemOutcome { solved: false, s_red: 0.0, c_red: 0.0, sil: 0.0, seconds, groups: 0 }
        }
    })
}

/// BL_P: spectral partitioning into ⌈|C_L|/2⌉ groups (constraint BL4).
fn run_blp(log: &EventLog) -> ProblemOutcome {
    let n = occurring_classes(log).len().div_ceil(2);
    let start = Instant::now();
    let partition = spectral_partitioning(log, n);
    let seconds = start.elapsed().as_secs_f64();
    match partition {
        Some(groups) => {
            let (s_red, c_red, sil) = evaluate_grouping(log, &groups);
            ProblemOutcome { solved: true, s_red, c_red, sil, seconds, groups: groups.len() }
        }
        None => {
            ProblemOutcome { solved: false, s_red: 0.0, c_red: 0.0, sil: 0.0, seconds, groups: 0 }
        }
    }
}

/// BL_G: greedy agglomerative grouping under the compiled constraints.
fn run_blg(log: &EventLog, dsl: &str) -> Option<ProblemOutcome> {
    let constraints = compile(log, dsl)?;
    let index = LogIndex::build(log);
    let ctx = EvalContext::new(log, &index);
    let start = Instant::now();
    let result = greedy_grouping(&ctx, &constraints);
    let seconds = start.elapsed().as_secs_f64();
    Some(match result {
        Some((grouping, _)) => {
            let (s_red, c_red, sil) = evaluate_grouping_in(&ctx, grouping.groups());
            ProblemOutcome { solved: true, s_red, c_red, sil, seconds, groups: grouping.len() }
        }
        None => {
            ProblemOutcome { solved: false, s_red: 0.0, c_red: 0.0, sil: 0.0, seconds, groups: 0 }
        }
    })
}

fn gather(
    collection: &[GeneratedLog],
    sets: &[ConstraintSetId],
    mut f: impl FnMut(&EventLog, &str) -> Option<ProblemOutcome>,
) -> Aggregate {
    let mut outcomes = Vec::new();
    for generated in collection {
        for &set in sets {
            if !applicable(set, &generated.log) {
                continue;
            }
            let dsl = constraint_dsl(set, &generated.log);
            if let Some(o) = f(&generated.log, &dsl) {
                outcomes.push(o);
            }
        }
    }
    Aggregate::from_outcomes(&outcomes)
}

fn main() {
    let smoke = smoke_requested();
    let scale = if smoke { CollectionScale::Smoke } else { CollectionScale::Full };
    let budget = std::env::var("GECCO_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1_000 } else { 10_000 });
    let collection = evaluation_collection(scale);
    println!("Table VII — Baseline comparison over applicable constraint sets\n");
    header("Conf.");

    use ConstraintSetId::*;
    // BL[1-3]: DFG∞ vs BL_Q.
    let dfg_inf = RunConfig {
        strategy: CandidateStrategy::DfgUnbounded,
        budget: Budget::max_checks(budget),
        ..Default::default()
    };
    let ours = gather(&collection, &[Bl1, Bl2, Bl3], |log, dsl| run_gecco(log, dsl, dfg_inf).ok());
    row(
        "DFGinf",
        &ours,
        Some(PaperRow { solved: 1.00, s_red: 0.63, c_red: 0.55, sil: 0.17, t_minutes: 77.0 }),
    );
    let blq = gather(&collection, &[Bl1, Bl2, Bl3], run_blq);
    row(
        "BL_Q",
        &blq,
        Some(PaperRow { solved: 0.96, s_red: 0.55, c_red: 0.43, sil: -0.20, t_minutes: 24.0 }),
    );
    println!();

    // BL4: Exh vs BL_P.
    let exh = RunConfig { budget: Budget::max_checks(budget), ..Default::default() };
    let ours = gather(&collection, &[Bl4], |log, dsl| run_gecco(log, dsl, exh).ok());
    row(
        "Exh",
        &ours,
        Some(PaperRow { solved: 1.00, s_red: 0.51, c_red: 0.46, sil: 0.05, t_minutes: 147.0 }),
    );
    let blp = gather(&collection, &[Bl4], |log, _| Some(run_blp(log)));
    row(
        "BL_P",
        &blp,
        Some(PaperRow { solved: 1.00, s_red: 0.51, c_red: 0.42, sil: 0.01, t_minutes: 1.0 }),
    );
    println!();

    // A, M, N: DFGk vs BL_G.
    let dfg_k = RunConfig {
        strategy: CandidateStrategy::DfgBeam { k: BeamWidth::PerClass(5) },
        budget: Budget::max_checks(budget),
        ..Default::default()
    };
    let ours = gather(&collection, &[A, M, N], |log, dsl| run_gecco(log, dsl, dfg_k).ok());
    row(
        "DFGk",
        &ours,
        Some(PaperRow { solved: 0.67, s_red: 0.59, c_red: 0.52, sil: 0.08, t_minutes: 58.0 }),
    );
    let blg = gather(&collection, &[A, M, N], run_blg);
    row(
        "BL_G",
        &blg,
        Some(PaperRow { solved: 0.64, s_red: 0.45, c_red: 0.37, sil: 0.02, t_minutes: 24.0 }),
    );
    println!("{}", "-".repeat(100));
    println!("Expected shape: GECCO beats each baseline on abstraction quality for the");
    println!("constraint sets that baseline supports (paper §VI-C).");
}
