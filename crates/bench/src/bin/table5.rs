//! Reproduces Table V: results of the exhaustive configuration (`Exh`) per
//! constraint set, averaged over solved problems.
//!
//! 121 abstraction problems: 13 logs × 10 constraint sets, minus the 9
//! logs BL3 does not apply to. Run with `--release`; `--smoke` uses tiny
//! logs and a small candidate budget.

use gecco_bench::report::{header, row, smoke_requested, PaperRow};
use gecco_bench::{
    applicable, constraint_dsl, run_gecco_shared, Aggregate, LogSession, RunConfig, ALL_SETS,
};
use gecco_core::{Budget, CandidateStrategy};
use gecco_datagen::{evaluation_collection, CollectionScale};

/// Paper Table V values (Solved, S.red, C.red, Sil., T in minutes).
fn paper_row(name: &str) -> Option<PaperRow> {
    let (solved, s_red, c_red, sil, t) = match name {
        "A" => (1.00, 0.68, 0.63, 0.15, 146.0),
        "M" => (0.31, 0.58, 0.55, 0.15, 75.0),
        "N" => (0.77, 0.68, 0.65, 0.12, 154.0),
        "Gr" => (1.00, 0.66, 0.61, 0.13, 144.0),
        "C1" => (0.54, 0.68, 0.59, 0.12, 134.0),
        "C2" => (0.23, 0.50, 0.40, 0.09, 100.0),
        "BL1" => (1.00, 0.67, 0.61, 0.12, 122.0),
        "BL2" => (1.00, 0.66, 0.61, 0.12, 121.0),
        "BL3" => (1.00, 0.38, 0.29, -0.02, 38.0),
        "BL4" => (1.00, 0.51, 0.46, 0.05, 147.0),
        _ => return None,
    };
    Some(PaperRow { solved, s_red, c_red, sil, t_minutes: t })
}

fn main() {
    let smoke = smoke_requested();
    let scale = if smoke { CollectionScale::Smoke } else { CollectionScale::Full };
    let budget = std::env::var("GECCO_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1_000 } else { 10_000 });
    let config = RunConfig {
        strategy: CandidateStrategy::Exhaustive,
        budget: Budget::max_checks(budget),
        ..Default::default()
    };
    let collection = evaluation_collection(scale);
    // One session per log: the occurrence index is built once and the
    // instance/verdict cache is shared across all ten constraint sets.
    let sessions: Vec<LogSession<'_>> =
        collection.iter().map(|generated| LogSession::new(&generated.log)).collect();
    println!("Table V — Exh configuration per constraint set (ours vs paper)");
    println!("(candidate budget: {budget} checks — the analogue of the paper's 5h timeout)\n");
    header("Const.");
    let mut total_problems = 0usize;
    for set in ALL_SETS {
        let mut outcomes = Vec::new();
        for (generated, session) in collection.iter().zip(&sessions) {
            if !applicable(set, &generated.log) {
                continue;
            }
            let dsl = constraint_dsl(set, &generated.log);
            match run_gecco_shared(session, &dsl, config) {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => eprintln!("  [skip] {} on {}: {e}", set.name(), generated.reference),
            }
        }
        total_problems += outcomes.len();
        row(set.name(), &Aggregate::from_outcomes(&outcomes), paper_row(set.name()));
    }
    println!("{}", "-".repeat(100));
    println!("{total_problems} abstraction problems solved or proven infeasible (paper: 121).");
    println!("T is seconds here vs minutes in the paper (logs scaled ~1/100, no Gurobi).");
}
