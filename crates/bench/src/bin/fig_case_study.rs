//! Reproduces the case study (§VI-D): Figure 1 (the 80/20 spaghetti DFG of
//! the loan log) and Figure 8 (the 80/20 DFG after origin-constrained
//! abstraction into system-pure activities).

use gecco_bench::report::smoke_requested;
use gecco_constraints::ConstraintSet;
use gecco_core::{Budget, CandidateStrategy, Gecco, Outcome};
use gecco_datagen::loan_log;
use gecco_discovery::filter_dfg;
use gecco_eventlog::{Dfg, LogStats};

fn main() {
    let traces = if smoke_requested() { 100 } else { 400 };
    let log = loan_log(traces, 2017);
    let stats = LogStats::from_log(&log);
    println!(
        "Loan log: {} classes, {} traces, {} variants, {} DFG edges (paper: 24 classes, 160 edges)",
        stats.num_classes, stats.num_traces, stats.num_variants, stats.num_dfg_edges
    );

    let dfg = Dfg::from_log(&log);
    let spaghetti = filter_dfg(&dfg, 0.8);
    println!(
        "\nFigure 1 — 80/20 DFG of the original log ({} of {} edges):",
        spaghetti.num_edges(),
        dfg.num_edges()
    );
    println!("{}", spaghetti.to_dot(&log));

    // The case-study constraint: activities must not mix originating
    // systems — |g.origin| <= 1 in the paper's notation.
    let constraints =
        ConstraintSet::parse("distinct(class, \"system\") <= 1; size(g) <= 8;").expect("valid DSL");
    let outcome = Gecco::new(&log)
        .constraints(constraints)
        .candidates(CandidateStrategy::DfgUnbounded)
        .budget(Budget::max_checks(20_000))
        .label_by("system")
        .run()
        .expect("compiles");
    let result = match outcome {
        Outcome::Abstracted(r) => r,
        Outcome::Infeasible(rep) => panic!("unexpectedly infeasible: {}", rep.summary),
    };

    println!(
        "\nAbstraction: {} high-level activities (paper: 7), dist = {:.2}",
        result.grouping().len(),
        result.distance()
    );
    for (group, name) in result.grouping().iter().zip(result.activity_names()) {
        println!("  {:<14} ← {}", name, log.format_group(group));
    }

    let abstracted_dfg = Dfg::from_log(result.log());
    let fig8 = filter_dfg(&abstracted_dfg, 0.8);
    println!(
        "\nFigure 8 — 80/20 DFG of the abstracted log ({} nodes, {} edges):",
        result.grouping().len(),
        fig8.num_edges()
    );
    println!("{}", fig8.to_dot(result.log()));

    // The paper's headline observation: without constraints, activities mix
    // events from all three systems, obscuring the inter-system flow.
    let unconstrained = Gecco::new(&log)
        .candidates(CandidateStrategy::DfgUnbounded)
        .budget(Budget::max_checks(20_000))
        .label_by("system")
        .run()
        .expect("compiles")
        .expect_abstracted();
    let key = log.key("system").expect("loan log has systems");
    let mixed = unconstrained
        .grouping()
        .iter()
        .filter(|g| {
            let mut systems = std::collections::HashSet::new();
            for c in g.iter() {
                if let Some(v) = log.classes().info(c).attribute(key) {
                    systems.insert(v.distinct_key());
                }
            }
            systems.len() > 1
        })
        .count();
    println!(
        "\nWithout the origin constraint, {} of {} groups mix events from different systems",
        mixed,
        unconstrained.grouping().len()
    );
    println!("— exactly the information loss the constraint-driven abstraction avoids (§VI-D).");
}
