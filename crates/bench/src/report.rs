//! Aligned text tables comparing measured values with the paper's.

use crate::runner::Aggregate;

/// Paper-reported row for side-by-side comparison.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Fraction of solved problems.
    pub solved: f64,
    /// Size reduction.
    pub s_red: f64,
    /// Complexity reduction.
    pub c_red: f64,
    /// Silhouette coefficient.
    pub sil: f64,
    /// Runtime in minutes on the paper's hardware.
    pub t_minutes: f64,
}

/// Prints the table header used by tables V–VII.
pub fn header(first_column: &str) {
    println!(
        "{first_column:<10} {:>7} {:>7} {:>7} {:>7} {:>8}   {:>7} {:>7} {:>7} {:>7} {:>6}",
        "Solved", "S.red", "C.red", "Sil.", "T(s)", "paper:", "Solved", "S.red", "C.red", "Sil."
    );
    println!("{}", "-".repeat(100));
}

/// Prints one measured row next to the paper's numbers.
pub fn row(label: &str, ours: &Aggregate, paper: Option<PaperRow>) {
    print!(
        "{label:<10} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
        ours.solved, ours.s_red, ours.c_red, ours.sil, ours.seconds
    );
    match paper {
        Some(p) => println!(
            "   {:>7} {:>7.2} {:>7.2} {:>7.2} {:>6.2}",
            "", p.solved, p.s_red, p.c_red, p.sil
        ),
        None => println!(),
    }
}

/// Parses `--smoke` / `GECCO_SMOKE=1` for quick runs.
pub fn smoke_requested() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("GECCO_SMOKE").is_ok_and(|v| v == "1" || v == "true")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_do_not_panic() {
        header("Const.");
        let agg =
            Aggregate { solved: 1.0, s_red: 0.5, c_red: 0.4, sil: 0.1, seconds: 2.0, problems: 3 };
        row(
            "A",
            &agg,
            Some(PaperRow { solved: 1.0, s_red: 0.68, c_red: 0.63, sil: 0.15, t_minutes: 146.0 }),
        );
        row("X", &agg, None);
    }
}
