//! The constraint sets of Table IV.
//!
//! Every set is combined with the class-based bound `size(g) <= 8`, exactly
//! as the paper does "to limit the number of abstraction problems that time
//! out". `Gr` is implemented as the lower bound `groups >= 3` (see
//! DESIGN.md, interpretation 3) and `BL4` as `groups == ⌈|C_L|/2⌉`.

use gecco_eventlog::{Dfg, EventLog};

/// Identifier of one Table IV constraint set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintSetId {
    /// Anti-monotonic: at most 3 distinct roles per group instance.
    A,
    /// Monotonic: total instance duration at least 101.
    M,
    /// Non-monotonic: average instance duration at most 5·10⁵.
    N,
    /// Grouping: at least 3 groups.
    Gr,
    /// A ∧ N ∧ Gr.
    C1,
    /// A ∧ M ∧ N ∧ Gr.
    C2,
    /// Class-based: groups of at most 5 classes.
    Bl1,
    /// BL1 plus a cannot-link between the two most frequent classes.
    Bl2,
    /// Class-attribute purity: one originating system per group.
    Bl3,
    /// Exactly ⌈|C_L|/2⌉ groups.
    Bl4,
}

/// All ten sets in Table IV order.
pub const ALL_SETS: [ConstraintSetId; 10] = [
    ConstraintSetId::A,
    ConstraintSetId::M,
    ConstraintSetId::N,
    ConstraintSetId::Gr,
    ConstraintSetId::C1,
    ConstraintSetId::C2,
    ConstraintSetId::Bl1,
    ConstraintSetId::Bl2,
    ConstraintSetId::Bl3,
    ConstraintSetId::Bl4,
];

impl ConstraintSetId {
    /// Short name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintSetId::A => "A",
            ConstraintSetId::M => "M",
            ConstraintSetId::N => "N",
            ConstraintSetId::Gr => "Gr",
            ConstraintSetId::C1 => "C1",
            ConstraintSetId::C2 => "C2",
            ConstraintSetId::Bl1 => "BL1",
            ConstraintSetId::Bl2 => "BL2",
            ConstraintSetId::Bl3 => "BL3",
            ConstraintSetId::Bl4 => "BL4",
        }
    }
}

/// The base constraint present in every experiment.
pub const BASE: &str = "size(g) <= 8;\n";

const A_DSL: &str = "distinct(instance, \"org:role\") <= 3;\n";
const M_DSL: &str = "sum(\"duration\") >= 101;\n";
const N_DSL: &str = "avg(\"duration\") <= 5e5;\n";
const GR_DSL: &str = "groups >= 3;\n";

/// Whether `set` applies to `log` (BL3 needs the class-level `system`
/// attribute on every class — 4 of the 13 collection logs).
pub fn applicable(set: ConstraintSetId, log: &EventLog) -> bool {
    match set {
        ConstraintSetId::Bl3 => log.key("system").is_some_and(|k| {
            log.classes().ids().all(|c| log.classes().info(c).attribute(k).is_some())
        }),
        _ => true,
    }
}

/// Renders the DSL program for `set` against `log`.
pub fn constraint_dsl(set: ConstraintSetId, log: &EventLog) -> String {
    let mut dsl = String::from(BASE);
    match set {
        ConstraintSetId::A => dsl.push_str(A_DSL),
        ConstraintSetId::M => dsl.push_str(M_DSL),
        ConstraintSetId::N => dsl.push_str(N_DSL),
        ConstraintSetId::Gr => dsl.push_str(GR_DSL),
        ConstraintSetId::C1 => {
            dsl.push_str(A_DSL);
            dsl.push_str(N_DSL);
            dsl.push_str(GR_DSL);
        }
        ConstraintSetId::C2 => {
            dsl.push_str(A_DSL);
            dsl.push_str(M_DSL);
            dsl.push_str(N_DSL);
            dsl.push_str(GR_DSL);
        }
        ConstraintSetId::Bl1 => dsl.push_str("size(g) <= 5;\n"),
        ConstraintSetId::Bl2 => {
            dsl.push_str("size(g) <= 5;\n");
            let (a, b) = two_most_frequent(log);
            dsl.push_str(&format!("cannot_link({a:?}, {b:?});\n"));
        }
        ConstraintSetId::Bl3 => dsl.push_str("distinct(class, \"system\") <= 1;\n"),
        ConstraintSetId::Bl4 => {
            let n = crate::runner::occurring_class_count(log);
            dsl.push_str(&format!("groups == {};\n", n.div_ceil(2)));
        }
    }
    dsl
}

/// The two most frequent event classes of a log (for BL2's cannot-link).
fn two_most_frequent(log: &EventLog) -> (String, String) {
    let dfg = Dfg::from_log(log);
    let mut classes: Vec<_> = dfg.nodes().filter(|&c| dfg.class_count(c) > 0).collect();
    classes.sort_by_key(|&c| std::cmp::Reverse(dfg.class_count(c)));
    let a = log.class_name(classes[0]).to_string();
    let b = log.class_name(classes.get(1).copied().unwrap_or(classes[0])).to_string();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
    use gecco_datagen::{evaluation_collection, running_example, CollectionScale};

    #[test]
    fn all_sets_parse_and_compile_on_running_example() {
        let log = running_example();
        for set in ALL_SETS {
            if !applicable(set, &log) {
                assert_eq!(set, ConstraintSetId::Bl3);
                continue;
            }
            let dsl = constraint_dsl(set, &log);
            let spec = ConstraintSet::parse(&dsl).unwrap_or_else(|e| panic!("{set:?}: {e}"));
            CompiledConstraintSet::compile(&spec, &log).unwrap_or_else(|e| panic!("{set:?}: {e}"));
        }
    }

    #[test]
    fn bl3_applies_to_exactly_four_collection_logs() {
        let collection = evaluation_collection(CollectionScale::Smoke);
        let n = collection.iter().filter(|g| applicable(ConstraintSetId::Bl3, &g.log)).count();
        assert_eq!(n, 4);
        // Total problem count matches the paper's 121.
        let total: usize = collection
            .iter()
            .map(|g| ALL_SETS.iter().filter(|&&s| applicable(s, &g.log)).count())
            .sum();
        assert_eq!(total, 121, "13 logs × 10 sets − 9 inapplicable BL3 = 121");
    }

    #[test]
    fn bl2_links_two_distinct_frequent_classes() {
        let log = running_example();
        let dsl = constraint_dsl(ConstraintSetId::Bl2, &log);
        assert!(dsl.contains("cannot_link(\"rcp\""), "rcp is the most frequent class: {dsl}");
    }

    #[test]
    fn bl4_halves_the_class_count() {
        let log = running_example();
        let dsl = constraint_dsl(ConstraintSetId::Bl4, &log);
        assert!(dsl.contains("groups == 4"), "8 classes → 4 groups: {dsl}");
    }
}
