//! Scale-path smoke tests over generated production logs.
//!
//! The first test doubles as a regression test for a simplex cycling bug:
//! this exact instance (12-class production tree, 60 traces, `size(g) ≤ 4`)
//! produced a degenerate column-generation master on which the old
//! EPS-fuzzy ratio-test tie-break looped forever. With the strict Bland
//! leaving rule the whole route finishes in milliseconds.

use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::candidates::exhaustive::exhaustive_candidates;
use gecco_core::{
    select_optimal, select_optimal_colgen, Budget, ColGenMode, DistanceOracle, SelectionOptions,
};
use gecco_datagen::{production_tree, simulate, SimulationOptions};
use gecco_eventlog::{EvalContext, EventLog, LogIndex, Segmenter};

fn production_log(classes: usize, traces: usize) -> EventLog {
    let tree = production_tree(classes, 12, 0xACE + classes as u64);
    simulate(&tree, &SimulationOptions { num_traces: traces, seed: 77, ..Default::default() })
}

#[test]
fn colgen_matches_enumerated_on_the_cycling_instance() {
    let log = production_log(12, 60);
    let compiled =
        CompiledConstraintSet::compile(&ConstraintSet::parse("size(g) <= 4;").unwrap(), &log)
            .unwrap();
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);

    let pool = exhaustive_candidates(&ctx, &compiled, Budget::UNLIMITED);
    let enumerated = select_optimal(
        &log,
        pool.groups(),
        &oracle,
        compiled.group_count_bounds(),
        SelectionOptions::default(),
    )
    .expect("feasible");

    let lazy = select_optimal_colgen(
        &log,
        &compiled,
        &oracle,
        compiled.group_count_bounds(),
        SelectionOptions { column_generation: ColGenMode::On, ..Default::default() },
    )
    .expect("feasible");

    assert_eq!(enumerated.grouping, lazy.grouping);
    assert_eq!(enumerated.distance.to_bits(), lazy.distance.to_bits());
    assert!(enumerated.proven_optimal && lazy.proven_optimal);
    let pricing = lazy.pricing.expect("lazy route reports pricing stats");
    assert!(pricing.columns_emitted <= pool.len(), "pricer cannot exceed the implicit pool");
}

#[test]
fn colgen_lp_bound_is_a_valid_lower_bound() {
    let log = production_log(10, 60);
    let compiled =
        CompiledConstraintSet::compile(&ConstraintSet::parse("size(g) <= 4;").unwrap(), &log)
            .unwrap();
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
    let lazy = select_optimal_colgen(
        &log,
        &compiled,
        &oracle,
        compiled.group_count_bounds(),
        SelectionOptions { column_generation: ColGenMode::On, ..Default::default() },
    )
    .expect("feasible");
    let stats = lazy.colgen.expect("colgen stats");
    assert!(stats.lp_bound.is_finite());
    assert!(stats.lp_bound <= lazy.distance + 1e-9, "{stats:?} vs {}", lazy.distance);
}
