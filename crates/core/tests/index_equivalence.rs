//! Property-based equivalence of indexed and scan-based evaluation.
//!
//! The `LogIndex` k-way-merge materialization, the `EvalContext` instance
//! APIs, indexed constraint checking and indexed distance scoring must all
//! be **bit-identical** to the naive full-log scan, on arbitrary logs, for
//! arbitrary groups, under both `Segmenter` modes, with and without a
//! shared `InstanceCache` — and under the `rayon` feature (CI runs this
//! suite with `--features rayon`, where candidate checks and distance
//! accumulation fan out over worker threads).

use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::{group_distance, group_distance_scan};
use gecco_eventlog::{
    instances, log_instances, ClassSet, EvalContext, EventLog, InstanceCache, LogBuilder, LogIndex,
    Segmenter,
};
use proptest::prelude::*;

/// Random small logs: up to 6 classes, up to 10 traces of length ≤ 12.
/// Every event carries deterministic `v`/`time:timestamp` attributes (a
/// function of its coordinates) so aggregate constraints have data, and an
/// `org:role` drawn from the class parity.
fn arb_log() -> impl Strategy<Value = EventLog> {
    let trace = proptest::collection::vec(0usize..6, 0..=12);
    proptest::collection::vec(trace, 1..=10).prop_map(|traces| {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("case-{i}"));
            for (j, &cls) in t.iter().enumerate() {
                let role = if cls % 2 == 0 { "even" } else { "odd" };
                tb = tb
                    .event_with(&format!("c{cls}"), |e| {
                        e.str("org:role", role)
                            .timestamp("time:timestamp", (i as i64) * 10_000 + (j as i64) * 100)
                            .int("v", ((i * 31 + j * 7 + cls) % 100) as i64);
                    })
                    .expect("small logs stay within class limits");
            }
            tb.done();
        }
        b.build()
    })
}

/// All non-empty groups over the log's registered classes (≤ 6 classes, so
/// at most 63 subsets — cheap enough to enumerate exhaustively per case).
fn all_groups(log: &EventLog) -> Vec<ClassSet> {
    let ids: Vec<_> = log.classes().ids().collect();
    (1u32..(1 << ids.len()))
        .map(|mask| {
            ids.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, c)| *c).collect()
        })
        .collect()
}

const CONSTRAINT_SETS: &[&str] = &[
    "count(instance) >= 2;",
    "sum(\"v\") <= 120;",
    "avg(\"v\") <= 50; size(g) <= 3;",
    "atleast 0.5 of instances: sum(\"v\") <= 80;",
    "distinct(instance, \"org:role\") <= 1;",
    "span(\"time:timestamp\") <= 500; gap(\"time:timestamp\") <= 300;",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_instances_match_scan(log in arb_log()) {
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        for segmenter in [Segmenter::RepeatSplit, Segmenter::NoSplit] {
            for group in all_groups(&log) {
                for (ti, trace) in log.traces().iter().enumerate() {
                    prop_assert_eq!(
                        ctx.instances_in(ti, &group, segmenter),
                        instances(trace, &group, segmenter),
                        "instances_in diverges on trace {} group {:?}", ti, group
                    );
                }
                let scan: Vec<_> = log_instances(&log, &group, segmenter).collect();
                prop_assert_eq!(ctx.log_instances(&group, segmenter), scan);
            }
        }
    }

    #[test]
    fn indexed_verdicts_match_scan(log in arb_log()) {
        let index = LogIndex::build(&log);
        let cache = InstanceCache::new();
        let plain = EvalContext::new(&log, &index);
        let cached = EvalContext::with_cache(&log, &index, &cache);
        let groups = all_groups(&log);
        for (dsl, segmenter) in CONSTRAINT_SETS
            .iter()
            .flat_map(|d| [(d, Segmenter::RepeatSplit), (d, Segmenter::NoSplit)])
        {
            let Ok(spec) = ConstraintSet::parse(dsl) else { unreachable!("fixed DSL parses") };
            // Logs whose traces never produced the attribute reject
            // compilation (UnknownAttribute) — nothing to compare there.
            let Ok(cs) = CompiledConstraintSet::compile_with(&spec, &log, segmenter) else {
                continue;
            };
            for group in &groups {
                let scan = cs.check_instances_scan(group, &log);
                prop_assert_eq!(cs.check_instances(group, &plain), scan,
                    "indexed check diverges: {} on {:?}", dsl, group);
                prop_assert_eq!(cs.check_instances(group, &cached), scan,
                    "cached check diverges: {} on {:?}", dsl, group);
                let holds_scan = cs.holds_scan(group, &log);
                prop_assert_eq!(cs.holds(group, &plain), holds_scan);
                // Twice through the cached context: second hit is a pure
                // verdict-cache lookup and must agree too.
                prop_assert_eq!(cs.holds(group, &cached), holds_scan);
                prop_assert_eq!(cs.holds(group, &cached), holds_scan);
            }
        }
    }

    #[test]
    fn indexed_occurs_matches_bitmap_scan(log in arb_log()) {
        let index = LogIndex::build(&log);
        // Every non-empty group over the registered classes — covering
        // single-class groups and groups no trace fully contains — plus the
        // empty group, must agree with the all-trace-bitmaps scan.
        for group in all_groups(&log) {
            prop_assert_eq!(
                index.occurs(&group),
                log.occurs(&group),
                "indexed occurs diverges on {:?}", group
            );
        }
        prop_assert_eq!(index.occurs(&ClassSet::EMPTY), log.occurs(&ClassSet::EMPTY));
    }

    #[test]
    fn indexed_distance_matches_scan(log in arb_log()) {
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        for segmenter in [Segmenter::RepeatSplit, Segmenter::NoSplit] {
            for group in all_groups(&log) {
                let indexed = group_distance(&ctx, &group, segmenter);
                let scan = group_distance_scan(&log, &group, segmenter);
                prop_assert!(
                    indexed.to_bits() == scan.to_bits(),
                    "distance diverges on {:?}: {} vs {}", group, indexed, scan
                );
            }
        }
    }
}
