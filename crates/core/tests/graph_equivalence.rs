//! Property-based bit-identity of the graph-executor pipeline and the
//! linear oracle.
//!
//! The pipeline-as-graph refactor re-expresses `Gecco::run` and
//! `run_multipass` as default graphs over `gecco_core::graph`; the
//! pre-refactor linear implementations survive as `Gecco::run_linear` and
//! `run_multipass_linear`. This suite holds the two routes **bit-identical**
//! on arbitrary logs — groupings, `f64` distance bits, activity names,
//! rewritten traces, the spliced index, candidate statistics, infeasibility
//! summaries and per-pass reports — both serially and (CI runs this suite
//! with `--features rayon`) with the executor's waves fanned out over
//! worker threads.

use gecco_constraints::ConstraintSet;
use gecco_core::{
    run_fanout, run_multipass, run_multipass_linear, set_parallel, CandidateStrategy, Gecco,
    GeccoError, MultiPassResult, Outcome,
};
use gecco_eventlog::{EventLog, LogBuilder};
use proptest::prelude::*;

/// Random small logs: up to 5 classes, up to 8 traces of length ≤ 10, with
/// deterministic `v`/`time:timestamp`/`org:role` attributes so aggregate
/// and distinct constraints have data to work on.
fn arb_log() -> impl Strategy<Value = EventLog> {
    let trace = proptest::collection::vec(0usize..5, 0..=10);
    proptest::collection::vec(trace, 1..=8).prop_map(|traces| {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("case-{i}"));
            for (j, &cls) in t.iter().enumerate() {
                let role = if cls % 2 == 0 { "even" } else { "odd" };
                tb = tb
                    .event_with(&format!("c{cls}"), |e| {
                        e.str("org:role", role)
                            .timestamp("time:timestamp", (i as i64) * 10_000 + (j as i64) * 100)
                            .int("v", ((i * 31 + j * 7 + cls) % 100) as i64);
                    })
                    .expect("small logs stay within class limits");
            }
            tb.done();
        }
        b.build()
    })
}

/// Constraint formulations to drive both routes through: feasible ones,
/// aggregate ones, and structurally infeasible ones (to exercise the
/// graph's conditional diagnostics routing).
const CONSTRAINT_SETS: &[&str] = &[
    "size(g) <= 2;",
    "count(instance) >= 1;",
    "sum(\"v\") <= 120;",
    "distinct(instance, \"org:role\") <= 1;",
    "size(g) >= 4; groups >= 3;",
];

/// Renders every trace — the strictest cheap fingerprint of a log.
fn formatted(log: &EventLog) -> Vec<String> {
    log.traces().iter().map(|t| log.format_trace(t)).collect()
}

/// Asserts two outcomes are bit-identical (including the infeasible arm's
/// rendered summary, which the graph's diagnostics node must reproduce
/// byte for byte).
fn assert_outcomes_identical(graph: &Outcome, linear: &Outcome) {
    match (graph, linear) {
        (Outcome::Abstracted(g), Outcome::Abstracted(l)) => {
            prop_assert_eq!(g.grouping(), l.grouping());
            prop_assert_eq!(g.distance().to_bits(), l.distance().to_bits());
            prop_assert_eq!(g.proven_optimal(), l.proven_optimal());
            prop_assert_eq!(g.activity_names(), l.activity_names());
            prop_assert_eq!(formatted(g.log()), formatted(l.log()));
            prop_assert_eq!(g.index(), l.index());
            prop_assert_eq!(g.candidate_stats(), l.candidate_stats());
        }
        (Outcome::Infeasible(g), Outcome::Infeasible(l)) => {
            prop_assert_eq!(&g.summary, &l.summary);
            prop_assert_eq!(&g.candidate_stats, &l.candidate_stats);
        }
        _ => prop_assert!(false, "routes disagree on feasibility"),
    }
}

fn assert_multipass_identical(graph: &MultiPassResult, linear: &MultiPassResult) {
    prop_assert_eq!(graph.reports().len(), linear.reports().len());
    for (g, l) in graph.reports().iter().zip(linear.reports()) {
        prop_assert_eq!(g.pass, l.pass);
        prop_assert_eq!(g.feasible, l.feasible);
        prop_assert_eq!(g.groups, l.groups);
        prop_assert_eq!(g.distance.to_bits(), l.distance.to_bits());
    }
    prop_assert_eq!(formatted(graph.log()), formatted(linear.log()));
    prop_assert_eq!(graph.index(), linear.index());
}

/// Serializes tests that flip the process-wide parallelism toggle.
static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` serially and in parallel and returns both results. Without the
/// `rayon` feature `set_parallel` is a no-op and both runs are serial (the
/// comparison then holds trivially).
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = TOGGLE_LOCK.lock().unwrap();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    set_parallel(false);
    let serial = f();
    set_parallel(true);
    let parallel = f();
    set_parallel(false);
    (serial, parallel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn graph_run_matches_linear(log in arb_log()) {
        for dsl in CONSTRAINT_SETS {
            for strategy in [CandidateStrategy::Exhaustive, CandidateStrategy::DfgUnbounded] {
                let build = || {
                    Gecco::new(&log)
                        .constraints(ConstraintSet::parse(dsl).unwrap())
                        .candidates(strategy)
                        .label_by("org:role")
                };
                match (build().run(), build().run_linear()) {
                    (Ok(graph), Ok(linear)) => assert_outcomes_identical(&graph, &linear),
                    (Err(GeccoError::Compile(g)), Err(GeccoError::Compile(l))) => {
                        // Attribute never occurs in this log: both routes
                        // must reject compilation identically.
                        prop_assert_eq!(g.to_string(), l.to_string());
                    }
                    (g, l) => prop_assert!(false, "routes diverge: {:?} vs {:?}", g, l),
                }
            }
        }
    }

    #[test]
    fn graph_multipass_matches_linear(log in arb_log()) {
        let sets: Vec<ConstraintSet> = [
            "size(g) >= 4; groups >= 3;", // often infeasible: exercises pass-through
            "size(g) <= 2;",
            "count(instance) >= 1;",
        ]
        .iter()
        .map(|d| ConstraintSet::parse(d).unwrap())
        .collect();
        let graph = run_multipass(&log, &sets, |g| g.label_by("org:role")).unwrap();
        let linear = run_multipass_linear(&log, &sets, |g| g.label_by("org:role")).unwrap();
        assert_multipass_identical(&graph, &linear);
    }

    #[test]
    fn fanout_matches_independent_passes(log in arb_log()) {
        let sets: Vec<ConstraintSet> = ["size(g) <= 2;", "size(g) >= 4; groups >= 3;"]
            .iter()
            .map(|d| ConstraintSet::parse(d).unwrap())
            .collect();
        let branches = run_fanout(&log, &sets, |g| g).unwrap();
        prop_assert_eq!(branches.len(), sets.len());
        for (i, branch) in branches.iter().enumerate() {
            let single =
                run_multipass_linear(&log, &sets[i..i + 1], |g| g).unwrap();
            prop_assert_eq!(branch.report().pass, i);
            prop_assert_eq!(branch.report().feasible, single.reports()[0].feasible);
            prop_assert_eq!(
                branch.report().distance.to_bits(),
                single.reports()[0].distance.to_bits()
            );
            prop_assert_eq!(formatted(branch.log()), formatted(single.log()));
            prop_assert_eq!(branch.index(), single.index());
        }
    }

    #[test]
    fn parallel_branches_match_serial(log in arb_log()) {
        // A multi-branch fan-out (independent passes in one wave) run with
        // the executor's parallelism on and off must be bit-identical.
        let sets: Vec<ConstraintSet> =
            ["size(g) <= 2;", "count(instance) >= 1;", "size(g) >= 4; groups >= 3;"]
                .iter()
                .map(|d| ConstraintSet::parse(d).unwrap())
                .collect();
        let (serial, parallel) = both(|| run_fanout(&log, &sets, |g| g).unwrap());
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.report().pass, p.report().pass);
            prop_assert_eq!(s.report().feasible, p.report().feasible);
            prop_assert_eq!(s.report().distance.to_bits(), p.report().distance.to_bits());
            prop_assert_eq!(formatted(s.log()), formatted(p.log()));
            prop_assert_eq!(s.index(), p.index());
        }
    }
}
