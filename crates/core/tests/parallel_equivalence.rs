//! Parallel candidate generation must be indistinguishable from serial —
//! same candidates, same statistics, bit-identical distances.
//!
//! Only meaningful with the `rayon` feature; without it `set_parallel` is a
//! no-op and both runs are serial (the assertions then hold trivially).
//! `RAYON_NUM_THREADS` is forced above the machine's core count so real
//! thread fan-out happens even on single-core CI runners.

use gecco_core::candidates::dfg::{dfg_candidates, NoObserver};
use gecco_core::candidates::exclusive::extend_with_exclusive_candidates;
use gecco_core::candidates::exhaustive::exhaustive_candidates;
use gecco_core::{group_distance, set_parallel, BeamWidth, Budget, CandidateSet};
use gecco_datagen::loan_log;
use gecco_eventlog::{EvalContext, EventLog, LogIndex, Segmenter};

fn compile(log: &EventLog, dsl: &str) -> gecco_constraints::CompiledConstraintSet {
    gecco_constraints::CompiledConstraintSet::compile(
        &gecco_constraints::ConstraintSet::parse(dsl).unwrap(),
        log,
    )
    .unwrap()
}

fn force_threads() {
    // Safe on edition 2021; tests that call this all set the same value.
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

/// Serializes tests that flip the process-wide parallelism toggle.
static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` twice — serially and in parallel — and returns both results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = TOGGLE_LOCK.lock().unwrap();
    force_threads();
    set_parallel(false);
    let serial = f();
    set_parallel(true);
    let parallel = f();
    set_parallel(true);
    (serial, parallel)
}

fn assert_same(serial: &CandidateSet, parallel: &CandidateSet) {
    assert_eq!(serial.groups(), parallel.groups(), "candidate sets diverge");
    assert_eq!(serial.stats, parallel.stats, "statistics diverge");
}

#[test]
fn exhaustive_parallel_matches_serial() {
    let log = loan_log(40, 3);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    for dsl in ["", "size(g) <= 3;", "distinct(instance, \"org:role\") <= 1;"] {
        let constraints = compile(&log, dsl);
        let (serial, parallel) =
            both(|| exhaustive_candidates(&ctx, &constraints, Budget::max_checks(3_000)));
        assert_same(&serial, &parallel);
    }
}

#[test]
fn dfg_parallel_matches_serial() {
    let log = loan_log(40, 3);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    for dsl in ["", "size(g) <= 4;", "distinct(instance, \"org:role\") <= 1;"] {
        let constraints = compile(&log, dsl);
        for beam in [None, Some(BeamWidth::Fixed(8)), Some(BeamWidth::PerClass(5))] {
            let (serial, parallel) = both(|| {
                dfg_candidates(&ctx, &constraints, beam, Budget::max_checks(2_000), &mut NoObserver)
            });
            assert_same(&serial, &parallel);
        }
    }
}

#[test]
fn exclusive_parallel_matches_serial() {
    let log = loan_log(40, 3);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let constraints = compile(&log, "size(g) <= 3;");
    let ((serial_added, serial), (parallel_added, parallel)) = both(|| {
        let mut cands = exhaustive_candidates(&ctx, &constraints, Budget::max_checks(2_000));
        let added = extend_with_exclusive_candidates(&ctx, &constraints, &mut cands);
        (added, cands)
    });
    assert_eq!(serial_added, parallel_added);
    assert_same(&serial, &parallel);
}

#[test]
fn distance_is_bit_identical() {
    // Enough traces to cross the parallel threshold (64).
    let log = loan_log(120, 4);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let classes: Vec<_> = log.classes().ids().collect();
    let groups: Vec<gecco_eventlog::ClassSet> = (0..classes.len().saturating_sub(1))
        .map(|i| [classes[i], classes[i + 1]].into_iter().collect())
        .collect();
    for group in &groups {
        let (serial, parallel) = both(|| group_distance(&ctx, group, Segmenter::RepeatSplit));
        assert_eq!(
            serial.to_bits(),
            parallel.to_bits(),
            "distance of {group:?} differs between serial and parallel"
        );
    }
}

#[test]
fn budget_exhaustion_is_equivalent() {
    // Tiny budgets stop mid-level; replay must match serial exactly.
    let log = loan_log(30, 2);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let constraints = compile(&log, "");
    for max_checks in [1, 3, 7, 20, 95] {
        let (serial, parallel) =
            both(|| exhaustive_candidates(&ctx, &constraints, Budget::max_checks(max_checks)));
        assert_same(&serial, &parallel);
        let (serial, parallel) = both(|| {
            dfg_candidates(
                &ctx,
                &constraints,
                Some(BeamWidth::Fixed(5)),
                Budget::max_checks(max_checks),
                &mut NoObserver,
            )
        });
        assert_same(&serial, &parallel);
    }
}
