//! Differential cross-validation of the Step-2 selection routes: the
//! un-presolved single solve (the seed path, kept as the oracle) versus
//! the presolved → decomposed → per-component pipeline, on both engines,
//! serial and parallel.
//!
//! Random instances vary density, inject duplicate sets, toggle
//! cardinality bounds and include infeasible cases. Costs are continuous,
//! so equal-cost optima are limited to deliberately injected duplicates —
//! which presolve collapses to one representative — and the suites
//! therefore assert cost-level equivalence plus solution validity; the
//! bit-identity assertions (same selection, same cost bits) are reserved
//! for the serial-vs-parallel comparison of the *same* route, which is
//! deterministic by construction.
//!
//! Runs with and without `--features rayon` (the CI matrix covers both);
//! without the feature the parallel assertions hold trivially.

use gecco_constraints::{CompiledConstraintSet, ConstraintSet};
use gecco_core::candidates::exhaustive::exhaustive_candidates;
use gecco_core::{
    select_optimal, select_optimal_colgen, set_parallel, solve_set_partition, Budget,
    DistanceOracle, MasterEngine, SelectionOptions,
};
use gecco_eventlog::{
    ClassCoOccurrence, ClassSet, EvalContext, EventLog, LogBuilder, LogIndex, Segmenter,
};
use gecco_solver::{SetPartitionProblem, SetPartitionSolution, SolveEngine};
use proptest::prelude::*;

fn force_threads() {
    // Safe on edition 2021; tests that call this all set the same value.
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

/// Serializes tests that flip the process-wide parallelism toggle.
static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` twice — serially and in parallel — and returns both results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = TOGGLE_LOCK.lock().unwrap();
    force_threads();
    set_parallel(false);
    let serial = f();
    set_parallel(true);
    let parallel = f();
    set_parallel(true);
    (serial, parallel)
}

/// Random weighted set-partitioning instances: 2–10 elements, up to 16
/// sets of varying density, a slice of injected duplicate sets (same
/// members, possibly different cost), optional cardinality bounds.
/// Instances with uncovered elements or unsatisfiable bounds are kept —
/// infeasibility must cross-validate too.
fn arb_problem() -> impl Strategy<Value = SetPartitionProblem> {
    (2usize..=10, 1usize..=16).prop_flat_map(|(elements, num_sets)| {
        let sets = proptest::collection::vec(
            (proptest::collection::btree_set(0..elements, 1..=elements), 0.1f64..10.0),
            num_sets,
        );
        // Duplicates: indices into the set list re-added with a new cost.
        let duplicates =
            proptest::collection::vec((0..num_sets, 0.1f64..10.0), 0..=3.min(num_sets));
        (
            Just(elements),
            sets,
            duplicates,
            proptest::option::of(0usize..4),
            proptest::option::of(1usize..6),
        )
            .prop_map(|(elements, sets, duplicates, min, max)| {
                let mut p = SetPartitionProblem::new(elements);
                for (members, cost) in &sets {
                    p.add_set(members.iter().copied().collect(), *cost);
                }
                for (source, cost) in duplicates {
                    p.add_set(sets[source].0.iter().copied().collect(), cost);
                }
                p.min_sets = min;
                p.max_sets = max;
                p
            })
    })
}

/// Asserts `s` is an exact cover of `p` within its cardinality bounds,
/// with the cost matching its own selection.
fn assert_valid(p: &SetPartitionProblem, s: &SetPartitionSolution) {
    let mut covered = vec![0u8; p.num_elements];
    for &i in &s.selected {
        for &m in &p.sets[i].0 {
            covered[m] += 1;
        }
    }
    assert!(covered.iter().all(|&c| c == 1), "not an exact cover");
    if let Some(min) = p.min_sets {
        assert!(s.selected.len() >= min);
    }
    if let Some(max) = p.max_sets {
        assert!(s.selected.len() <= max);
    }
    let recomputed: f64 = s.selected.iter().map(|&i| p.sets[i].1).sum();
    assert!((s.cost - recomputed).abs() < 1e-9, "cost does not match selection");
}

fn options(engine: SolveEngine, presolve: bool) -> SelectionOptions {
    SelectionOptions { engine, presolve, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// DLX == SimplexBnb == presolved-DLX == presolved-SimplexBnb, in
    /// feasibility and (when feasible) in cost, with every presolved
    /// solution a valid exact cover and a proven optimum.
    #[test]
    fn all_selection_routes_agree(p in arb_problem()) {
        let oracle = p.solve(SolveEngine::Dlx);
        let routes = [
            ("bnb", p.solve(SolveEngine::SimplexBnb)),
            ("presolved-dlx", solve_set_partition(&p, options(SolveEngine::Dlx, true))),
            ("presolved-bnb", solve_set_partition(&p, options(SolveEngine::SimplexBnb, true))),
        ];
        for (name, solution) in routes {
            match (&oracle, &solution) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert!(
                        (a.cost - b.cost).abs() < 1e-9,
                        "{name}: {} vs oracle {}", b.cost, a.cost
                    );
                    prop_assert!(b.proven_optimal, "{name}: optimality not proven");
                    assert_valid(&p, b);
                }
                _ => prop_assert!(
                    false, "{name} disagrees on feasibility: {solution:?} vs {oracle:?}"
                ),
            }
        }
    }

    /// The presolved route is deterministic, and its parallel component
    /// fan-out is bit-identical to the serial order.
    #[test]
    fn presolved_route_is_deterministic_and_parallel_equivalent(p in arb_problem()) {
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let opts = options(engine, true);
            let (serial, parallel) = both(|| solve_set_partition(&p, opts));
            let rerun = solve_set_partition(&p, opts);
            for (name, other) in [("parallel", &parallel), ("rerun", &rerun)] {
                match (&serial, other) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(&a.selected, &b.selected, "{} selection", name);
                        prop_assert_eq!(
                            a.cost.to_bits(), b.cost.to_bits(), "{} cost bits", name
                        );
                        prop_assert_eq!(a.proven_optimal, b.proven_optimal);
                    }
                    _ => prop_assert!(false, "{} feasibility flip: {:?} vs {:?}",
                        name, other, &serial),
                }
            }
        }
    }
}

/// Random small logs with optional group-count bounds and a constraint
/// toggle: `false` = unconstrained, `true` = the anti-monotonic
/// `size(g) <= 2` (exercising the pricer's constraint gate).
fn arb_selection_instance() -> impl Strategy<Value = (EventLog, Option<u32>, Option<u32>, bool)> {
    let trace = proptest::collection::vec(0usize..6, 0..=10);
    (
        proptest::collection::vec(trace, 1..=8),
        proptest::option::of(1u32..4),
        proptest::option::of(1u32..6),
        any::<bool>(),
    )
        .prop_map(|(traces, min, max, sized)| (build_log(traces), min, max, sized))
}

fn build_log(traces: Vec<Vec<usize>>) -> EventLog {
    let mut b = LogBuilder::new();
    for (i, t) in traces.iter().enumerate() {
        let mut tb = b.trace(&format!("case-{i}"));
        for &cls in t {
            tb = tb.event(&format!("c{cls}")).expect("within class limits");
        }
        tb.done();
    }
    b.build()
}

fn compile(log: &EventLog, sized: bool) -> CompiledConstraintSet {
    let dsl = if sized { "size(g) <= 2;" } else { "" };
    CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Column generation over the implicit pool versus the enumerated
    /// presolved route over Algorithm 1's pool — the same candidate space
    /// solved two ways, on both engines. Feasibility must agree, costs
    /// must match, and when the optimum is unique (same grouping) the
    /// canonical distances are bit-identical.
    #[test]
    fn colgen_matches_the_enumerated_oracle(instance in arb_selection_instance()) {
        let (log, min, max, sized) = instance;
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let compiled = compile(&log, sized);
        let pool = exhaustive_candidates(&ctx, &compiled, Budget::UNLIMITED);
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let opts = SelectionOptions { engine, ..Default::default() };
            let enumerated =
                select_optimal(&log, pool.groups(), &oracle, (min, max), opts);
            let lazy = select_optimal_colgen(&log, &compiled, &oracle, (min, max), opts);
            match (&enumerated, &lazy) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert!(
                        (a.distance - b.distance).abs() < 1e-9,
                        "{engine:?}: {} vs {}", b.distance, a.distance
                    );
                    prop_assert!(a.proven_optimal && b.proven_optimal, "{engine:?}");
                    prop_assert!(b.grouping.is_exact_cover(&log), "{engine:?}");
                    if let Some(lo) = min {
                        prop_assert!(b.grouping.len() >= lo as usize);
                    }
                    if let Some(hi) = max {
                        prop_assert!(b.grouping.len() <= hi as usize);
                    }
                    if a.grouping == b.grouping {
                        prop_assert_eq!(
                            a.distance.to_bits(), b.distance.to_bits(),
                            "{:?}: same selection, different bits", engine
                        );
                    }
                }
                _ => prop_assert!(
                    false,
                    "{engine:?} disagrees on feasibility: lazy {lazy:?} vs enumerated {enumerated:?}"
                ),
            }
        }
    }

    /// The revised-simplex master (warm-started, smoothed or not) against
    /// the dense tableau oracle, end to end: all four (master × smoothing)
    /// routes must return the *same* `Selection` — same grouping, same
    /// canonical distance, bit for bit. Pricing trajectories and restricted
    /// pools may differ, but the implicit pool and its optimum do not.
    #[test]
    fn colgen_master_routes_return_identical_selections(instance in arb_selection_instance()) {
        let (log, min, max, sized) = instance;
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let compiled = compile(&log, sized);
        let mut runs: Vec<(String, Option<gecco_core::Selection>)> = Vec::new();
        for colgen_master in [MasterEngine::Revised, MasterEngine::Dense] {
            for colgen_smoothing in [true, false] {
                let opts = SelectionOptions {
                    colgen_master,
                    colgen_smoothing,
                    ..Default::default()
                };
                let sel = select_optimal_colgen(&log, &compiled, &oracle, (min, max), opts);
                runs.push((format!("{colgen_master:?}/smoothing={colgen_smoothing}"), sel));
            }
        }
        let (base_label, base) = &runs[0];
        for (label, sel) in &runs[1..] {
            match (base, sel) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert!(
                        (a.distance - b.distance).abs() < 1e-9,
                        "{} vs {}: {} vs {}", label, base_label, b.distance, a.distance
                    );
                    prop_assert!(b.proven_optimal, "{}", label);
                    prop_assert!(b.grouping.is_exact_cover(&log), "{}", label);
                    if a.grouping == b.grouping {
                        prop_assert_eq!(
                            a.distance.to_bits(), b.distance.to_bits(),
                            "{}: same grouping, different bits", label
                        );
                    }
                }
                _ => prop_assert!(
                    false, "{} vs {}: feasibility flip", label, base_label
                ),
            }
        }
    }

    /// The lazy route is deterministic and parallel-invariant: rerunning
    /// it — serially or with the rayon fan-outs enabled — reproduces the
    /// identical selection, bit for bit.
    #[test]
    fn colgen_is_deterministic_and_parallel_equivalent(instance in arb_selection_instance()) {
        let (log, min, max, sized) = instance;
        let compiled = compile(&log, sized);
        let run = || {
            let index = LogIndex::build(&log);
            let ctx = EvalContext::new(&log, &index);
            let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
            select_optimal_colgen(&log, &compiled, &oracle, (min, max), SelectionOptions::default())
        };
        let (serial, parallel) = both(run);
        match (&serial, &parallel) {
            (None, None) => {}
            (Some(s), Some(p)) => {
                prop_assert_eq!(&s.grouping, &p.grouping);
                prop_assert_eq!(s.distance.to_bits(), p.distance.to_bits());
                prop_assert_eq!(s.proven_optimal, p.proven_optimal);
            }
            _ => prop_assert!(false, "feasibility flip: {serial:?} vs {parallel:?}"),
        }
    }

    /// Sketch-pruning safety end to end: filtering the enumerated pool
    /// through `may_occur` removes nothing — every Algorithm-1 candidate
    /// co-occurs and the sketch is one-sided — so the pruned pool
    /// contains every group of every optimal selection and yields the
    /// same optimum.
    #[test]
    fn sketch_pruning_never_drops_optimal_groups(instance in arb_selection_instance()) {
        let (log, _, _, sized) = instance;
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let compiled = compile(&log, sized);
        let pool = exhaustive_candidates(&ctx, &compiled, Budget::UNLIMITED);
        let sketch = ClassCoOccurrence::build(&index);
        let pruned: Vec<ClassSet> =
            pool.groups().iter().copied().filter(|g| sketch.may_occur(g)).collect();
        prop_assert_eq!(pruned.len(), pool.len(), "sketch pruned a co-occurring candidate");
        let full = select_optimal(
            &log, pool.groups(), &oracle, (None, None), SelectionOptions::default(),
        );
        let over_pruned = select_optimal(
            &log, &pruned, &oracle, (None, None), SelectionOptions::default(),
        );
        match (&full, &over_pruned) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                // The pruned pool is the full pool, so the selected groups
                // of the optimum all survive pruning.
                for group in a.grouping.groups() {
                    prop_assert!(pruned.contains(group), "optimal group lost to pruning");
                }
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
            _ => prop_assert!(false, "pruning flipped feasibility"),
        }
    }
}

/// A deterministic many-component instance with unique costs: every
/// route must return the identical selection, not just the same cost.
#[test]
fn multi_component_instance_identical_across_routes() {
    // 6 independent blocks of 4 elements; each block offers an all-block
    // set, two pairs and four singletons with distinct costs, so each
    // block has a unique optimum.
    let blocks = 6;
    let mut p = SetPartitionProblem::new(4 * blocks);
    for b in 0..blocks {
        let base = 4 * b;
        let jitter = b as f64 * 0.013;
        p.add_set((base..base + 4).collect(), 2.1 + jitter);
        p.add_set(vec![base, base + 1], 1.3 + jitter);
        p.add_set(vec![base + 2, base + 3], 1.4 + jitter);
        for e in 0..4 {
            p.add_set(vec![base + e], 0.9 + 0.01 * e as f64 + jitter);
        }
    }
    let oracle = p.solve(SolveEngine::Dlx).unwrap();
    assert!(oracle.proven_optimal);
    let (serial, parallel) = both(|| {
        [SolveEngine::Dlx, SolveEngine::SimplexBnb]
            .map(|engine| solve_set_partition(&p, options(engine, true)).unwrap())
    });
    for routed in serial.iter().chain(parallel.iter()) {
        assert_eq!(routed.selected, oracle.selected);
        assert!((routed.cost - oracle.cost).abs() < 1e-9);
        assert!(routed.proven_optimal);
    }
    // The two presolved runs are bit-identical to each other.
    for (s, p2) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.selected, p2.selected);
        assert_eq!(s.cost.to_bits(), p2.cost.to_bits());
    }
}

/// Node-budget degradation end to end: with a tiny per-component budget
/// the presolved route still returns a feasible (unproven) cover when
/// the engines find an incumbent — on both engines, matching the
/// engine-consistency fix (`BnbResult::Feasible`).
#[test]
fn budget_exhaustion_degrades_gracefully() {
    // Two odd 3-cycle blocks (fractional relaxations, no singleton
    // shortcut for DLX's first dive) + enough extra sets to keep the
    // search from finishing instantly.
    let mut p = SetPartitionProblem::new(6);
    for block in 0..2usize {
        let base = 3 * block;
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            p.add_set(vec![base + a, base + b], 1.0);
        }
        for e in 0..3 {
            p.add_set(vec![base + e], 0.55 + 0.01 * (base + e) as f64);
        }
    }
    let optimum = solve_set_partition(&p, options(SolveEngine::Dlx, true)).unwrap();
    assert!(optimum.proven_optimal);
    for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
        let mut saw_unproven = false;
        for budget in 1..=500 {
            let opts = SelectionOptions {
                engine,
                max_nodes: budget,
                presolve: true,
                ..Default::default()
            };
            match solve_set_partition(&p, opts) {
                None => continue,
                Some(s) => {
                    if !s.proven_optimal {
                        let mut covered = vec![0u8; p.num_elements];
                        for &i in &s.selected {
                            for &m in &p.sets[i].0 {
                                covered[m] += 1;
                            }
                        }
                        assert!(covered.iter().all(|&c| c == 1), "{engine:?}");
                        assert!(s.cost >= optimum.cost - 1e-9);
                        saw_unproven = true;
                        break;
                    }
                    assert!((s.cost - optimum.cost).abs() < 1e-9, "{engine:?}");
                    break;
                }
            }
        }
        assert!(saw_unproven, "{engine:?}: no budget exhausted with an incumbent");
    }
}
