//! Property-based equivalence of incremental and from-scratch index
//! maintenance under Step-3 abstraction.
//!
//! `abstract_log` splices the abstracted log's `LogIndex` while rewriting
//! the traces (see `IndexSplicer`); `LogIndex::build` on the finished log
//! is the oracle. The two must be **bit-identical** — structural equality
//! over runs, positions and counts — on arbitrary logs, for arbitrary
//! groupings (including partial covers that drop classes and empty whole
//! traces), under both `Segmenter` modes and both `AbstractionStrategy`s,
//! and under the `rayon` feature (CI runs this suite with
//! `--features rayon` as well).
//!
//! Deterministic regression tests below pin the pathological splices:
//! instances at trace boundaries, back-to-back instances, classes fully
//! consumed by abstraction, and traces left empty.

use gecco_core::abstraction::{abstract_log, activity_names, AbstractionStrategy};
use gecco_core::Grouping;
use gecco_eventlog::{ClassSet, EvalContext, EventLog, LogBuilder, LogIndex, Segmenter};
use proptest::prelude::*;

/// Random small logs: up to 6 classes, up to 10 traces of length ≤ 12,
/// with deterministic timestamps so the abstracted events carry data.
fn arb_log() -> impl Strategy<Value = EventLog> {
    let trace = proptest::collection::vec(0usize..6, 0..=12);
    proptest::collection::vec(trace, 1..=10).prop_map(|traces| {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("case-{i}"));
            for (j, &cls) in t.iter().enumerate() {
                tb = tb
                    .event_with(&format!("c{cls}"), |e| {
                        e.timestamp("time:timestamp", (i as i64) * 10_000 + (j as i64) * 100);
                    })
                    .expect("small logs stay within class limits");
            }
            tb.done();
        }
        b.build()
    })
}

/// Derives a grouping from a seed: classes are dealt into `buckets` groups
/// round-robin-by-seed, and classes whose bucket exceeds `kept` are dropped
/// entirely (not covered by any group) — exercising vanished classes and
/// emptied traces alongside ordinary partitions.
fn seeded_grouping(log: &EventLog, seed: u64, buckets: usize, kept: usize) -> Grouping {
    let mut groups: Vec<ClassSet> = vec![ClassSet::new(); buckets];
    let mut state = seed | 1;
    for c in log.classes().ids() {
        // xorshift64: cheap, deterministic, seed-sensitive.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let bucket = (state as usize) % buckets;
        if bucket < kept {
            groups[bucket].insert(c);
        }
    }
    Grouping::new(groups.into_iter().filter(|g| !g.is_empty()).collect())
}

fn assert_spliced_matches_rebuild(
    log: &EventLog,
    grouping: &Grouping,
    strategy: AbstractionStrategy,
    segmenter: Segmenter,
) {
    let index = LogIndex::build(log);
    let ctx = EvalContext::new(log, &index);
    let names = activity_names(log, grouping, None);
    let (abstracted, spliced) = abstract_log(&ctx, grouping, &names, strategy, segmenter);
    let rebuilt = LogIndex::build(&abstracted);
    prop_assert_eq!(
        &spliced,
        &rebuilt,
        "spliced index diverges from rebuild ({:?}, {:?})",
        strategy,
        segmenter
    );
    prop_assert!(spliced.validate(&abstracted).is_ok(), "spliced index fails validation");
    // The spliced index must also be usable: a context over it yields the
    // same instances as one over the rebuild.
    let spliced_ctx = EvalContext::new(&abstracted, &spliced);
    let rebuilt_ctx = EvalContext::new(&abstracted, &rebuilt);
    for c in abstracted.classes().ids() {
        let g = ClassSet::singleton(c);
        prop_assert_eq!(
            spliced_ctx.log_instances(&g, segmenter),
            rebuilt_ctx.log_instances(&g, segmenter)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spliced_index_is_bit_identical_to_rebuild(
        input in (arb_log(), any::<u64>(), 1usize..=4, 0usize..=1)
    ) {
        let (log, seed, buckets, dropped) = input;
        let kept = buckets.saturating_sub(dropped).max(1);
        let grouping = seeded_grouping(&log, seed, buckets, kept);
        for strategy in [AbstractionStrategy::Completion, AbstractionStrategy::StartComplete] {
            for segmenter in [Segmenter::RepeatSplit, Segmenter::NoSplit] {
                assert_spliced_matches_rebuild(&log, &grouping, strategy, segmenter);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic regressions: pathological splices.
// ---------------------------------------------------------------------------

fn log_from(traces: &[&[&str]]) -> EventLog {
    let mut b = LogBuilder::new();
    for (i, t) in traces.iter().enumerate() {
        let mut tb = b.trace(&format!("c{i}"));
        for cls in *t {
            tb = tb.event(cls).unwrap();
        }
        tb.done();
    }
    b.build()
}

fn set(log: &EventLog, names: &[&str]) -> ClassSet {
    names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
}

fn check_all_modes(log: &EventLog, grouping: &Grouping) {
    let index = LogIndex::build(log);
    let ctx = EvalContext::new(log, &index);
    let names = activity_names(log, grouping, None);
    for strategy in [AbstractionStrategy::Completion, AbstractionStrategy::StartComplete] {
        for segmenter in [Segmenter::RepeatSplit, Segmenter::NoSplit] {
            let (abstracted, spliced) = abstract_log(&ctx, grouping, &names, strategy, segmenter);
            assert_eq!(
                spliced,
                LogIndex::build(&abstracted),
                "splice diverges under {strategy:?}/{segmenter:?}"
            );
            assert!(spliced.validate(&abstracted).is_ok());
        }
    }
}

#[test]
fn instance_at_trace_start_and_end() {
    // The grouped span opens the first trace and closes the second.
    let log = log_from(&[&["a", "b", "x"], &["x", "a", "b"]]);
    let grouping = Grouping::new(vec![set(&log, &["a", "b"]), set(&log, &["x"])]);
    check_all_modes(&log, &grouping);
}

#[test]
fn back_to_back_instances_collapse_to_adjacent_postings() {
    // ⟨a b a b⟩ under RepeatSplit: two instances of {a,b} with no gap — the
    // abstracted class's postings run must carry two adjacent positions.
    let log = log_from(&[&["a", "b", "a", "b"]]);
    let grouping = Grouping::new(vec![set(&log, &["a", "b"])]);
    check_all_modes(&log, &grouping);

    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let names = activity_names(&log, &grouping, None);
    let (abstracted, spliced) = abstract_log(
        &ctx,
        &grouping,
        &names,
        AbstractionStrategy::Completion,
        Segmenter::RepeatSplit,
    );
    let activity = abstracted.class_by_name("Activity1").unwrap();
    assert_eq!(spliced.class_occurrences(activity), 2, "two back-to-back instances");
    assert_eq!(spliced.trace_count(activity), 1, "one postings run covers both");
}

#[test]
fn fully_consumed_class_leaves_no_postings() {
    // `b` exists only inside the abstracted group: the new log must not
    // register it at all, so no stale postings run can survive.
    let log = log_from(&[&["a", "b", "c"], &["c", "a", "b"]]);
    let grouping = Grouping::new(vec![set(&log, &["a", "b"]), set(&log, &["c"])]);
    check_all_modes(&log, &grouping);

    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let names = activity_names(&log, &grouping, None);
    let (abstracted, spliced) = abstract_log(
        &ctx,
        &grouping,
        &names,
        AbstractionStrategy::Completion,
        Segmenter::RepeatSplit,
    );
    assert!(abstracted.class_by_name("b").is_none(), "consumed class vanishes");
    assert!(abstracted.class_by_name("a").is_none());
    // The singleton group keeps its class name; the merged group is renamed.
    let c = abstracted.class_by_name("c").unwrap();
    assert_eq!(spliced.class_occurrences(c), 2);
}

#[test]
fn uncovered_class_empties_its_trace() {
    // Trace 1 consists solely of a class no group covers: the abstracted
    // trace is empty, and the splicer must still count it so trace ids in
    // the postings keep matching the log.
    let log = log_from(&[&["a", "z"], &["z", "z"], &["a"]]);
    let grouping = Grouping::new(vec![set(&log, &["a"])]);
    check_all_modes(&log, &grouping);

    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let names = activity_names(&log, &grouping, None);
    let (abstracted, spliced) = abstract_log(
        &ctx,
        &grouping,
        &names,
        AbstractionStrategy::Completion,
        Segmenter::RepeatSplit,
    );
    assert_eq!(abstracted.traces().len(), 3, "empty traces are preserved");
    assert!(abstracted.traces()[1].is_empty());
    assert_eq!(spliced.num_traces(), 3);
    let a = abstracted.class_by_name("a").unwrap();
    // Postings must point at traces 0 and 2 — a splicer that skipped the
    // empty trace would shift them onto trace 1.
    let ctx2 = EvalContext::new(&abstracted, &spliced);
    let hits: Vec<usize> = ctx2
        .log_instances(&ClassSet::singleton(a), Segmenter::RepeatSplit)
        .into_iter()
        .map(|(ti, _)| ti)
        .collect();
    assert_eq!(hits, vec![0, 2]);
}

#[test]
fn start_complete_doubles_postings_per_multi_event_instance() {
    let log = log_from(&[&["a", "x", "b"], &["a", "b", "a", "b"]]);
    let grouping = Grouping::new(vec![set(&log, &["a", "b"]), set(&log, &["x"])]);
    check_all_modes(&log, &grouping);

    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let names = activity_names(&log, &grouping, None);
    let (abstracted, spliced) = abstract_log(
        &ctx,
        &grouping,
        &names,
        AbstractionStrategy::StartComplete,
        Segmenter::RepeatSplit,
    );
    let start = abstracted.class_by_name("Activity1+s").unwrap();
    let complete = abstracted.class_by_name("Activity1+c").unwrap();
    assert_eq!(spliced.class_occurrences(start), 3);
    assert_eq!(spliced.class_occurrences(complete), 3);
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "index does not match the log")]
fn pre_abstraction_index_is_rejected_for_the_abstracted_log() {
    // The exact latent-gap scenario: abstraction preserves the trace count,
    // so the old trace-count-only debug assertion accepted a pre-abstraction
    // index for the rewritten log. The full postings validation rejects it.
    let log = log_from(&[&["a", "b", "c"], &["a", "c", "b"]]);
    let grouping = Grouping::new(vec![set(&log, &["a", "b"]), set(&log, &["c"])]);
    let index = LogIndex::build(&log);
    let ctx = EvalContext::new(&log, &index);
    let names = activity_names(&log, &grouping, None);
    let (abstracted, _spliced) = abstract_log(
        &ctx,
        &grouping,
        &names,
        AbstractionStrategy::Completion,
        Segmenter::RepeatSplit,
    );
    let _ = EvalContext::new(&abstracted, &index);
}
