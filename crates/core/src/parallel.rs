//! Opt-in parallel execution of the candidate-generation hot path.
//!
//! Built with the `rayon` cargo feature, the expensive, embarrassingly
//! parallel pieces of Step 1 — per-candidate constraint checks, per-trace
//! distance accumulation, and DFG pre-/postset indexing — fan out over all
//! cores. Without the feature every function here degenerates to its serial
//! form and [`set_parallel`] is a no-op, so callers never need `cfg` guards.
//!
//! Parallel runs are **bit-identical** to serial runs: work is split into
//! ordered chunks, partial results are combined in the exact order the
//! serial code would produce them (floating-point accumulation included),
//! and budget/shortcut bookkeeping is replayed serially against
//! pre-evaluated verdicts. `parallel == serial` is asserted by
//! `tests/parallel_equivalence.rs`.
//!
//! Parallelism defaults to **on** when the feature is compiled in; flip it
//! at runtime with [`set_parallel`] (process-wide, e.g. for A/B
//! benchmarking — see `bench_candidates`). The worker count follows the
//! `RAYON_NUM_THREADS` environment variable, falling back to the number of
//! available cores.

// gecco-lint: allow-file(unordered-par) — this module IS the order-preserving seam: work is
// split into ordered chunks and reassembled in input order, proven bit-identical to serial
// execution by tests/parallel_equivalence.rs
#[cfg(feature = "rayon")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "rayon")]
static PARALLEL: AtomicBool = AtomicBool::new(true);

/// Enables or disables parallel execution process-wide.
///
/// Without the `rayon` feature this is a no-op and execution is always
/// serial. Results are identical either way; only wall-clock time changes.
pub fn set_parallel(enabled: bool) {
    #[cfg(feature = "rayon")]
    PARALLEL.store(enabled, Ordering::Relaxed);
    #[cfg(not(feature = "rayon"))]
    let _ = enabled;
}

/// Whether parallel execution is compiled in *and* currently enabled.
pub fn parallel_enabled() -> bool {
    #[cfg(feature = "rayon")]
    {
        PARALLEL.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "rayon"))]
    {
        false
    }
}

/// Whether a parallel fan-out would actually use more than one worker.
/// Lets hot paths skip parallel-shaped work (chunking, per-worker state)
/// that costs more than the serial loop when only one thread is available.
pub(crate) fn parallel_active() -> bool {
    #[cfg(feature = "rayon")]
    {
        parallel_enabled() && rayon::current_num_threads() > 1
    }
    #[cfg(not(feature = "rayon"))]
    {
        false
    }
}

/// Maps `f` over `items`, in parallel when enabled and there are at least
/// `min_items` of them; output order always matches input order.
pub(crate) fn par_map<T, R, F>(items: &[T], min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    #[cfg(feature = "rayon")]
    {
        use rayon::prelude::*;
        if parallel_enabled() && items.len() >= min_items && rayon::current_num_threads() > 1 {
            return items.par_iter().map(f).collect();
        }
    }
    let _ = min_items;
    items.iter().map(f).collect()
}

/// Maps `f` over `items` with per-worker state: every worker (one
/// contiguous chunk of the input) builds its own `S` via `init` and threads
/// it through its chunk. Output order always matches input order.
///
/// This is how the chunk workers get a private
/// [`gecco_eventlog::EvalContext`] — the context's scratch buffers are not
/// `Sync`, so each worker rebuilds one from the shared
/// [`gecco_eventlog::ContextParts`] and reuses it across its whole chunk.
pub(crate) fn par_map_scoped<T, R, S, I, F>(items: &[T], min_items: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    #[cfg(feature = "rayon")]
    {
        use rayon::prelude::*;
        let threads = rayon::current_num_threads();
        if parallel_enabled() && items.len() >= min_items && threads > 1 {
            let chunk_size = items.len().div_ceil(threads);
            let per_chunk: Vec<Vec<R>> = items
                .par_chunks(chunk_size)
                .map(|chunk| {
                    let mut state = init();
                    chunk.iter().map(|item| f(&mut state, item)).collect()
                })
                .collect();
            return per_chunk.into_iter().flatten().collect();
        }
    }
    let _ = min_items;
    let mut state = init();
    items.iter().map(|item| f(&mut state, item)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_scoped_matches_serial_map() {
        let items: Vec<u32> = (0..200).collect();
        let out = par_map_scoped(&items, 1, Vec::<u32>::new, |scratch, &x| {
            scratch.push(x); // reused within a worker's chunk
            x * 2
        });
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&items, 1, |&x| x * 3);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn toggle_round_trips() {
        let initial = parallel_enabled();
        set_parallel(false);
        assert!(!parallel_enabled());
        set_parallel(true);
        assert_eq!(parallel_enabled(), cfg!(feature = "rayon"));
        set_parallel(initial);
    }
}
