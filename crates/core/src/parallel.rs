//! Opt-in parallel execution of the candidate-generation hot path.
//!
//! Built with the `rayon` cargo feature, the expensive, embarrassingly
//! parallel pieces of Step 1 — per-candidate constraint checks, per-trace
//! distance accumulation, and DFG pre-/postset indexing — fan out over all
//! cores. Without the feature every function here degenerates to its serial
//! form and [`set_parallel`] is a no-op, so callers never need `cfg` guards.
//!
//! Parallel runs are **bit-identical** to serial runs: work is split into
//! ordered chunks, partial results are combined in the exact order the
//! serial code would produce them (floating-point accumulation included),
//! and budget/shortcut bookkeeping is replayed serially against
//! pre-evaluated verdicts. `parallel == serial` is asserted by
//! `tests/parallel_equivalence.rs`.
//!
//! Parallelism defaults to **on** when the feature is compiled in; flip it
//! at runtime with [`set_parallel`] (process-wide, e.g. for A/B
//! benchmarking — see `bench_candidates`). The worker count follows the
//! `RAYON_NUM_THREADS` environment variable, falling back to the number of
//! available cores.

#[cfg(feature = "rayon")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "rayon")]
static PARALLEL: AtomicBool = AtomicBool::new(true);

/// Enables or disables parallel execution process-wide.
///
/// Without the `rayon` feature this is a no-op and execution is always
/// serial. Results are identical either way; only wall-clock time changes.
pub fn set_parallel(enabled: bool) {
    #[cfg(feature = "rayon")]
    PARALLEL.store(enabled, Ordering::Relaxed);
    #[cfg(not(feature = "rayon"))]
    let _ = enabled;
}

/// Whether parallel execution is compiled in *and* currently enabled.
pub fn parallel_enabled() -> bool {
    #[cfg(feature = "rayon")]
    {
        PARALLEL.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "rayon"))]
    {
        false
    }
}

/// Maps `f` over `items`, in parallel when enabled and there are at least
/// `min_items` of them; output order always matches input order.
pub(crate) fn par_map<T, R, F>(items: &[T], min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    #[cfg(feature = "rayon")]
    {
        use rayon::prelude::*;
        if parallel_enabled() && items.len() >= min_items && rayon::current_num_threads() > 1 {
            return items.par_iter().map(f).collect();
        }
    }
    let _ = min_items;
    items.iter().map(f).collect()
}

/// Maps `f` over `0..len`, in parallel when enabled and the range is at
/// least `min_items` long; output order always matches index order. Unlike
/// [`par_map`], needs no backing slice — the hot distance loop uses this to
/// avoid allocating an index vector per candidate.
pub(crate) fn par_map_range<R, F>(len: usize, min_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    #[cfg(feature = "rayon")]
    {
        use rayon::prelude::*;
        if parallel_enabled() && len >= min_items && rayon::current_num_threads() > 1 {
            return (0..len).into_par_iter().map(f).collect();
        }
    }
    let _ = min_items;
    (0..len).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_range_matches_serial() {
        let out = par_map_range(50, 1, |i| i * i);
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&items, 1, |&x| x * 3);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn toggle_round_trips() {
        let initial = parallel_enabled();
        set_parallel(false);
        assert!(!parallel_enabled());
        set_parallel(true);
        assert_eq!(parallel_enabled(), cfg!(feature = "rayon"));
        set_parallel(initial);
    }
}
