//! The distance measure of §IV-B (Eqs. 1 and 2).
//!
//! For a group `g` and log `L`:
//!
//! ```text
//!                Σ_{ξ ∈ inst(L,g)}  interrupts(ξ)/|ξ| + missing(ξ,g)/|g| + 1/|g|
//! dist(g, L) =  ─────────────────────────────────────────────────────────────────
//!                                   |inst(L, g)|
//! ```
//!
//! The three summands reward **cohesion** (few foreign events interleaved
//! within an instance), **correlation** (instances containing all classes of
//! the group) and **non-unary groups** (the `1/|g|` term strictly favors
//! larger groups at equal cohesion/correlation). The grouping distance
//! (Eq. 2) is the sum over its groups' distances.
//!
//! On the paper's running example the optimal grouping
//! `{{rcp,ckc,ckt}, {acc}, {rej}, {prio,inf,arv}}` scores exactly
//! `37/12 ≈ 3.08`, matching Figure 7 (see this module's tests).

use gecco_eventlog::{instances, ClassSet, EventLog, Segmenter, Trace};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Traces below this count are scored serially even when parallelism is on;
/// thread fan-out costs more than it saves on small logs.
const MIN_PARALLEL_TRACES: usize = 64;

/// Computes `dist(g, L)` (Eq. 1).
///
/// Returns `f64::INFINITY` for groups with no instance in the log — such
/// groups can never contribute to an abstraction.
///
/// With the `rayon` feature enabled (and [`crate::parallel::set_parallel`]
/// not turned off), the per-trace accumulation fans out over all cores.
/// Serial and parallel results are bit-identical: both sum one subtotal per
/// trace, in trace order.
pub fn group_distance(log: &EventLog, group: &ClassSet, segmenter: Segmenter) -> f64 {
    group_distance_impl(log, group, segmenter, crate::parallel::parallel_enabled())
}

fn group_distance_impl(
    log: &EventLog,
    group: &ClassSet,
    segmenter: Segmenter,
    parallel: bool,
) -> f64 {
    let group_size = group.len();
    debug_assert!(group_size > 0, "distance of the empty group is undefined");
    let traces = log.traces();
    let trace_sets = log.trace_class_sets();
    let mut total = 0.0;
    let mut count = 0usize;
    if parallel && traces.len() >= MIN_PARALLEL_TRACES {
        let subtotals = crate::parallel::par_map_range(traces.len(), MIN_PARALLEL_TRACES, |ti| {
            if trace_sets[ti].intersects(group) {
                trace_contribution(&traces[ti], group, group_size, segmenter)
            } else {
                (0.0, 0)
            }
        });
        for (sub, n) in subtotals {
            total += sub;
            count += n;
        }
    } else {
        for (ti, trace) in traces.iter().enumerate() {
            if !trace_sets[ti].intersects(group) {
                continue;
            }
            let (sub, n) = trace_contribution(trace, group, group_size, segmenter);
            total += sub;
            count += n;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// One trace's summands of Eq. 1: `(Σ per-instance terms, #instances)`.
fn trace_contribution(
    trace: &Trace,
    group: &ClassSet,
    group_size: usize,
    segmenter: Segmenter,
) -> (f64, usize) {
    let mut sub = 0.0;
    let mut n = 0usize;
    for inst in instances(trace, group, segmenter) {
        sub += inst.interrupts() as f64 / inst.len() as f64
            + inst.missing(group_size) as f64 / group_size as f64
            + 1.0 / group_size as f64;
        n += 1;
    }
    (sub, n)
}

/// Computes `dist(G, L)` (Eq. 2): the sum of the group distances.
pub fn grouping_distance(
    log: &EventLog,
    groups: impl IntoIterator<Item = ClassSet>,
    segmenter: Segmenter,
) -> f64 {
    groups.into_iter().map(|g| group_distance(log, &g, segmenter)).sum()
}

/// Memoizing distance evaluator.
///
/// Candidate computation (the beam sort of Algorithm 2 in particular) and
/// selection evaluate `dist` for the same groups repeatedly; the oracle
/// caches per-[`ClassSet`] results.
pub struct DistanceOracle<'a> {
    log: &'a EventLog,
    segmenter: Segmenter,
    cache: RefCell<HashMap<ClassSet, f64>>,
}

impl<'a> DistanceOracle<'a> {
    /// Creates an oracle for `log`.
    pub fn new(log: &'a EventLog, segmenter: Segmenter) -> Self {
        DistanceOracle { log, segmenter, cache: RefCell::new(HashMap::new()) }
    }

    /// `dist(g, L)`, memoized.
    pub fn distance(&self, group: &ClassSet) -> f64 {
        if let Some(&d) = self.cache.borrow().get(group) {
            return d;
        }
        let d = group_distance(self.log, group, self.segmenter);
        self.cache.borrow_mut().insert(*group, d);
        d
    }

    /// Fills the cache for `groups` ahead of time, scoring the uncached
    /// ones in parallel (one worker per chunk of candidates).
    ///
    /// A no-op when parallelism is off — lazy evaluation in [`Self::distance`]
    /// is then strictly better. Each parallel worker scores its candidates
    /// with the serial per-trace loop, so cached values are bit-identical to
    /// what [`Self::distance`] would have computed.
    pub fn prime(&self, groups: impl Iterator<Item = ClassSet>) {
        if !crate::parallel::parallel_enabled() {
            return;
        }
        let missing: Vec<ClassSet> = {
            let cache = self.cache.borrow();
            let mut seen = HashSet::new();
            groups.filter(|g| !cache.contains_key(g) && seen.insert(*g)).collect()
        };
        if missing.len() < 2 {
            return;
        }
        let (log, segmenter) = (self.log, self.segmenter);
        let distances = crate::parallel::par_map(&missing, 2, |g| {
            group_distance_impl(log, g, segmenter, false)
        });
        let mut cache = self.cache.borrow_mut();
        for (g, d) in missing.into_iter().zip(distances) {
            cache.insert(g, d);
        }
    }

    /// Number of distinct groups evaluated so far.
    pub fn evaluations(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The log this oracle evaluates against.
    pub fn log(&self) -> &'a EventLog {
        self.log
    }

    /// The segmenter used for instance computation.
    pub fn segmenter(&self) -> Segmenter {
        self.segmenter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    /// The paper's running example, Table I.
    pub(crate) fn running_example() -> EventLog {
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn figure7_optimal_grouping_scores_3_08() {
        let log = running_example();
        let g1 = group(&log, &["rcp", "ckc", "ckt"]);
        let g2 = group(&log, &["acc"]);
        let g3 = group(&log, &["rej"]);
        let g4 = group(&log, &["prio", "inf", "arv"]);
        let seg = Segmenter::RepeatSplit;
        // Component values derived by hand in the paper's terms:
        assert!((group_distance(&log, &g1, seg) - 2.0 / 3.0).abs() < 1e-12);
        assert!((group_distance(&log, &g2, seg) - 1.0).abs() < 1e-12);
        assert!((group_distance(&log, &g3, seg) - 1.0).abs() < 1e-12);
        assert!((group_distance(&log, &g4, seg) - 5.0 / 12.0).abs() < 1e-12);
        let total = grouping_distance(&log, [g1, g2, g3, g4], seg);
        assert!((total - 37.0 / 12.0).abs() < 1e-12, "Fig. 7 reports dist = 3.08, got {total}");
        assert_eq!(format!("{total:.2}"), "3.08");
    }

    #[test]
    fn unary_groups_have_distance_at_least_one_over_size() {
        let log = running_example();
        for c in log.classes().ids() {
            let d = group_distance(&log, &ClassSet::singleton(c), Segmenter::RepeatSplit);
            assert!(d >= 1.0 - 1e-12, "singletons have perfect cohesion but pay 1/|g| = 1");
        }
    }

    #[test]
    fn interrupted_groups_cost_more() {
        // ⟨a,b,c,d,e⟩: {a,e} has 3 interruptions; {a,b} none.
        let mut b = LogBuilder::new();
        b.trace("t")
            .event("a")
            .unwrap()
            .event("b")
            .unwrap()
            .event("c")
            .unwrap()
            .event("d")
            .unwrap()
            .event("e")
            .unwrap()
            .done();
        let log = b.build();
        let seg = Segmenter::RepeatSplit;
        let ae = group_distance(&log, &group(&log, &["a", "e"]), seg);
        let ab = group_distance(&log, &group(&log, &["a", "b"]), seg);
        assert!(ae > ab);
        // {a,e}: interrupts 3/2, missing 0, 1/2 → 2.0; {a,b}: 0 + 0 + 1/2.
        assert!((ae - 2.0).abs() < 1e-12);
        assert!((ab - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_classes_cost_more() {
        // b occurs in only one of two traces → one instance of {a,b} is incomplete.
        let mut lb = LogBuilder::new();
        lb.trace("t1").event("a").unwrap().event("b").unwrap().done();
        lb.trace("t2").event("a").unwrap().done();
        let log = lb.build();
        let d = group_distance(&log, &group(&log, &["a", "b"]), Segmenter::RepeatSplit);
        // Instance 1: 0 + 0 + 1/2; instance 2: 0 + 1/2 + 1/2 → avg = 3/4.
        assert!((d - 0.75).abs() < 1e-12);
    }

    #[test]
    fn absent_group_is_infinitely_distant() {
        let log = running_example();
        // A registered-but-unused class cannot happen via the builder, so
        // test with a group whose members never co-occur… they still have
        // instances individually; instead check the empty-instances path via
        // a class filtered out of all traces — emulate by a fresh log.
        let mut lb = LogBuilder::new();
        lb.trace("t").event("a").unwrap().done();
        let other = lb.build();
        let a = other.class_by_name("a").unwrap();
        drop(other);
        // Reuse id 'a' against the running example: class 0 exists there, so
        // instead assert on a log where the class never appears in traces.
        let mut lb2 = LogBuilder::new();
        lb2.class("ghost").unwrap();
        lb2.trace("t").event("real").unwrap().done();
        let log2 = lb2.build();
        let ghost = log2.class_by_name("ghost").unwrap();
        assert_eq!(
            group_distance(&log2, &ClassSet::singleton(ghost), Segmenter::RepeatSplit),
            f64::INFINITY
        );
        let _ = (log, a);
    }

    #[test]
    fn oracle_caches() {
        let log = running_example();
        let oracle = DistanceOracle::new(&log, Segmenter::RepeatSplit);
        let g = group(&log, &["rcp", "ckc", "ckt"]);
        let d1 = oracle.distance(&g);
        let d2 = oracle.distance(&g);
        assert_eq!(d1, d2);
        assert_eq!(oracle.evaluations(), 1);
        assert!((d1 - 2.0 / 3.0).abs() < 1e-12);
    }
}
