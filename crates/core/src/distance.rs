//! The distance measure of §IV-B (Eqs. 1 and 2).
//!
//! For a group `g` and log `L`:
//!
//! ```text
//!                Σ_{ξ ∈ inst(L,g)}  interrupts(ξ)/|ξ| + missing(ξ,g)/|g| + 1/|g|
//! dist(g, L) =  ─────────────────────────────────────────────────────────────────
//!                                   |inst(L, g)|
//! ```
//!
//! The three summands reward **cohesion** (few foreign events interleaved
//! within an instance), **correlation** (instances containing all classes of
//! the group) and **non-unary groups** (the `1/|g|` term strictly favors
//! larger groups at equal cohesion/correlation). The grouping distance
//! (Eq. 2) is the sum over its groups' distances.
//!
//! On the paper's running example the optimal grouping
//! `{{rcp,ckc,ckt}, {acc}, {rej}, {prio,inf,arv}}` scores exactly
//! `37/12 ≈ 3.08`, matching Figure 7 (see this module's tests).

use gecco_eventlog::{instances, ClassSet, EvalContext, EventLog, GroupInstance, Segmenter, Trace};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Traces below this count are scored serially even when parallelism is on;
/// thread fan-out costs more than it saves on small logs.
const MIN_PARALLEL_TRACES: usize = 64;

/// Computes `dist(g, L)` (Eq. 1) through the context's index: only traces
/// containing at least one class of the group are visited at all.
///
/// Returns `f64::INFINITY` for groups with no instance in the log — such
/// groups can never contribute to an abstraction.
///
/// With the `rayon` feature enabled (and [`crate::parallel::set_parallel`]
/// not turned off), the per-trace accumulation fans out over all cores,
/// each worker scoring its chunk of the relevant traces with a private
/// context. Serial and parallel results are bit-identical: both sum one
/// subtotal per relevant trace, in trace order, exactly like the
/// [`group_distance_scan`] oracle.
pub fn group_distance(ctx: &EvalContext<'_>, group: &ClassSet, segmenter: Segmenter) -> f64 {
    debug_assert!(!group.is_empty(), "distance of the empty group is undefined");
    if crate::parallel::parallel_active() {
        let trace_ids = ctx.index().group_traces(group);
        if trace_ids.len() >= MIN_PARALLEL_TRACES {
            let parts = ctx.parts();
            let subtotals = crate::parallel::par_map_scoped(
                &trace_ids,
                MIN_PARALLEL_TRACES,
                || parts.context(),
                |worker_ctx, &ti| trace_contribution_indexed(worker_ctx, ti, group, segmenter),
            );
            let mut total = 0.0;
            let mut count = 0usize;
            for (sub, n) in subtotals {
                total += sub;
                count += n;
            }
            return if count == 0 { f64::INFINITY } else { total / count as f64 };
        }
    }
    group_distance_serial(ctx, group, segmenter)
}

/// The strictly serial indexed scoring loop, used directly by parallel
/// workers (which must not fan out again). Streams through one postings
/// merge, accumulating a per-trace subtotal so the floating-point
/// summation order matches the scan oracle (and the parallel path) exactly.
fn group_distance_serial(ctx: &EvalContext<'_>, group: &ClassSet, segmenter: Segmenter) -> f64 {
    let group_size = group.len();
    let mut total = 0.0;
    let mut count = 0usize;
    let mut current_trace = usize::MAX;
    let mut sub = 0.0;
    let _: Option<()> = ctx.visit_instances(group, segmenter, |ti, inst| {
        if ti != current_trace {
            if current_trace != usize::MAX {
                total += sub;
            }
            sub = 0.0;
            current_trace = ti;
        }
        sub += instance_terms(&inst, group_size);
        count += 1;
        std::ops::ControlFlow::Continue(())
    });
    if current_trace != usize::MAX {
        total += sub;
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// The naive full-log-scan evaluation of Eq. 1, kept as the oracle for the
/// index-equivalence suite and the scan-vs-indexed benchmarks.
/// Bit-identical to [`group_distance`].
pub fn group_distance_scan(log: &EventLog, group: &ClassSet, segmenter: Segmenter) -> f64 {
    let group_size = group.len();
    debug_assert!(group_size > 0, "distance of the empty group is undefined");
    let trace_sets = log.trace_class_sets();
    let mut total = 0.0;
    let mut count = 0usize;
    for (ti, trace) in log.traces().iter().enumerate() {
        if !trace_sets[ti].intersects(group) {
            continue;
        }
        let (sub, n) = trace_contribution(trace, group, group_size, segmenter);
        total += sub;
        count += n;
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// One trace's summands of Eq. 1 via the index:
/// `(Σ per-instance terms, #instances)`.
fn trace_contribution_indexed(
    ctx: &EvalContext<'_>,
    ti: u32,
    group: &ClassSet,
    segmenter: Segmenter,
) -> (f64, usize) {
    let group_size = group.len();
    let mut sub = 0.0;
    let mut n = 0usize;
    for inst in ctx.instances_in(ti as usize, group, segmenter) {
        sub += instance_terms(&inst, group_size);
        n += 1;
    }
    (sub, n)
}

/// One trace's summands of Eq. 1 via the scan (oracle path).
fn trace_contribution(
    trace: &Trace,
    group: &ClassSet,
    group_size: usize,
    segmenter: Segmenter,
) -> (f64, usize) {
    let mut sub = 0.0;
    let mut n = 0usize;
    for inst in instances(trace, group, segmenter) {
        sub += instance_terms(&inst, group_size);
        n += 1;
    }
    (sub, n)
}

/// The three summands of Eq. 1 for one instance — shared by the indexed
/// and scan paths so their floating-point results cannot diverge.
#[inline]
fn instance_terms(inst: &GroupInstance, group_size: usize) -> f64 {
    inst.interrupts() as f64 / inst.len() as f64
        + inst.missing(group_size) as f64 / group_size as f64
        + 1.0 / group_size as f64
}

/// Computes `dist(G, L)` (Eq. 2): the sum of the group distances.
pub fn grouping_distance(
    ctx: &EvalContext<'_>,
    groups: impl IntoIterator<Item = ClassSet>,
    segmenter: Segmenter,
) -> f64 {
    groups.into_iter().map(|g| group_distance(ctx, &g, segmenter)).sum()
}

/// Memoizing distance evaluator.
///
/// Candidate computation (the beam sort of Algorithm 2 in particular) and
/// selection evaluate `dist` for the same groups repeatedly; the oracle
/// caches per-[`ClassSet`] results, scoring misses through its
/// [`EvalContext`]'s index.
pub struct DistanceOracle<'a> {
    ctx: &'a EvalContext<'a>,
    segmenter: Segmenter,
    cache: RefCell<HashMap<ClassSet, f64>>,
}

impl<'a> DistanceOracle<'a> {
    /// Creates an oracle over `ctx`'s log.
    pub fn new(ctx: &'a EvalContext<'a>, segmenter: Segmenter) -> Self {
        DistanceOracle { ctx, segmenter, cache: RefCell::new(HashMap::new()) }
    }

    /// `dist(g, L)`, memoized.
    pub fn distance(&self, group: &ClassSet) -> f64 {
        if let Some(&d) = self.cache.borrow().get(group) {
            return d;
        }
        let d = group_distance(self.ctx, group, self.segmenter);
        self.cache.borrow_mut().insert(*group, d);
        d
    }

    /// Fills the cache for `groups` ahead of time, scoring the uncached
    /// ones in parallel (one worker per chunk of candidates, each with its
    /// own private context).
    ///
    /// A no-op when parallelism is off — lazy evaluation in [`Self::distance`]
    /// is then strictly better. Each parallel worker scores its candidates
    /// with the serial per-trace loop, so cached values are bit-identical to
    /// what [`Self::distance`] would have computed.
    pub fn prime(&self, groups: impl Iterator<Item = ClassSet>) {
        if !crate::parallel::parallel_enabled() {
            return;
        }
        let missing: Vec<ClassSet> = {
            let cache = self.cache.borrow();
            let mut seen = HashSet::new();
            groups.filter(|g| !cache.contains_key(g) && seen.insert(*g)).collect()
        };
        if missing.len() < 2 {
            return;
        }
        let segmenter = self.segmenter;
        let parts = self.ctx.parts();
        let distances = crate::parallel::par_map_scoped(
            &missing,
            2,
            || parts.context(),
            |worker_ctx, g| group_distance_serial(worker_ctx, g, segmenter),
        );
        let mut cache = self.cache.borrow_mut();
        for (g, d) in missing.into_iter().zip(distances) {
            cache.insert(g, d);
        }
    }

    /// Number of distinct groups evaluated so far.
    pub fn evaluations(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The evaluation context this oracle scores against.
    pub fn ctx(&self) -> &'a EvalContext<'a> {
        self.ctx
    }

    /// The log this oracle evaluates against.
    pub fn log(&self) -> &'a EventLog {
        self.ctx.log()
    }

    /// The segmenter used for instance computation.
    pub fn segmenter(&self) -> Segmenter {
        self.segmenter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    /// The paper's running example, Table I.
    pub(crate) fn running_example() -> EventLog {
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn figure7_optimal_grouping_scores_3_08() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let g1 = group(&log, &["rcp", "ckc", "ckt"]);
        let g2 = group(&log, &["acc"]);
        let g3 = group(&log, &["rej"]);
        let g4 = group(&log, &["prio", "inf", "arv"]);
        let seg = Segmenter::RepeatSplit;
        // Component values derived by hand in the paper's terms:
        assert!((group_distance(&ctx, &g1, seg) - 2.0 / 3.0).abs() < 1e-12);
        assert!((group_distance(&ctx, &g2, seg) - 1.0).abs() < 1e-12);
        assert!((group_distance(&ctx, &g3, seg) - 1.0).abs() < 1e-12);
        assert!((group_distance(&ctx, &g4, seg) - 5.0 / 12.0).abs() < 1e-12);
        let total = grouping_distance(&ctx, [g1, g2, g3, g4], seg);
        assert!((total - 37.0 / 12.0).abs() < 1e-12, "Fig. 7 reports dist = 3.08, got {total}");
        assert_eq!(format!("{total:.2}"), "3.08");
    }

    #[test]
    fn unary_groups_have_distance_at_least_one_over_size() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        for c in log.classes().ids() {
            let d = group_distance(&ctx, &ClassSet::singleton(c), Segmenter::RepeatSplit);
            assert!(d >= 1.0 - 1e-12, "singletons have perfect cohesion but pay 1/|g| = 1");
        }
    }

    #[test]
    fn interrupted_groups_cost_more() {
        // ⟨a,b,c,d,e⟩: {a,e} has 3 interruptions; {a,b} none.
        let mut b = LogBuilder::new();
        b.trace("t")
            .event("a")
            .unwrap()
            .event("b")
            .unwrap()
            .event("c")
            .unwrap()
            .event("d")
            .unwrap()
            .event("e")
            .unwrap()
            .done();
        let log = b.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let seg = Segmenter::RepeatSplit;
        let ae = group_distance(&ctx, &group(&log, &["a", "e"]), seg);
        let ab = group_distance(&ctx, &group(&log, &["a", "b"]), seg);
        assert!(ae > ab);
        // {a,e}: interrupts 3/2, missing 0, 1/2 → 2.0; {a,b}: 0 + 0 + 1/2.
        assert!((ae - 2.0).abs() < 1e-12);
        assert!((ab - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_classes_cost_more() {
        // b occurs in only one of two traces → one instance of {a,b} is incomplete.
        let mut lb = LogBuilder::new();
        lb.trace("t1").event("a").unwrap().event("b").unwrap().done();
        lb.trace("t2").event("a").unwrap().done();
        let log = lb.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let d = group_distance(&ctx, &group(&log, &["a", "b"]), Segmenter::RepeatSplit);
        // Instance 1: 0 + 0 + 1/2; instance 2: 0 + 1/2 + 1/2 → avg = 3/4.
        assert!((d - 0.75).abs() < 1e-12);
    }

    #[test]
    fn absent_group_is_infinitely_distant() {
        let log = running_example();
        // A registered-but-unused class cannot happen via the builder, so
        // test with a group whose members never co-occur… they still have
        // instances individually; instead check the empty-instances path via
        // a class filtered out of all traces — emulate by a fresh log.
        let mut lb = LogBuilder::new();
        lb.trace("t").event("a").unwrap().done();
        let other = lb.build();
        let a = other.class_by_name("a").unwrap();
        drop(other);
        // Reuse id 'a' against the running example: class 0 exists there, so
        // instead assert on a log where the class never appears in traces.
        let mut lb2 = LogBuilder::new();
        lb2.class("ghost").unwrap();
        lb2.trace("t").event("real").unwrap().done();
        let log2 = lb2.build();
        let index2 = gecco_eventlog::LogIndex::build(&log2);
        let ctx2 = EvalContext::new(&log2, &index2);
        let ghost = log2.class_by_name("ghost").unwrap();
        assert_eq!(
            group_distance(&ctx2, &ClassSet::singleton(ghost), Segmenter::RepeatSplit),
            f64::INFINITY
        );
        let _ = (log, a);
    }

    #[test]
    fn indexed_distance_matches_scan_oracle() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let ids: Vec<_> = log.classes().ids().collect();
        for seg in [Segmenter::RepeatSplit, Segmenter::NoSplit] {
            for mask in 1u32..(1 << ids.len()) {
                let g: ClassSet = ids
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, c)| *c)
                    .collect();
                let indexed = group_distance(&ctx, &g, seg);
                let scan = group_distance_scan(&log, &g, seg);
                assert!(
                    indexed == scan || (indexed.is_infinite() && scan.is_infinite()),
                    "dist mismatch on {g:?}: {indexed} vs {scan}"
                );
            }
        }
    }

    #[test]
    fn oracle_caches() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let g = group(&log, &["rcp", "ckc", "ckt"]);
        let d1 = oracle.distance(&g);
        let d2 = oracle.distance(&g);
        assert_eq!(d1, d2);
        assert_eq!(oracle.evaluations(), 1);
        assert!((d1 - 2.0 / 3.0).abs() < 1e-12);
    }
}
