//! The end-to-end GECCO pipeline (Figure 4).
//!
//! Since the pipeline-as-graph refactor, [`Gecco::run`], [`run_multipass`]
//! and [`run_fanout`] are thin wrappers that build default graphs over the
//! [`crate::graph`] executor. The pre-refactor linear implementations
//! survive as [`Gecco::run_linear`] (reached through
//! [`Gecco::run_observed`]) and [`run_multipass_linear`]; they are the
//! bit-identity oracles the `graph_equivalence` proptest suite holds the
//! graph route to.

use crate::abstraction::{abstract_log, activity_names, AbstractionStrategy};
use crate::candidates::{
    dfg::{dfg_candidates, IterationObserver, NoObserver},
    exclusive::extend_with_exclusive_candidates,
    exhaustive::exhaustive_candidates,
    Budget, CandidateSet, CandidateStrategy,
};
use crate::distance::DistanceOracle;
use crate::graph::{
    AbstractorNode, Artifact, ArtifactKind, CandidateSourceNode, DiagnosticsNode, EdgeCond,
    ExclusiveMergeNode, GraphError, InputNode, PassNode, PipelineGraph, SelectorNode,
};
use crate::grouping::Grouping;
use crate::selection::{
    select_optimal, select_optimal_colgen, use_column_generation, SelectionOptions,
};
use gecco_constraints::{CompileError, CompiledConstraintSet, ConstraintSet, Diagnostics};
use gecco_eventlog::{EvalContext, EventLog, InstanceCache, LogIndex, Segmenter};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors that abort the pipeline before it can produce an outcome.
#[derive(Debug)]
pub enum GeccoError {
    /// The constraint specification does not fit the log.
    Compile(CompileError),
    /// A custom pipeline graph failed validation (cycle, arity or artifact
    /// kind mismatch). The prebuilt default graphs never raise this.
    Graph(GraphError),
}

impl fmt::Display for GeccoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeccoError::Compile(e) => write!(f, "constraint compilation failed: {e}"),
            GeccoError::Graph(e) => write!(f, "invalid pipeline graph: {e}"),
        }
    }
}

impl std::error::Error for GeccoError {}

impl From<CompileError> for GeccoError {
    fn from(e: CompileError) -> Self {
        GeccoError::Compile(e)
    }
}

/// Explanation returned when no feasible grouping exists (§V-C: GECCO
/// "returns the initial log" and "indicates possible causes").
#[derive(Debug, Clone)]
pub struct InfeasibilityReport {
    /// Per-constraint violation evidence.
    pub diagnostics: Diagnostics,
    /// Candidate statistics of the (failed) run.
    pub candidate_stats: crate::candidates::CandidateStats,
    /// Pre-rendered human-readable summary.
    pub summary: String,
}

/// Result of a successful abstraction.
#[derive(Debug)]
pub struct AbstractionResult {
    log: EventLog,
    index: LogIndex,
    grouping: Grouping,
    names: Vec<String>,
    distance: f64,
    proven_optimal: bool,
    candidate_stats: crate::candidates::CandidateStats,
    timings: Timings,
}

/// Wall-clock breakdown of the three steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Step 1: candidate computation (incl. exclusive merging).
    pub candidates: Duration,
    /// Step 2: MIP selection.
    pub selection: Duration,
    /// Step 3: trace rewriting.
    pub abstraction: Duration,
}

impl Timings {
    /// Total across the steps.
    pub fn total(&self) -> Duration {
        self.candidates + self.selection + self.abstraction
    }
}

impl AbstractionResult {
    /// The abstracted log `L'`.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The [`LogIndex`] of `L'`, spliced incrementally during Step 3 —
    /// bit-identical to `LogIndex::build(result.log())`, available without
    /// paying for that rebuild. Feed it (via [`Gecco::with_index`]) to any
    /// follow-up evaluation over the abstracted log.
    pub fn index(&self) -> &LogIndex {
        &self.index
    }

    /// Consumes the result into the abstracted log and its index — the
    /// seed state of the next pass in iterative abstraction.
    pub fn into_log_and_index(self) -> (EventLog, LogIndex) {
        (self.log, self.index)
    }

    /// The selected grouping `G`.
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// The activity name of each group (aligned with `grouping`).
    pub fn activity_names(&self) -> &[String] {
        &self.names
    }

    /// `dist(G, L)` of the selected grouping.
    pub fn distance(&self) -> f64 {
        self.distance
    }

    /// Whether the solver proved the grouping optimal (false when a search
    /// budget was hit and the incumbent was returned).
    pub fn proven_optimal(&self) -> bool {
        self.proven_optimal
    }

    /// Statistics from the candidate computation.
    pub fn candidate_stats(&self) -> &crate::candidates::CandidateStats {
        &self.candidate_stats
    }

    /// Wall-clock timings of the steps.
    pub fn timings(&self) -> Timings {
        self.timings
    }
}

/// Outcome of a pipeline run.
// The size difference between variants is intentional: outcomes are
// produced once per run, never stored in bulk, so boxing the result would
// only complicate the public API.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Outcome {
    /// A feasible grouping was found and the log abstracted.
    Abstracted(AbstractionResult),
    /// No grouping satisfies the constraints; the original log stands.
    Infeasible(InfeasibilityReport),
}

impl Outcome {
    /// Unwraps the abstraction result.
    ///
    /// # Panics
    /// Panics with the infeasibility summary if the run was infeasible.
    pub fn expect_abstracted(self) -> AbstractionResult {
        match self {
            Outcome::Abstracted(r) => r,
            Outcome::Infeasible(rep) => {
                panic!("abstraction problem infeasible:\n{}", rep.summary)
            }
        }
    }

    /// The abstraction result, if feasible.
    pub fn abstracted(&self) -> Option<&AbstractionResult> {
        match self {
            Outcome::Abstracted(r) => Some(r),
            Outcome::Infeasible(_) => None,
        }
    }
}

/// Builder for a GECCO run; see the crate docs for an example.
pub struct Gecco<'a> {
    log: &'a EventLog,
    constraints: ConstraintSet,
    strategy: CandidateStrategy,
    abstraction: AbstractionStrategy,
    segmenter: Segmenter,
    budget: Budget,
    selection: SelectionOptions,
    merge_exclusive: bool,
    label_attribute: Option<String>,
    index: Option<&'a LogIndex>,
    instance_cache: Option<&'a InstanceCache>,
}

impl<'a> Gecco<'a> {
    /// Starts configuring a run over `log` with defaults: no constraints,
    /// DFG-based candidates with unlimited beam, completion abstraction.
    pub fn new(log: &'a EventLog) -> Self {
        Gecco {
            log,
            constraints: ConstraintSet::new(),
            strategy: CandidateStrategy::DfgUnbounded,
            abstraction: AbstractionStrategy::Completion,
            segmenter: Segmenter::RepeatSplit,
            budget: Budget::UNLIMITED,
            selection: SelectionOptions::default(),
            merge_exclusive: true,
            label_attribute: None,
            index: None,
            instance_cache: None,
        }
    }

    /// Sets the user constraints `R`.
    pub fn constraints(mut self, constraints: ConstraintSet) -> Self {
        self.constraints = constraints;
        self
    }

    /// Chooses the Step-1 instantiation (Exh / DFG∞ / DFGk).
    pub fn candidates(mut self, strategy: CandidateStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Chooses the Step-3 strategy.
    pub fn abstraction(mut self, strategy: AbstractionStrategy) -> Self {
        self.abstraction = strategy;
        self
    }

    /// Sets the instance segmenter (default: recurrence splitting).
    pub fn segmenter(mut self, segmenter: Segmenter) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Bounds Step 1 (mirrors the paper's 5-hour candidate timeout).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Configures the Step-2 solver.
    pub fn selection(mut self, options: SelectionOptions) -> Self {
        self.selection = options;
        self
    }

    /// Enables/disables Algorithm 3 (exclusive-alternative merging).
    pub fn merge_exclusive(mut self, on: bool) -> Self {
        self.merge_exclusive = on;
        self
    }

    /// Names multi-class activities after this attribute when its value is
    /// constant within a group (e.g. `org:role` → `clerk1`, `clerk2`).
    pub fn label_by(mut self, attribute: &str) -> Self {
        self.label_attribute = Some(attribute.to_string());
        self
    }

    /// Reuses a pre-built [`LogIndex`] instead of building one per run.
    /// Callers running several constraint sets over the same log (the
    /// benchmark harness in particular) build the index once.
    ///
    /// The index must have been built from this run's log.
    pub fn with_index(mut self, index: &'a LogIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Attaches a shared [`InstanceCache`]: materialized group instances
    /// are reused across candidates and — because instances depend only on
    /// the group and segmenter — across every run over the same log, and
    /// `holds` verdicts are memoized per compiled constraint set.
    pub fn instance_cache(mut self, cache: &'a InstanceCache) -> Self {
        self.instance_cache = Some(cache);
        self
    }

    /// Runs the three steps **linearly** with a custom Step-1 observer
    /// (used to render the paper's Figure 5).
    ///
    /// This is the pre-refactor fixed chain, kept verbatim: it calls the
    /// same step functions as the graph route behind [`Gecco::run`] and is
    /// the oracle that route is proven bit-identical to (observers are not
    /// `Sync`, so the observed path cannot run on the parallel executor —
    /// which makes it the natural place for the serial reference).
    pub fn run_observed(self, observer: &mut dyn IterationObserver) -> Result<Outcome, GeccoError> {
        let compiled =
            CompiledConstraintSet::compile_with(&self.constraints, self.log, self.segmenter)?;

        // The evaluation context every step shares: the log's occurrence
        // index (built once per run unless the caller provides one) plus
        // the optional cross-run instance/verdict cache.
        let owned_index;
        let index: &LogIndex = match self.index {
            Some(index) => index,
            None => {
                owned_index = LogIndex::build(self.log);
                &owned_index
            }
        };
        let ctx = match self.instance_cache {
            Some(cache) => EvalContext::with_cache(self.log, index, cache),
            None => EvalContext::new(self.log, index),
        };

        // Step 1: candidate computation.
        // gecco-lint: allow(ambient-nondet) — stage timing for diagnostics only; it is
        // reported in PipelineStats and never folds into results
        let t0 = Instant::now();
        let mut candidates: CandidateSet = match self.strategy {
            CandidateStrategy::Exhaustive => exhaustive_candidates(&ctx, &compiled, self.budget),
            CandidateStrategy::DfgUnbounded => {
                dfg_candidates(&ctx, &compiled, None, self.budget, observer)
            }
            CandidateStrategy::DfgBeam { k } => {
                dfg_candidates(&ctx, &compiled, Some(k), self.budget, observer)
            }
        };
        if self.merge_exclusive {
            extend_with_exclusive_candidates(&ctx, &compiled, &mut candidates);
        }
        let candidates_time = t0.elapsed();

        // Step 2: optimal grouping. The column-generation route prices
        // candidates lazily out of the implicit pool instead of using the
        // Step-1 enumeration (which then only serves diagnostics).
        // gecco-lint: allow(ambient-nondet) — stage timing for diagnostics only; it is
        // reported in PipelineStats and never folds into results
        let t1 = Instant::now();
        let oracle = DistanceOracle::new(&ctx, self.segmenter);
        let selected = if use_column_generation(&self.selection, self.log, index) {
            select_optimal_colgen(
                self.log,
                &compiled,
                &oracle,
                compiled.group_count_bounds(),
                self.selection,
            )
        } else {
            select_optimal(
                self.log,
                candidates.groups(),
                &oracle,
                compiled.group_count_bounds(),
                self.selection,
            )
        };
        let selection_time = t1.elapsed();

        let Some(selection) = selected else {
            let diagnostics = Diagnostics::probe(&compiled, &ctx);
            let summary = format!(
                "no feasible grouping over {} candidates (checked {} groups{}).\n{}",
                candidates.len(),
                candidates.stats.checked,
                if candidates.stats.budget_exhausted { ", budget exhausted" } else { "" },
                diagnostics.render(self.log)
            );
            return Ok(Outcome::Infeasible(InfeasibilityReport {
                diagnostics,
                candidate_stats: candidates.stats,
                summary,
            }));
        };

        // Step 3: abstraction. The trace rewrite splices the new log's
        // index as it goes, so the result carries both.
        // gecco-lint: allow(ambient-nondet) — stage timing for diagnostics only; it is
        // reported in PipelineStats and never folds into results
        let t2 = Instant::now();
        let names = activity_names(self.log, &selection.grouping, self.label_attribute.as_deref());
        let (abstracted, abstracted_index) =
            abstract_log(&ctx, &selection.grouping, &names, self.abstraction, self.segmenter);
        let abstraction_time = t2.elapsed();

        Ok(Outcome::Abstracted(AbstractionResult {
            log: abstracted,
            index: abstracted_index,
            grouping: selection.grouping,
            names,
            distance: selection.distance,
            proven_optimal: selection.proven_optimal,
            candidate_stats: candidates.stats,
            timings: Timings {
                candidates: candidates_time,
                selection: selection_time,
                abstraction: abstraction_time,
            },
        }))
    }

    /// Runs the three steps through the default pipeline graph:
    ///
    /// ```text
    ///        input ──► candidates ──► exclusive-merge ─┬─► selector
    ///          │                                       │      │ Selection
    ///          ├───────────────────────────────────────┤      ├─────────► abstractor
    ///          │                                       │      │ Infeasible
    ///          └───────────────────────────────────────┴──────┴─────────► diagnostics
    /// ```
    ///
    /// The selector emits either a selection or an infeasible marker;
    /// conditional edges route the former to the abstractor and the latter
    /// to the diagnostics emitter (the other sink is skipped). The outcome
    /// is bit-identical to the linear [`Gecco::run_linear`] route — the
    /// `graph_equivalence` proptest suite asserts it, serially and under
    /// the `rayon` feature.
    pub fn run(self) -> Result<Outcome, GeccoError> {
        let compiled = Arc::new(CompiledConstraintSet::compile_with(
            &self.constraints,
            self.log,
            self.segmenter,
        )?);
        let owned_index;
        let index: &LogIndex = match self.index {
            Some(index) => index,
            None => {
                owned_index = LogIndex::build(self.log);
                &owned_index
            }
        };
        let cache = self.instance_cache;

        let mut graph = PipelineGraph::new();
        let input = graph.add_node(InputNode::new(Artifact::log(self.log, index)));
        let source = graph.add_node(CandidateSourceNode::new(
            self.strategy,
            self.budget,
            Arc::clone(&compiled),
            cache,
        ));
        graph.add_edge(input, source);
        let (candidates, merge) = if self.merge_exclusive {
            let merge = graph.add_node(ExclusiveMergeNode::new(Arc::clone(&compiled), cache));
            graph.add_edge(input, merge);
            graph.add_edge(source, merge);
            (merge, Some(merge))
        } else {
            (source, None)
        };
        let selector = graph.add_node(SelectorNode::new(
            Arc::clone(&compiled),
            self.segmenter,
            self.selection,
            cache,
        ));
        graph.add_edge(input, selector);
        graph.add_edge(candidates, selector);
        let abstractor = graph.add_node(AbstractorNode::new(
            self.abstraction,
            self.segmenter,
            self.label_attribute,
            cache,
        ));
        graph.add_edge(input, abstractor);
        graph.add_edge_when(selector, abstractor, EdgeCond::IfKind(ArtifactKind::Selection));
        let diagnostics = graph.add_node(DiagnosticsNode::new(Arc::clone(&compiled), cache));
        graph.add_edge(input, diagnostics);
        graph.add_edge(candidates, diagnostics);
        graph.add_edge_when(selector, diagnostics, EdgeCond::IfKind(ArtifactKind::Infeasible));

        let mut executed = graph.execute()?;
        let candidate_stats = executed
            .artifact(candidates)
            .and_then(Artifact::as_candidates)
            .expect("the candidate stage always runs")
            .stats
            .clone();
        let timings = Timings {
            candidates: executed.node_time(source)
                + merge.map(|m| executed.node_time(m)).unwrap_or_default(),
            selection: executed.node_time(selector),
            abstraction: executed.node_time(abstractor),
        };
        if let Some(output) =
            executed.take_artifact(abstractor).and_then(Artifact::into_abstraction)
        {
            Ok(Outcome::Abstracted(AbstractionResult {
                log: output.log,
                index: output.index,
                grouping: output.grouping,
                names: output.names,
                distance: output.distance,
                proven_optimal: output.proven_optimal,
                candidate_stats,
                timings,
            }))
        } else {
            let report = executed
                .take_artifact(diagnostics)
                .and_then(Artifact::into_report)
                .expect("the selector routes to the abstractor or to diagnostics");
            Ok(Outcome::Infeasible(report))
        }
    }

    /// Runs the pre-refactor linear chain — the serial oracle the graph
    /// route of [`Gecco::run`] is held bit-identical to.
    pub fn run_linear(self) -> Result<Outcome, GeccoError> {
        self.run_observed(&mut NoObserver)
    }
}

/// One pass's summary in an iterative [`run_multipass`] run.
#[derive(Debug, Clone, Copy)]
pub struct PassReport {
    /// Zero-based index of the constraint set this pass applied.
    pub pass: usize,
    /// Whether a feasible grouping was found (an infeasible pass leaves
    /// the log unchanged and the run continues).
    pub feasible: bool,
    /// Number of groups selected (0 when infeasible).
    pub groups: usize,
    /// `dist(G, L)` of the selected grouping (0.0 when infeasible).
    pub distance: f64,
}

/// Final state of an iterative abstraction run.
#[derive(Debug)]
pub struct MultiPassResult {
    log: EventLog,
    index: LogIndex,
    reports: Vec<PassReport>,
}

impl MultiPassResult {
    /// The log after the last feasible pass (the input log if none was).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The final log's [`LogIndex`]. After at least one feasible pass this
    /// is the incrementally spliced index of the last abstraction, handed
    /// from pass to pass without ever rebuilding.
    pub fn index(&self) -> &LogIndex {
        &self.index
    }

    /// Per-pass summaries, in application order.
    pub fn reports(&self) -> &[PassReport] {
        &self.reports
    }

    /// Consumes the result into the final log and its index.
    pub fn into_log_and_index(self) -> (EventLog, LogIndex) {
        (self.log, self.index)
    }
}

/// Iterative abstraction — the paper's re-abstraction use case: applies
/// `constraint_sets` in order, each pass running the full pipeline over the
/// previous pass's abstracted log. Step 3 returns the rewritten log
/// *together with* its incrementally spliced index, and that index seeds
/// the next pass's evaluation context, so [`LogIndex::build`] runs exactly
/// once (for the input log) no matter how many passes execute.
///
/// Since the pipeline-as-graph refactor this builds a chain of
/// [`PassNode`]s over the graph executor (each pass node internally runs
/// the default single-pass graph of [`Gecco::run`]); the pre-refactor loop
/// survives as [`run_multipass_linear`], the bit-identity oracle.
///
/// `configure` customizes each pass's [`Gecco`] builder (strategy, budget,
/// labeling, …); the pass's constraint set, index and a fresh per-pass
/// [`InstanceCache`] are applied afterwards and take precedence. The cache
/// override is deliberate: cache keys carry no log identity, so a cache
/// attached in `configure` would leak instances materialized from one
/// pass's log into the next pass's different log — each pass instead
/// shares instances across its own candidates only. Infeasible passes are
/// recorded and skipped — the log carries over unchanged, matching the
/// single-run behavior of returning the initial log (§V-C).
pub fn run_multipass(
    log: &EventLog,
    constraint_sets: &[ConstraintSet],
    configure: impl for<'b> Fn(Gecco<'b>) -> Gecco<'b> + Send + Sync,
) -> Result<MultiPassResult, GeccoError> {
    let seed_index = LogIndex::build(log);
    let configure = Arc::new(configure);
    let mut graph = PipelineGraph::new();
    let input = graph.add_node(InputNode::new(Artifact::log(log, &seed_index)));
    let mut prev = input;
    let mut passes = Vec::with_capacity(constraint_sets.len());
    for (pass, constraints) in constraint_sets.iter().enumerate() {
        let node = graph.add_node(PassNode::new(pass, constraints.clone(), Arc::clone(&configure)));
        graph.add_edge(prev, node);
        passes.push(node);
        prev = node;
    }
    let mut executed = graph.execute()?;
    let reports =
        passes.iter().map(|&p| executed.report(p).expect("pass nodes always run")).collect();
    let (final_log, final_index) = executed
        .take_artifact(prev)
        .and_then(Artifact::into_log)
        .expect("a pass chain ends in a log");
    Ok(MultiPassResult { log: final_log, index: final_index, reports })
}

/// The pre-refactor linear loop behind [`run_multipass`] — the serial
/// oracle the graph route is held bit-identical to (including pass
/// reports, the final log and its spliced index).
pub fn run_multipass_linear(
    log: &EventLog,
    constraint_sets: &[ConstraintSet],
    configure: impl for<'b> Fn(Gecco<'b>) -> Gecco<'b>,
) -> Result<MultiPassResult, GeccoError> {
    let mut current: Option<(EventLog, LogIndex)> = None;
    let mut seed_index: Option<LogIndex> = None;
    let mut reports = Vec::with_capacity(constraint_sets.len());
    for (pass, constraints) in constraint_sets.iter().enumerate() {
        let (pass_log, pass_index): (&EventLog, &LogIndex) = match &current {
            Some((l, idx)) => (l, idx),
            None => {
                let idx = seed_index.get_or_insert_with(|| LogIndex::build(log));
                (log, idx)
            }
        };
        let pass_cache = InstanceCache::new();
        let outcome = configure(Gecco::new(pass_log))
            .constraints(constraints.clone())
            .with_index(pass_index)
            .instance_cache(&pass_cache)
            .run_linear()?;
        match outcome {
            Outcome::Abstracted(result) => {
                reports.push(PassReport {
                    pass,
                    feasible: true,
                    groups: result.grouping().len(),
                    distance: result.distance(),
                });
                current = Some(result.into_log_and_index());
            }
            Outcome::Infeasible(_) => {
                reports.push(PassReport { pass, feasible: false, groups: 0, distance: 0.0 });
            }
        }
    }
    let (final_log, final_index) = match current {
        Some(pair) => pair,
        None => (log.clone(), seed_index.unwrap_or_else(|| LogIndex::build(log))),
    };
    Ok(MultiPassResult { log: final_log, index: final_index, reports })
}

/// The outcome of one independent branch of a [`run_fanout`] run.
#[derive(Debug)]
pub struct BranchOutcome {
    log: EventLog,
    index: LogIndex,
    report: PassReport,
}

impl BranchOutcome {
    /// The branch's abstracted log (the input log if the branch's
    /// constraint set was infeasible).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The branch log's [`LogIndex`] (spliced during abstraction — never
    /// rebuilt).
    pub fn index(&self) -> &LogIndex {
        &self.index
    }

    /// The branch's pass summary; `report().pass` is the index of the
    /// constraint set the branch applied.
    pub fn report(&self) -> &PassReport {
        &self.report
    }

    /// Consumes the branch into its log and index.
    pub fn into_log_and_index(self) -> (EventLog, LogIndex) {
        (self.log, self.index)
    }
}

/// Comparative abstraction — runs one independent pipeline pass per
/// constraint set over the *same* input log and returns every outcome, in
/// constraint-set order. This is the multi-branch counterpart of
/// [`run_multipass`]: the branches share nothing downstream of the input
/// node, so the graph executor schedules them in one wave and — under the
/// `rayon` feature — runs them on separate cores, bit-identical to serial
/// execution. Use it to compare alternative constraint formulations (e.g.
/// the paper's `DFG∞` vs. session-shaped scenarios) without `N` sequential
/// runs.
///
/// `configure` plays the same role as in [`run_multipass`] and is applied
/// to every branch; each branch gets a fresh per-branch [`InstanceCache`].
/// An infeasible branch yields the input log unchanged with
/// `report.feasible == false` rather than failing the whole fan-out.
pub fn run_fanout(
    log: &EventLog,
    constraint_sets: &[ConstraintSet],
    configure: impl for<'b> Fn(Gecco<'b>) -> Gecco<'b> + Send + Sync,
) -> Result<Vec<BranchOutcome>, GeccoError> {
    let seed_index = LogIndex::build(log);
    let configure = Arc::new(configure);
    let mut graph = PipelineGraph::new();
    let input = graph.add_node(InputNode::new(Artifact::log(log, &seed_index)));
    let mut branches = Vec::with_capacity(constraint_sets.len());
    for (pass, constraints) in constraint_sets.iter().enumerate() {
        let node = graph.add_node(PassNode::new(pass, constraints.clone(), Arc::clone(&configure)));
        graph.add_edge(input, node);
        branches.push(node);
    }
    let mut executed = graph.execute()?;
    branches
        .into_iter()
        .map(|node| {
            let report = executed.report(node).expect("pass nodes always run");
            let (branch_log, branch_index) = executed
                .take_artifact(node)
                .and_then(Artifact::into_log)
                .expect("a pass node yields a log");
            Ok(BranchOutcome { log: branch_log, index: branch_index, report })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::BeamWidth;
    use gecco_eventlog::LogBuilder;

    fn running_example() -> EventLog {
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb
                    .event_with(cls, |e| {
                        e.str("org:role", role_of(cls));
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn role_constraint() -> ConstraintSet {
        ConstraintSet::parse("distinct(instance, \"org:role\") <= 1;").unwrap()
    }

    #[test]
    fn end_to_end_running_example_dfg() {
        let log = running_example();
        let outcome = Gecco::new(&log)
            .constraints(role_constraint())
            .candidates(CandidateStrategy::DfgUnbounded)
            .label_by("org:role")
            .run()
            .unwrap();
        let result = outcome.expect_abstracted();
        assert_eq!(result.grouping().len(), 4, "paper: 4 groups");
        assert!((result.distance() - 37.0 / 12.0).abs() < 1e-9, "paper: dist = 3.08");
        assert!(result.proven_optimal());
        assert_eq!(result.activity_names(), &["clerk1", "acc", "clerk2", "rej"]);
        assert_eq!(result.log().format_trace(&result.log().traces()[0]), "⟨clerk1, acc, clerk2⟩");
    }

    #[test]
    fn exhaustive_at_least_as_good_as_dfg() {
        // The complete candidate set can only improve the optimum. On the
        // running example it genuinely does: the six clerk classes co-occur
        // in σ4, so the exhaustive search finds the coarser grouping
        // {all clerk steps}, {acc}, {rej} with dist = 911/360 ≈ 2.53, which
        // no role-pure DFG *path* can reach (every path from the intake
        // block to the closing block passes through acc or rej). This is
        // exactly why the paper scopes Fig. 7's dist = 3.08 as optimal
        // "given all candidates computed … using the DFG-based approach".
        let log = running_example();
        let exh = Gecco::new(&log)
            .constraints(role_constraint())
            .candidates(CandidateStrategy::Exhaustive)
            .run()
            .unwrap()
            .expect_abstracted();
        let dfg = Gecco::new(&log)
            .constraints(role_constraint())
            .candidates(CandidateStrategy::DfgUnbounded)
            .run()
            .unwrap()
            .expect_abstracted();
        assert!((dfg.distance() - 37.0 / 12.0).abs() < 1e-9);
        assert!(exh.distance() <= dfg.distance() + 1e-9);
        // The exhaustive optimum is strictly better (≈ 1.76: it may even
        // merge acc/rej, which co-occur in σ4's retry round — only the
        // DFG-path restriction keeps the manager decisions separate).
        assert!(exh.distance() < 2.0, "got {}", exh.distance());
        assert!(exh.grouping().is_exact_cover(&log));
    }

    #[test]
    fn beam_configuration_still_feasible() {
        let log = running_example();
        let out = Gecco::new(&log)
            .constraints(role_constraint())
            .candidates(CandidateStrategy::DfgBeam { k: BeamWidth::PerClass(5) })
            .run()
            .unwrap()
            .expect_abstracted();
        assert!(out.grouping().is_exact_cover(&log));
        // Beam k = 5·|C_L| is generous enough here to find the optimum too.
        assert!((out.distance() - 37.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_constraints_report_causes() {
        let log = running_example();
        // At least two groups of at least 5 classes each needs ≥ 10
        // classes, but the log has 8: structurally infeasible.
        let constraints = ConstraintSet::parse("size(g) >= 5; groups >= 2;").unwrap();
        let outcome = Gecco::new(&log).constraints(constraints).run().unwrap();
        match outcome {
            Outcome::Infeasible(rep) => {
                assert!(rep.summary.contains("no feasible grouping"));
                assert!(!rep.diagnostics.is_empty(), "singletons violate min-size");
            }
            Outcome::Abstracted(_) => panic!("expected infeasible"),
        }
    }

    #[test]
    fn grouping_constraints_bound_selection() {
        let log = running_example();
        let constraints = ConstraintSet::parse("groups >= 6;").unwrap();
        let out = Gecco::new(&log).constraints(constraints).run().unwrap().expect_abstracted();
        assert!(out.grouping().len() >= 6);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let log = running_example();
        let constraints = ConstraintSet::parse("sum(\"no_such\") <= 1;").unwrap();
        let err = Gecco::new(&log).constraints(constraints).run().unwrap_err();
        assert!(matches!(err, GeccoError::Compile(_)));
        assert!(err.to_string().contains("no_such"));
    }

    #[test]
    fn result_index_matches_full_rebuild() {
        let log = running_example();
        let result =
            Gecco::new(&log).constraints(role_constraint()).run().unwrap().expect_abstracted();
        assert_eq!(result.index(), &LogIndex::build(result.log()));
        assert!(result.index().validate(result.log()).is_ok());
    }

    #[test]
    fn multipass_chains_spliced_indexes() {
        let log = running_example();
        let sets = vec![role_constraint(), ConstraintSet::parse("size(g) <= 2;").unwrap()];
        let out = run_multipass(&log, &sets, |g| g.label_by("org:role")).unwrap();
        assert_eq!(out.reports().len(), 2);
        assert!(out.reports()[0].feasible && out.reports()[1].feasible);
        // The index handed out of the last pass is bit-identical to a
        // from-scratch rebuild of the final log.
        assert_eq!(out.index(), &LogIndex::build(out.log()));
        // And the loop matches chaining two runs by hand.
        let first = Gecco::new(&log)
            .constraints(role_constraint())
            .label_by("org:role")
            .run()
            .unwrap()
            .expect_abstracted();
        let (mid_log, mid_index) = first.into_log_and_index();
        let second = Gecco::new(&mid_log)
            .constraints(sets[1].clone())
            .with_index(&mid_index)
            .label_by("org:role")
            .run()
            .unwrap()
            .expect_abstracted();
        assert_eq!(out.log().traces().len(), second.log().traces().len());
        for (a, b) in out.log().traces().iter().zip(second.log().traces()) {
            assert_eq!(out.log().format_trace(a), second.log().format_trace(b));
        }
    }

    #[test]
    fn multipass_skips_infeasible_passes() {
        let log = running_example();
        let sets =
            vec![ConstraintSet::parse("size(g) >= 5; groups >= 2;").unwrap(), role_constraint()];
        let out = run_multipass(&log, &sets, |g| g).unwrap();
        assert!(!out.reports()[0].feasible, "structurally infeasible pass is recorded");
        assert!(out.reports()[1].feasible, "the run continues over the unchanged log");
        assert_eq!(out.reports()[1].groups, 4);
        assert_eq!(out.index(), &LogIndex::build(out.log()));
    }

    #[test]
    fn multipass_without_sets_returns_the_input() {
        let log = running_example();
        let out = run_multipass(&log, &[], |g| g).unwrap();
        assert!(out.reports().is_empty());
        assert_eq!(out.log().traces().len(), log.traces().len());
        assert_eq!(out.index(), &LogIndex::build(out.log()));
    }

    #[test]
    fn timings_are_recorded() {
        let log = running_example();
        let out =
            Gecco::new(&log).constraints(role_constraint()).run().unwrap().expect_abstracted();
        assert!(out.timings().total() > Duration::ZERO);
    }

    #[test]
    fn disabling_exclusive_merging_changes_result() {
        let log = running_example();
        let with =
            Gecco::new(&log).constraints(role_constraint()).run().unwrap().expect_abstracted();
        let without = Gecco::new(&log)
            .constraints(role_constraint())
            .merge_exclusive(false)
            .run()
            .unwrap()
            .expect_abstracted();
        // Without Algorithm 3 the ckc/ckt alternatives cannot merge, so the
        // optimum is strictly worse.
        assert!(without.distance() > with.distance() + 1e-9);
    }

    /// Renders every trace of `log` — the strictest cheap log fingerprint.
    fn formatted(log: &EventLog) -> Vec<String> {
        log.traces().iter().map(|t| log.format_trace(t)).collect()
    }

    #[test]
    fn graph_route_matches_linear_oracle() {
        let log = running_example();
        let build = || {
            Gecco::new(&log)
                .constraints(role_constraint())
                .candidates(CandidateStrategy::DfgUnbounded)
                .label_by("org:role")
        };
        let graph = build().run().unwrap().expect_abstracted();
        let linear = build().run_linear().unwrap().expect_abstracted();
        assert_eq!(graph.grouping(), linear.grouping());
        assert_eq!(graph.distance().to_bits(), linear.distance().to_bits());
        assert_eq!(graph.activity_names(), linear.activity_names());
        assert_eq!(formatted(graph.log()), formatted(linear.log()));
        assert_eq!(graph.index(), linear.index());
        assert_eq!(graph.candidate_stats(), linear.candidate_stats());
    }

    #[test]
    fn graph_route_matches_linear_oracle_when_infeasible() {
        let log = running_example();
        let constraints = || ConstraintSet::parse("size(g) >= 5; groups >= 2;").unwrap();
        let graph = Gecco::new(&log).constraints(constraints()).run().unwrap();
        let linear = Gecco::new(&log).constraints(constraints()).run_linear().unwrap();
        match (graph, linear) {
            (Outcome::Infeasible(g), Outcome::Infeasible(l)) => {
                assert_eq!(g.summary, l.summary, "diagnostics summary is byte-identical");
                assert_eq!(g.candidate_stats, l.candidate_stats);
            }
            _ => panic!("both routes must report infeasibility"),
        }
    }

    #[test]
    fn multipass_graph_matches_linear_oracle() {
        let log = running_example();
        let sets = vec![
            ConstraintSet::parse("size(g) >= 5; groups >= 2;").unwrap(), // infeasible
            role_constraint(),
            ConstraintSet::parse("size(g) <= 2;").unwrap(),
        ];
        let graph = run_multipass(&log, &sets, |g| g.label_by("org:role")).unwrap();
        let linear = run_multipass_linear(&log, &sets, |g| g.label_by("org:role")).unwrap();
        assert_eq!(graph.reports().len(), linear.reports().len());
        for (g, l) in graph.reports().iter().zip(linear.reports()) {
            assert_eq!((g.pass, g.feasible, g.groups), (l.pass, l.feasible, l.groups));
            assert_eq!(g.distance.to_bits(), l.distance.to_bits());
        }
        assert_eq!(formatted(graph.log()), formatted(linear.log()));
        assert_eq!(graph.index(), linear.index());
    }

    #[test]
    fn fanout_branches_match_independent_runs() {
        let log = running_example();
        let sets = vec![
            role_constraint(),
            ConstraintSet::parse("size(g) <= 2;").unwrap(),
            ConstraintSet::parse("size(g) >= 5; groups >= 2;").unwrap(), // infeasible
        ];
        let branches = run_fanout(&log, &sets, |g| g.label_by("org:role")).unwrap();
        assert_eq!(branches.len(), 3);
        for (i, branch) in branches.iter().enumerate() {
            assert_eq!(branch.report().pass, i);
            let single =
                run_multipass_linear(&log, &sets[i..i + 1], |g| g.label_by("org:role")).unwrap();
            assert_eq!(branch.report().feasible, single.reports()[0].feasible);
            assert_eq!(branch.report().distance.to_bits(), single.reports()[0].distance.to_bits());
            assert_eq!(formatted(branch.log()), formatted(single.log()));
            assert_eq!(branch.index(), single.index());
        }
        assert!(!branches[2].report().feasible);
        assert_eq!(
            formatted(branches[2].log()),
            formatted(&log),
            "infeasible branch passes through"
        );
    }
}
