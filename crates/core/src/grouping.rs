//! Groupings: exact covers of the event classes.

use gecco_eventlog::{ClassId, ClassSet, EventLog};

/// A grouping `G = {g₁, …, g_k}` (Problem 1): a set of disjoint groups whose
/// union is the set of event classes occurring in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    groups: Vec<ClassSet>,
}

impl Grouping {
    /// Builds a grouping from groups. Groups are stored sorted by their
    /// smallest class id for determinism.
    pub fn new(mut groups: Vec<ClassSet>) -> Self {
        groups.sort_by_key(|g| g.first());
        Grouping { groups }
    }

    /// The trivial grouping: every class is its own singleton group.
    pub fn singletons(log: &EventLog) -> Self {
        Grouping::new(occurring_classes(log).iter().map(ClassSet::singleton).collect())
    }

    /// The groups.
    pub fn groups(&self) -> &[ClassSet] {
        &self.groups
    }

    /// Number of groups, `|G|`.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterates over the groups.
    pub fn iter(&self) -> impl Iterator<Item = &ClassSet> {
        self.groups.iter()
    }

    /// The group containing class `c`, if any.
    pub fn group_of(&self, c: ClassId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(c))
    }

    /// Whether this grouping is an exact cover of the classes occurring in
    /// `log` (Problem 1: `⋂ gᵢ = ∅ ∧ ⋃ gᵢ = C_L`).
    pub fn is_exact_cover(&self, log: &EventLog) -> bool {
        let mut seen = ClassSet::new();
        for g in &self.groups {
            if g.intersects(&seen) {
                return false; // overlap
            }
            seen = seen.union(g);
        }
        seen == occurring_classes(log)
    }

    /// Renders the grouping with class names, one group per line.
    pub fn render(&self, log: &EventLog) -> String {
        self.groups.iter().map(|g| log.format_group(g)).collect::<Vec<_>>().join("\n")
    }
}

/// The classes that actually occur in the traces of `log` (classes may be
/// registered without events, e.g. when only class-level metadata was
/// imported; those need no covering).
pub fn occurring_classes(log: &EventLog) -> ClassSet {
    let mut all = ClassSet::new();
    for cs in log.trace_class_sets() {
        all = all.union(cs);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::LogBuilder;

    fn toy() -> EventLog {
        let mut b = LogBuilder::new();
        b.trace("t").event("a").unwrap().event("b").unwrap().event("c").unwrap().done();
        b.build()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn exact_cover_detection() {
        let log = toy();
        let good = Grouping::new(vec![set(&log, &["a", "b"]), set(&log, &["c"])]);
        assert!(good.is_exact_cover(&log));
        let overlapping = Grouping::new(vec![set(&log, &["a", "b"]), set(&log, &["b", "c"])]);
        assert!(!overlapping.is_exact_cover(&log));
        let incomplete = Grouping::new(vec![set(&log, &["a", "b"])]);
        assert!(!incomplete.is_exact_cover(&log));
    }

    #[test]
    fn singletons_cover() {
        let log = toy();
        let s = Grouping::singletons(&log);
        assert_eq!(s.len(), 3);
        assert!(s.is_exact_cover(&log));
    }

    #[test]
    fn group_of_lookup() {
        let log = toy();
        let g = Grouping::new(vec![set(&log, &["a", "c"]), set(&log, &["b"])]);
        let b = log.class_by_name("b").unwrap();
        let c = log.class_by_name("c").unwrap();
        assert_eq!(g.group_of(b), Some(1));
        assert_eq!(g.group_of(c), Some(0));
    }

    #[test]
    fn unused_registered_classes_need_no_cover() {
        let mut lb = LogBuilder::new();
        lb.class("ghost").unwrap();
        lb.trace("t").event("a").unwrap().done();
        let log = lb.build();
        let g = Grouping::new(vec![set(&log, &["a"])]);
        assert!(g.is_exact_cover(&log));
    }

    #[test]
    fn render_lists_groups() {
        let log = toy();
        let g = Grouping::new(vec![set(&log, &["b", "a"]), set(&log, &["c"])]);
        let s = g.render(&log);
        assert!(s.contains("{a, b}"));
        assert!(s.contains("{c}"));
    }
}
