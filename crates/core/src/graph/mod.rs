//! Pipeline-as-graph: a configurable DAG executor over typed pipeline
//! artifacts.
//!
//! The classic entry points run a fixed Step 1→2→3 chain. This module
//! generalizes that chain into a validated directed acyclic graph of
//! [`GraphNode`]s exchanging typed [`Artifact`]s, so scenario variants
//! (new candidate sources, diagnostics sinks, multi-pass topologies) plug
//! in as nodes instead of forking the pipeline:
//!
//! * **Nodes** — [`CandidateSourceNode`] (Algorithms 1/2),
//!   [`SessionCandidateSourceNode`] (session-based segmentation),
//!   [`ExclusiveMergeNode`] (Algorithm 3), [`UnionCandidatesNode`],
//!   [`SelectorNode`] (Step 2), [`AbstractorNode`] (Step 3),
//!   [`DiagnosticsNode`], and [`PassNode`] (one whole pass, for chains and
//!   fan-outs). Custom stages implement [`GraphNode`].
//! * **Artifacts** — a log with its index, candidate sets, selections,
//!   abstraction outputs and infeasibility reports; large payloads are
//!   reference-counted so fan-out is free.
//! * **Executor** — [`PipelineGraph`] validates arity/kinds/acyclicity up
//!   front, then schedules ready nodes in deterministic waves; independent
//!   branches run in parallel under the `rayon` feature, bit-identical to
//!   serial execution.
//! * **Conditional edges** — [`EdgeCond::IfKind`] routes a selector's
//!   infeasible outcome to a diagnostics emitter while the abstractor is
//!   skipped, instead of aborting the run.
//!
//! [`crate::Gecco::run`], [`crate::run_multipass`] and
//! [`crate::run_fanout`] are thin wrappers building default graphs over
//! this executor; the linear implementations survive as
//! [`crate::Gecco::run_linear`] / [`crate::run_multipass_linear`] and
//! serve as the bit-identity oracles (see `tests/graph_equivalence.rs` and
//! `docs/adr-pipeline-graph.md`).

mod artifact;
mod executor;
mod node;
mod nodes;

pub use artifact::{
    AbstractionOutput, Artifact, ArtifactKind, IndexRef, InfeasibleSignal, LogArtifact, LogRef,
};
pub use executor::{EdgeCond, GraphError, GraphRun, NodeId, NodeState, PipelineGraph};
pub use node::{GraphNode, InputKinds, NodeOutput};
pub use nodes::{
    AbstractorNode, CandidateSourceNode, DiagnosticsNode, ExclusiveMergeNode, InputNode, PassNode,
    SelectorNode, SessionCandidateSourceNode, StoreInputNode, UnionCandidatesNode,
};
