//! [`PipelineGraph`]: a validated DAG of [`GraphNode`]s and its
//! deterministic wave executor.
//!
//! ## Scheduling
//!
//! [`PipelineGraph::execute`] first validates the graph (acyclicity, input
//! arity, edge/port kind compatibility), then runs it in *waves*: each wave
//! is the set of unfinished nodes whose upstream nodes have all finished,
//! taken in ascending node-id order. The nodes of a wave are independent by
//! construction, so they run via [`crate::parallel::par_map`] — in parallel
//! under the `rayon` feature, serial otherwise — and their outputs are
//! committed in node-id order. Input artifacts are resolved in
//! edge-insertion order before the wave starts. Every source of
//! nondeterminism is thereby pinned: a parallel run is **bit-identical** to
//! a serial run of the same graph (asserted by the `graph_equivalence`
//! suite).
//!
//! ## Conditional edges
//!
//! An edge may carry an [`EdgeCond`]: [`EdgeCond::IfKind`] delivers only
//! when the upstream node produced an artifact of the given kind. A node
//! with an unfilled input port does not run — it is *skipped*, and skips
//! propagate: anything depending only on skipped nodes is skipped too.
//! This is how the default pipeline routes an infeasible selection to a
//! diagnostics emitter while the abstractor silently stands down (see
//! [`crate::graph`] docs).

use super::artifact::{Artifact, ArtifactKind};
use super::node::{GraphNode, InputKinds, NodeOutput};
use crate::pipeline::{GeccoError, PassReport};
use std::time::{Duration, Instant};

/// Identifier of a node within one [`PipelineGraph`], assigned densely in
/// [`PipelineGraph::add_node`] call order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// When an edge delivers its upstream artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCond {
    /// Deliver whatever the upstream node produced.
    Always,
    /// Deliver only an artifact of this kind; otherwise the edge stays
    /// silent and the downstream port remains unfilled.
    IfKind(ArtifactKind),
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: NodeId,
    cond: EdgeCond,
}

/// A structural problem detected by [`PipelineGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a cycle through the named node.
    Cycle {
        /// A node on the cycle.
        node: String,
    },
    /// A node's incoming edge count does not match its declared ports.
    InputArity {
        /// The offending node.
        node: String,
        /// Ports the node declares.
        expected: usize,
        /// Edges the graph wires into it.
        got: usize,
    },
    /// An edge can never deliver the kind its target port expects.
    KindMismatch {
        /// The upstream node.
        from: String,
        /// The downstream node.
        to: String,
        /// What the downstream port expects.
        expected: ArtifactKind,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cycle { node } => write!(f, "pipeline graph has a cycle through {node:?}"),
            GraphError::InputArity { node, expected, got } => write!(
                f,
                "node {node:?} declares {expected} input port(s) but has {got} incoming edge(s)"
            ),
            GraphError::KindMismatch { from, to, expected } => write!(
                f,
                "edge {from:?} -> {to:?} can never deliver the expected {expected} artifact"
            ),
        }
    }
}

/// What happened to one node during [`PipelineGraph::execute`].
#[derive(Debug)]
pub enum NodeState<'a> {
    /// The node ran and published this artifact.
    Produced(Artifact<'a>),
    /// The node did not run: a required input port stayed unfilled (its
    /// conditional edge did not fire, or an upstream node was skipped).
    Skipped,
}

/// The results of one graph execution, addressed by [`NodeId`].
pub struct GraphRun<'a> {
    states: Vec<NodeState<'a>>,
    reports: Vec<Option<PassReport>>,
    timings: Vec<Duration>,
}

impl<'a> GraphRun<'a> {
    /// The artifact `id` produced, or `None` if it was skipped.
    pub fn artifact(&self, id: NodeId) -> Option<&Artifact<'a>> {
        match &self.states[id.0] {
            NodeState::Produced(a) => Some(a),
            NodeState::Skipped => None,
        }
    }

    /// Removes and returns the artifact `id` produced (so terminal results
    /// can be extracted without cloning). `None` if skipped or taken.
    pub fn take_artifact(&mut self, id: NodeId) -> Option<Artifact<'a>> {
        match std::mem::replace(&mut self.states[id.0], NodeState::Skipped) {
            NodeState::Produced(a) => Some(a),
            NodeState::Skipped => None,
        }
    }

    /// Whether `id` was skipped (conditional input never arrived).
    pub fn was_skipped(&self, id: NodeId) -> bool {
        matches!(self.states[id.0], NodeState::Skipped)
    }

    /// The pass report `id` attached to its output, if any.
    pub fn report(&self, id: NodeId) -> Option<PassReport> {
        self.reports[id.0]
    }

    /// Wall-clock time `id` spent in [`GraphNode::run`] (zero if skipped).
    pub fn node_time(&self, id: NodeId) -> Duration {
        self.timings[id.0]
    }
}

/// A directed acyclic graph of [`GraphNode`]s over typed [`Artifact`]s.
///
/// See the [module docs](crate::graph) for the overall design and
/// [`crate::Gecco::run`] for the prebuilt default graph.
#[derive(Default)]
pub struct PipelineGraph<'a> {
    nodes: Vec<Box<dyn GraphNode<'a> + 'a>>,
    incoming: Vec<Vec<Edge>>,
}

impl<'a> PipelineGraph<'a> {
    /// An empty graph.
    pub fn new() -> PipelineGraph<'a> {
        PipelineGraph::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: impl GraphNode<'a> + 'a) -> NodeId {
        self.add_boxed(Box::new(node))
    }

    /// Adds an already-boxed node and returns its id.
    pub fn add_boxed(&mut self, node: Box<dyn GraphNode<'a> + 'a>) -> NodeId {
        self.nodes.push(node);
        self.incoming.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Wires an unconditional edge; for [`InputKinds::Exact`] targets the
    /// edge fills the next unfilled port (ports fill in edge-insertion
    /// order).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.add_edge_when(from, to, EdgeCond::Always);
    }

    /// Wires an edge that only delivers under `cond`.
    pub fn add_edge_when(&mut self, from: NodeId, to: NodeId, cond: EdgeCond) {
        assert!(from.0 < self.nodes.len(), "unknown source node");
        assert!(to.0 < self.nodes.len(), "unknown target node");
        self.incoming[to.0].push(Edge { from, cond });
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Checks the graph's structure: every [`InputKinds::Exact`] node has
    /// exactly one edge per port and every edge can deliver the kind its
    /// port expects; the edge relation is acyclic. Returns a topological
    /// order on success.
    pub fn validate(&self) -> Result<Vec<NodeId>, GraphError> {
        // Arity and kind compatibility.
        for (i, node) in self.nodes.iter().enumerate() {
            let edges = &self.incoming[i];
            match node.input_kinds() {
                InputKinds::Exact(kinds) => {
                    if edges.len() != kinds.len() {
                        return Err(GraphError::InputArity {
                            node: node.name().to_string(),
                            expected: kinds.len(),
                            got: edges.len(),
                        });
                    }
                    for (edge, &want) in edges.iter().zip(kinds) {
                        self.check_edge(edge, i, want)?;
                    }
                }
                InputKinds::Variadic(kind) => {
                    for edge in edges {
                        self.check_edge(edge, i, kind)?;
                    }
                }
            }
        }
        // Kahn's algorithm for a topological order / cycle detection.
        let n = self.nodes.len();
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (to, edges) in self.incoming.iter().enumerate() {
            for edge in edges {
                outgoing[edge.from.0].push(to);
                indegree[to] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(NodeId(i));
            for &to in &outgoing[i] {
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    ready.push(to);
                }
            }
        }
        if order.len() != n {
            let node = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.nodes[i].name().to_string())
                .unwrap_or_default();
            return Err(GraphError::Cycle { node });
        }
        Ok(order)
    }

    /// Whether `edge` could ever deliver an artifact of kind `want`.
    fn check_edge(&self, edge: &Edge, to: usize, want: ArtifactKind) -> Result<(), GraphError> {
        let source = &self.nodes[edge.from.0];
        let deliverable = match edge.cond {
            EdgeCond::Always => source.output_kinds().contains(&want),
            EdgeCond::IfKind(k) => k == want && source.output_kinds().contains(&k),
        };
        if deliverable {
            Ok(())
        } else {
            Err(GraphError::KindMismatch {
                from: source.name().to_string(),
                to: self.nodes[to].name().to_string(),
                expected: want,
            })
        }
    }

    /// Validates and runs the graph to completion.
    ///
    /// The first node error aborts the run (deterministically: errors are
    /// surfaced in node-id order within a wave).
    pub fn execute(&self) -> Result<GraphRun<'a>, GeccoError> {
        self.validate().map_err(GeccoError::Graph)?;
        let n = self.nodes.len();
        let mut states: Vec<Option<NodeState<'a>>> = (0..n).map(|_| None).collect();
        let mut reports: Vec<Option<PassReport>> = vec![None; n];
        let mut timings = vec![Duration::ZERO; n];
        let mut finished = 0usize;
        while finished < n {
            // The next wave: unfinished nodes whose upstreams all finished,
            // in ascending node-id order (`0..n` is already sorted).
            let wave: Vec<usize> = (0..n)
                .filter(|&i| {
                    states[i].is_none()
                        && self.incoming[i].iter().all(|e| states[e.from.0].is_some())
                })
                .collect();
            debug_assert!(!wave.is_empty(), "a validated DAG always has a ready node");
            // Resolve inputs up front; nodes with unfilled ports are
            // skipped without running.
            let mut jobs: Vec<(usize, Vec<Artifact<'a>>)> = Vec::with_capacity(wave.len());
            for &i in &wave {
                match self.resolve_inputs(i, &states) {
                    Some(inputs) => jobs.push((i, inputs)),
                    None => states[i] = Some(NodeState::Skipped),
                }
            }
            // Run the wave's independent nodes — in parallel under the
            // `rayon` feature — and commit outputs in node-id order.
            let results = crate::parallel::par_map(&jobs, 2, |(i, inputs)| {
                // gecco-lint: allow(ambient-nondet) — per-node timing for observability;
                // outputs are committed in node-id order regardless of when nodes finish
                let start = Instant::now();
                let out = self.nodes[*i].run(inputs);
                (out, start.elapsed())
            });
            for ((i, _), (out, elapsed)) in jobs.iter().zip(results) {
                let NodeOutput { artifact, report } = out?;
                timings[*i] = elapsed;
                reports[*i] = report;
                states[*i] = Some(NodeState::Produced(artifact));
            }
            finished += wave.len();
        }
        Ok(GraphRun {
            states: states.into_iter().map(|s| s.expect("all nodes finished")).collect(),
            reports,
            timings,
        })
    }

    /// The input artifacts of node `i`, or `None` if it must be skipped.
    fn resolve_inputs(
        &self,
        i: usize,
        states: &[Option<NodeState<'a>>],
    ) -> Option<Vec<Artifact<'a>>> {
        let edges = &self.incoming[i];
        match self.nodes[i].input_kinds() {
            InputKinds::Exact(kinds) => {
                let mut inputs = Vec::with_capacity(kinds.len());
                for (edge, &want) in edges.iter().zip(kinds) {
                    let artifact = delivered(edge, states)?;
                    if artifact.kind() != want {
                        return None;
                    }
                    inputs.push(artifact.clone());
                }
                Some(inputs)
            }
            InputKinds::Variadic(kind) => {
                let inputs: Vec<Artifact<'a>> = edges
                    .iter()
                    .filter_map(|edge| delivered(edge, states))
                    .filter(|a| a.kind() == kind)
                    .cloned()
                    .collect();
                if inputs.is_empty() {
                    None
                } else {
                    Some(inputs)
                }
            }
        }
    }
}

/// The artifact `edge` delivers given the current states, if any.
fn delivered<'s, 'a>(edge: &Edge, states: &'s [Option<NodeState<'a>>]) -> Option<&'s Artifact<'a>> {
    match states[edge.from.0].as_ref()? {
        NodeState::Skipped => None,
        NodeState::Produced(artifact) => match edge.cond {
            EdgeCond::Always => Some(artifact),
            EdgeCond::IfKind(k) if artifact.kind() == k => Some(artifact),
            EdgeCond::IfKind(_) => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use gecco_eventlog::{ClassId, ClassSet};
    use std::sync::Arc;

    /// Emits an empty candidate set; declares it *might* also emit a
    /// selection, so conditional-edge tests can wire a port that never
    /// fills at runtime.
    struct Source;

    impl<'a> GraphNode<'a> for Source {
        fn name(&self) -> &str {
            "source"
        }
        fn input_kinds(&self) -> InputKinds {
            InputKinds::Exact(&[])
        }
        fn output_kinds(&self) -> &[ArtifactKind] {
            &[ArtifactKind::Candidates, ArtifactKind::Selection]
        }
        fn run(&self, _inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
            Ok(Artifact::Candidates(Arc::new(CandidateSet::new())).into())
        }
    }

    /// Consumes one artifact of `expect` and re-emits its input.
    struct Relay(ArtifactKind);

    impl<'a> GraphNode<'a> for Relay {
        fn name(&self) -> &str {
            "relay"
        }
        fn input_kinds(&self) -> InputKinds {
            InputKinds::Exact(match self.0 {
                ArtifactKind::Candidates => &[ArtifactKind::Candidates],
                ArtifactKind::Selection => &[ArtifactKind::Selection],
                _ => unimplemented!("test relay supports candidates/selection"),
            })
        }
        fn output_kinds(&self) -> &[ArtifactKind] {
            match self.0 {
                ArtifactKind::Candidates => &[ArtifactKind::Candidates],
                ArtifactKind::Selection => &[ArtifactKind::Selection],
                _ => unimplemented!(),
            }
        }
        fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
            Ok(inputs[0].clone().into())
        }
    }

    /// Variadic union counting its inputs into singleton groups.
    struct Count;

    impl<'a> GraphNode<'a> for Count {
        fn name(&self) -> &str {
            "count"
        }
        fn input_kinds(&self) -> InputKinds {
            InputKinds::Variadic(ArtifactKind::Candidates)
        }
        fn output_kinds(&self) -> &[ArtifactKind] {
            &[ArtifactKind::Candidates]
        }
        fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
            let mut out = CandidateSet::new();
            for (i, _) in inputs.iter().enumerate() {
                out.insert(ClassSet::singleton(ClassId(i as u16)));
            }
            Ok(Artifact::Candidates(Arc::new(out)).into())
        }
    }

    /// Converts a selection into candidates — exists so tests can build a
    /// candidates-typed node that ends up skipped at runtime.
    struct SelToCand;

    impl<'a> GraphNode<'a> for SelToCand {
        fn name(&self) -> &str {
            "sel-to-cand"
        }
        fn input_kinds(&self) -> InputKinds {
            InputKinds::Exact(&[ArtifactKind::Selection])
        }
        fn output_kinds(&self) -> &[ArtifactKind] {
            &[ArtifactKind::Candidates]
        }
        fn run(&self, _inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
            Ok(Artifact::Candidates(Arc::new(CandidateSet::new())).into())
        }
    }

    #[test]
    fn rejects_cycles() {
        let mut g = PipelineGraph::new();
        let a = g.add_node(Relay(ArtifactKind::Candidates));
        let b = g.add_node(Relay(ArtifactKind::Candidates));
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(matches!(g.validate(), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut g = PipelineGraph::new();
        g.add_node(Relay(ArtifactKind::Candidates));
        let err = g.validate().unwrap_err();
        assert!(matches!(err, GraphError::InputArity { expected: 1, got: 0, .. }), "{err}");
    }

    #[test]
    fn rejects_undeliverable_kinds() {
        let mut g = PipelineGraph::new();
        let src = g.add_node(Source);
        let sel = g.add_node(Relay(ArtifactKind::Selection));
        let bad = g.add_node(Relay(ArtifactKind::Candidates));
        g.add_edge(src, sel);
        // A selection-conditioned edge can never satisfy a candidates port.
        g.add_edge_when(sel, bad, EdgeCond::IfKind(ArtifactKind::Selection));
        let err = g.validate().unwrap_err();
        assert!(
            matches!(err, GraphError::KindMismatch { expected: ArtifactKind::Candidates, .. }),
            "{err}"
        );
    }

    #[test]
    fn conditional_skips_propagate() {
        let mut g = PipelineGraph::new();
        let src = g.add_node(Source);
        let taken = g.add_node(Relay(ArtifactKind::Candidates));
        let not_taken = g.add_node(Relay(ArtifactKind::Selection));
        let downstream = g.add_node(Relay(ArtifactKind::Selection));
        g.add_edge_when(src, taken, EdgeCond::IfKind(ArtifactKind::Candidates));
        g.add_edge_when(src, not_taken, EdgeCond::IfKind(ArtifactKind::Selection));
        g.add_edge(not_taken, downstream);
        let run = g.execute().unwrap();
        assert!(run.artifact(taken).is_some(), "matching branch ran");
        assert!(run.was_skipped(not_taken), "non-matching branch skipped");
        assert!(run.was_skipped(downstream), "skip propagates");
        assert_eq!(run.node_time(not_taken), Duration::ZERO);
    }

    #[test]
    fn variadic_collects_in_edge_order_and_skips_when_empty() {
        let mut g = PipelineGraph::new();
        let s1 = g.add_node(Source);
        let s2 = g.add_node(Source);
        let union = g.add_node(Count);
        g.add_edge(s1, union);
        g.add_edge(s2, union);
        // `conv` is skipped at runtime (the source emits candidates, not a
        // selection), starving the second union of every input.
        let conv = g.add_node(SelToCand);
        g.add_edge_when(s1, conv, EdgeCond::IfKind(ArtifactKind::Selection));
        let starved = g.add_node(Count);
        g.add_edge(conv, starved);
        let run = g.execute().unwrap();
        let merged = run.artifact(union).and_then(Artifact::as_candidates).unwrap();
        assert_eq!(merged.len(), 2, "both inputs delivered");
        assert!(run.was_skipped(starved), "variadic node without inputs is skipped");
    }
}
