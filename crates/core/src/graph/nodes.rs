//! Built-in nodes: the pipeline steps of Figure 4 plus pass composition
//! and the session-based segmentation scenario source.

use super::artifact::{AbstractionOutput, Artifact, ArtifactKind, InfeasibleSignal, LogArtifact};
use super::node::{GraphNode, InputKinds, NodeOutput};
use crate::abstraction::{abstract_log, activity_names, AbstractionStrategy};
use crate::candidates::{
    dfg::{dfg_candidates, NoObserver},
    exclusive::extend_with_exclusive_candidates,
    exhaustive::exhaustive_candidates,
    session::{session_candidates, SessionConfig},
    Budget, CandidateSet, CandidateStrategy,
};
use crate::distance::DistanceOracle;
use crate::pipeline::{GeccoError, InfeasibilityReport, PassReport};
use crate::selection::{
    select_optimal, select_optimal_colgen, use_column_generation, SelectionOptions,
};
use gecco_constraints::{CompiledConstraintSet, ConstraintSet, Diagnostics};
use gecco_eventlog::{EvalContext, InstanceCache, Segmenter, TraceStore};
use std::sync::Arc;

/// Builds the evaluation context a node shares with the linear pipeline:
/// the artifact's log and index plus the optional caller-provided cache.
fn context<'c>(input: &'c LogArtifact<'_>, cache: Option<&'c InstanceCache>) -> EvalContext<'c> {
    match cache {
        Some(cache) => EvalContext::with_cache(input.log(), input.index(), cache),
        None => EvalContext::new(input.log(), input.index()),
    }
}

/// A source node publishing a caller-supplied artifact — how a graph's
/// external inputs (the log under abstraction, a precomputed candidate
/// set, …) enter the executor.
pub struct InputNode<'a> {
    artifact: Artifact<'a>,
    kinds: [ArtifactKind; 1],
}

impl<'a> InputNode<'a> {
    /// Wraps `artifact` as a source node.
    pub fn new(artifact: Artifact<'a>) -> InputNode<'a> {
        let kinds = [artifact.kind()];
        InputNode { artifact, kinds }
    }
}

impl<'a> GraphNode<'a> for InputNode<'a> {
    fn name(&self) -> &str {
        "input"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &self.kinds
    }

    fn run(&self, _inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        Ok(self.artifact.clone().into())
    }
}

/// A source node publishing a log loaded from an on-disk
/// [`TraceStore`] — the graph entry point of the streaming ingestion
/// route. Loading happens once at construction (the store's batches are
/// decoded and the index built batch by batch); `run` then hands out the
/// shared artifact like [`InputNode`] does, so downstream nodes cannot
/// tell which route produced their input.
pub struct StoreInputNode {
    artifact: LogArtifact<'static>,
}

impl StoreInputNode {
    /// Opens the store at `dir` and materializes its log and index.
    pub fn open(dir: impl AsRef<std::path::Path>) -> gecco_eventlog::Result<StoreInputNode> {
        StoreInputNode::from_store(&TraceStore::open(dir)?)
    }

    /// Materializes `store`'s log and index into a source node.
    pub fn from_store(store: &TraceStore) -> gecco_eventlog::Result<StoreInputNode> {
        let log = store.load_log()?;
        let index = store.build_index()?;
        Ok(StoreInputNode { artifact: LogArtifact::owned(log, index) })
    }

    /// The loaded artifact, for callers that want the log outside a graph.
    pub fn artifact(&self) -> &LogArtifact<'static> {
        &self.artifact
    }
}

impl<'a> GraphNode<'a> for StoreInputNode {
    fn name(&self) -> &str {
        "store-input"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Log]
    }

    fn run(&self, _inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        Ok(Artifact::Log(self.artifact.clone()).into())
    }
}

/// Step 1 as a node: computes the candidate set of its input log with one
/// of the paper's strategies (Algorithm 1 or 2).
pub struct CandidateSourceNode<'a> {
    strategy: CandidateStrategy,
    budget: Budget,
    constraints: Arc<CompiledConstraintSet>,
    cache: Option<&'a InstanceCache>,
    name: String,
}

impl<'a> CandidateSourceNode<'a> {
    /// Creates the node; `constraints` must be compiled against the log
    /// this node will receive.
    pub fn new(
        strategy: CandidateStrategy,
        budget: Budget,
        constraints: Arc<CompiledConstraintSet>,
        cache: Option<&'a InstanceCache>,
    ) -> CandidateSourceNode<'a> {
        let name = match strategy {
            CandidateStrategy::Exhaustive => "candidates:exhaustive".to_string(),
            CandidateStrategy::DfgUnbounded => "candidates:dfg".to_string(),
            CandidateStrategy::DfgBeam { .. } => "candidates:dfg-beam".to_string(),
        };
        CandidateSourceNode { strategy, budget, constraints, cache, name }
    }
}

impl<'a> GraphNode<'a> for CandidateSourceNode<'a> {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[ArtifactKind::Log])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Candidates]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let input = inputs[0].as_log().expect("validated port");
        let ctx = context(input, self.cache);
        let candidates = match self.strategy {
            CandidateStrategy::Exhaustive => {
                exhaustive_candidates(&ctx, &self.constraints, self.budget)
            }
            CandidateStrategy::DfgUnbounded => {
                dfg_candidates(&ctx, &self.constraints, None, self.budget, &mut NoObserver)
            }
            CandidateStrategy::DfgBeam { k } => {
                dfg_candidates(&ctx, &self.constraints, Some(k), self.budget, &mut NoObserver)
            }
        };
        Ok(Artifact::Candidates(Arc::new(candidates)).into())
    }
}

/// The session-based segmentation scenario source: candidate groups are
/// the class sets of gap- or attribute-window sessions (see
/// [`crate::candidates::session`]).
pub struct SessionCandidateSourceNode<'a> {
    config: SessionConfig,
    constraints: Arc<CompiledConstraintSet>,
    cache: Option<&'a InstanceCache>,
}

impl<'a> SessionCandidateSourceNode<'a> {
    /// Creates the node.
    pub fn new(
        config: SessionConfig,
        constraints: Arc<CompiledConstraintSet>,
        cache: Option<&'a InstanceCache>,
    ) -> SessionCandidateSourceNode<'a> {
        SessionCandidateSourceNode { config, constraints, cache }
    }
}

impl<'a> GraphNode<'a> for SessionCandidateSourceNode<'a> {
    fn name(&self) -> &str {
        "candidates:session"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[ArtifactKind::Log])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Candidates]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let input = inputs[0].as_log().expect("validated port");
        let ctx = context(input, self.cache);
        let candidates = session_candidates(&ctx, &self.constraints, &self.config);
        Ok(Artifact::Candidates(Arc::new(candidates)).into())
    }
}

/// Algorithm 3 as a candidate-filter node: extends a candidate set with
/// merged exclusive alternatives.
pub struct ExclusiveMergeNode<'a> {
    constraints: Arc<CompiledConstraintSet>,
    cache: Option<&'a InstanceCache>,
}

impl<'a> ExclusiveMergeNode<'a> {
    /// Creates the node.
    pub fn new(
        constraints: Arc<CompiledConstraintSet>,
        cache: Option<&'a InstanceCache>,
    ) -> ExclusiveMergeNode<'a> {
        ExclusiveMergeNode { constraints, cache }
    }
}

impl<'a> GraphNode<'a> for ExclusiveMergeNode<'a> {
    fn name(&self) -> &str {
        "filter:exclusive-merge"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[ArtifactKind::Log, ArtifactKind::Candidates])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Candidates]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let input = inputs[0].as_log().expect("validated port");
        let ctx = context(input, self.cache);
        let mut candidates = inputs[1].as_candidates().expect("validated port").clone();
        extend_with_exclusive_candidates(&ctx, &self.constraints, &mut candidates);
        Ok(Artifact::Candidates(Arc::new(candidates)).into())
    }
}

/// Merges any number of candidate sets in edge-insertion order — groups
/// deduplicate on insertion, statistics accumulate field-wise — so several
/// scenario sources can feed one selector. The deterministic merge order
/// keeps parallel branch execution bit-identical to serial.
pub struct UnionCandidatesNode;

impl<'a> GraphNode<'a> for UnionCandidatesNode {
    fn name(&self) -> &str {
        "filter:union"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Variadic(ArtifactKind::Candidates)
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Candidates]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let mut union = CandidateSet::new();
        for input in inputs {
            let candidates = input.as_candidates().expect("validated port");
            for &group in candidates.groups() {
                union.insert(group);
            }
            let s = &candidates.stats;
            union.stats.checked += s.checked;
            union.stats.satisfied += s.satisfied;
            union.stats.monotonic_shortcuts += s.monotonic_shortcuts;
            union.stats.pruned_non_occurring += s.pruned_non_occurring;
            union.stats.iterations += s.iterations;
            union.stats.budget_exhausted |= s.budget_exhausted;
            union.stats.exclusive_candidates += s.exclusive_candidates;
        }
        Ok(Artifact::Candidates(Arc::new(union)).into())
    }
}

/// Step 2 as a node: solves the set-partitioning MIP over the incoming
/// candidates. Emits a [`ArtifactKind::Selection`] when feasible and an
/// [`ArtifactKind::Infeasible`] marker otherwise — pair it with
/// [`super::EdgeCond::IfKind`] edges to route the two cases.
pub struct SelectorNode<'a> {
    constraints: Arc<CompiledConstraintSet>,
    segmenter: Segmenter,
    options: SelectionOptions,
    cache: Option<&'a InstanceCache>,
}

impl<'a> SelectorNode<'a> {
    /// Creates the node.
    pub fn new(
        constraints: Arc<CompiledConstraintSet>,
        segmenter: Segmenter,
        options: SelectionOptions,
        cache: Option<&'a InstanceCache>,
    ) -> SelectorNode<'a> {
        SelectorNode { constraints, segmenter, options, cache }
    }
}

impl<'a> GraphNode<'a> for SelectorNode<'a> {
    fn name(&self) -> &str {
        "selector"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[ArtifactKind::Log, ArtifactKind::Candidates])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Selection, ArtifactKind::Infeasible]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let input = inputs[0].as_log().expect("validated port");
        let candidates = inputs[1].as_candidates().expect("validated port");
        let ctx = context(input, self.cache);
        let oracle = DistanceOracle::new(&ctx, self.segmenter);
        let selected = if use_column_generation(&self.options, input.log(), input.index()) {
            select_optimal_colgen(
                input.log(),
                &self.constraints,
                &oracle,
                self.constraints.group_count_bounds(),
                self.options,
            )
        } else {
            select_optimal(
                input.log(),
                candidates.groups(),
                &oracle,
                self.constraints.group_count_bounds(),
                self.options,
            )
        };
        Ok(match selected {
            Some(selection) => Artifact::Selection(Arc::new(selection)).into(),
            None => Artifact::Infeasible(Arc::new(InfeasibleSignal::default())).into(),
        })
    }
}

/// Step 3 as a node: rewrites the incoming log under the incoming
/// selection, yielding the abstracted log with its spliced index.
pub struct AbstractorNode<'a> {
    strategy: AbstractionStrategy,
    segmenter: Segmenter,
    label_attribute: Option<String>,
    cache: Option<&'a InstanceCache>,
}

impl<'a> AbstractorNode<'a> {
    /// Creates the node.
    pub fn new(
        strategy: AbstractionStrategy,
        segmenter: Segmenter,
        label_attribute: Option<String>,
        cache: Option<&'a InstanceCache>,
    ) -> AbstractorNode<'a> {
        AbstractorNode { strategy, segmenter, label_attribute, cache }
    }
}

impl<'a> GraphNode<'a> for AbstractorNode<'a> {
    fn name(&self) -> &str {
        "abstractor"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[ArtifactKind::Log, ArtifactKind::Selection])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Abstraction]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let input = inputs[0].as_log().expect("validated port");
        let selection = inputs[1].as_selection().expect("validated port");
        let ctx = context(input, self.cache);
        let names =
            activity_names(input.log(), &selection.grouping, self.label_attribute.as_deref());
        let (log, index) =
            abstract_log(&ctx, &selection.grouping, &names, self.strategy, self.segmenter);
        Ok(Artifact::Abstraction(Arc::new(AbstractionOutput {
            log,
            index,
            grouping: selection.grouping.clone(),
            names,
            distance: selection.distance,
            proven_optimal: selection.proven_optimal,
        }))
        .into())
    }
}

/// The diagnostics emitter infeasible selections route to: probes the
/// constraints against the log (§V-C "indicates possible causes") and
/// renders the same report the linear pipeline returns.
pub struct DiagnosticsNode<'a> {
    constraints: Arc<CompiledConstraintSet>,
    cache: Option<&'a InstanceCache>,
}

impl<'a> DiagnosticsNode<'a> {
    /// Creates the node.
    pub fn new(
        constraints: Arc<CompiledConstraintSet>,
        cache: Option<&'a InstanceCache>,
    ) -> DiagnosticsNode<'a> {
        DiagnosticsNode { constraints, cache }
    }
}

impl<'a> GraphNode<'a> for DiagnosticsNode<'a> {
    fn name(&self) -> &str {
        "diagnostics"
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[ArtifactKind::Log, ArtifactKind::Candidates, ArtifactKind::Infeasible])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Report]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let input = inputs[0].as_log().expect("validated port");
        let candidates = inputs[1].as_candidates().expect("validated port");
        let ctx = context(input, self.cache);
        let diagnostics = Diagnostics::probe(&self.constraints, &ctx);
        let summary = format!(
            "no feasible grouping over {} candidates (checked {} groups{}).\n{}",
            candidates.len(),
            candidates.stats.checked,
            if candidates.stats.budget_exhausted { ", budget exhausted" } else { "" },
            diagnostics.render(input.log())
        );
        Ok(Artifact::Report(Arc::new(InfeasibilityReport {
            diagnostics,
            candidate_stats: candidates.stats.clone(),
            summary,
        }))
        .into())
    }
}

/// One full abstraction pass as a node: takes a log, runs the default
/// single-pass graph over it (via [`crate::Gecco::run`]) under its own
/// constraint set and a fresh per-pass [`InstanceCache`], and emits the
/// resulting log — unchanged when the pass is infeasible, exactly like the
/// linear loop of [`crate::run_multipass`]. A [`PassReport`] rides along
/// as the node's report.
pub struct PassNode<F> {
    pass: usize,
    constraints: ConstraintSet,
    configure: Arc<F>,
    name: String,
}

impl<F> PassNode<F>
where
    F: for<'b> Fn(crate::Gecco<'b>) -> crate::Gecco<'b> + Send + Sync,
{
    /// Creates pass number `pass` applying `constraints`; `configure`
    /// customizes the pass's builder exactly as in [`crate::run_multipass`].
    pub fn new(pass: usize, constraints: ConstraintSet, configure: Arc<F>) -> PassNode<F> {
        PassNode { pass, constraints, configure, name: format!("pass:{pass}") }
    }
}

impl<'a, F> GraphNode<'a> for PassNode<F>
where
    F: for<'b> Fn(crate::Gecco<'b>) -> crate::Gecco<'b> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn input_kinds(&self) -> InputKinds {
        InputKinds::Exact(&[ArtifactKind::Log])
    }

    fn output_kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Log]
    }

    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError> {
        let input = inputs[0].as_log().expect("validated port");
        // Fresh per-pass cache: cache keys carry no log identity, so a
        // cache shared across passes would mix instances of different logs
        // (same rationale as the linear loop).
        let pass_cache = InstanceCache::new();
        let outcome = (self.configure)(crate::Gecco::new(input.log()))
            .constraints(self.constraints.clone())
            .with_index(input.index())
            .instance_cache(&pass_cache)
            .run()?;
        Ok(match outcome {
            crate::Outcome::Abstracted(result) => {
                let report = PassReport {
                    pass: self.pass,
                    feasible: true,
                    groups: result.grouping().len(),
                    distance: result.distance(),
                };
                let (log, index) = result.into_log_and_index();
                NodeOutput {
                    artifact: Artifact::Log(LogArtifact::owned(log, index)),
                    report: Some(report),
                }
            }
            crate::Outcome::Infeasible(_) => NodeOutput {
                artifact: inputs[0].clone(),
                report: Some(PassReport {
                    pass: self.pass,
                    feasible: false,
                    groups: 0,
                    distance: 0.0,
                }),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::session::SessionConfig;
    use crate::graph::{EdgeCond, PipelineGraph};
    use gecco_eventlog::{EventLog, LogBuilder, LogIndex};

    /// Keyboard/mouse-style traces whose timestamp bursts mirror two
    /// high-level tasks: ⟨open edit⟩ then — after a long gap — ⟨save mail⟩.
    fn burst_log() -> EventLog {
        let mut b = LogBuilder::new();
        for (case, events) in [
            ("c1", vec![("open", 0), ("edit", 100), ("save", 10_000), ("mail", 10_100)]),
            ("c2", vec![("open", 0), ("edit", 50), ("save", 10_000), ("mail", 10_050)]),
        ] {
            let mut tb = b.trace(case);
            for (cls, ts) in events {
                tb = tb
                    .event_with(cls, |e| {
                        e.timestamp("time:timestamp", ts);
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    /// A custom two-source topology: DFG and session candidates unioned
    /// into one selector, then abstracted — the scenario-composition shape
    /// the graph refactor exists for.
    #[test]
    fn session_and_dfg_sources_compose() {
        let log = burst_log();
        let index = LogIndex::build(&log);
        let compiled = Arc::new(
            CompiledConstraintSet::compile(&ConstraintSet::parse("size(g) >= 1;").unwrap(), &log)
                .unwrap(),
        );
        let mut graph = PipelineGraph::new();
        let input = graph.add_node(InputNode::new(Artifact::log(&log, &index)));
        let dfg = graph.add_node(CandidateSourceNode::new(
            CandidateStrategy::DfgUnbounded,
            Budget::UNLIMITED,
            Arc::clone(&compiled),
            None,
        ));
        let session = graph.add_node(SessionCandidateSourceNode::new(
            SessionConfig::gap(1_000),
            Arc::clone(&compiled),
            None,
        ));
        let union = graph.add_node(UnionCandidatesNode);
        let selector = graph.add_node(SelectorNode::new(
            Arc::clone(&compiled),
            Segmenter::RepeatSplit,
            SelectionOptions::default(),
            None,
        ));
        let abstractor = graph.add_node(AbstractorNode::new(
            AbstractionStrategy::Completion,
            Segmenter::RepeatSplit,
            None,
            None,
        ));
        graph.add_edge(input, dfg);
        graph.add_edge(input, session);
        graph.add_edge(dfg, union);
        graph.add_edge(session, union);
        graph.add_edge(input, selector);
        graph.add_edge(union, selector);
        graph.add_edge(input, abstractor);
        graph.add_edge_when(selector, abstractor, EdgeCond::IfKind(ArtifactKind::Selection));
        let mut run = graph.execute().unwrap();
        let merged = run.artifact(union).and_then(Artifact::as_candidates).unwrap();
        let burst = [log.class_by_name("open").unwrap(), log.class_by_name("edit").unwrap()]
            .into_iter()
            .collect();
        assert!(merged.contains(&burst), "session source contributed the burst group");
        let out = run.take_artifact(abstractor).and_then(Artifact::into_abstraction).unwrap();
        assert!(out.grouping.is_exact_cover(&log));
        assert_eq!(out.index, LogIndex::build(&out.log), "spliced index matches a rebuild");
    }

    /// The store-backed source must feed downstream nodes the same log
    /// and index the in-memory route produces.
    #[test]
    fn store_input_matches_in_memory_input() {
        let log = burst_log();
        let doc = gecco_eventlog::xes::write_string(&log);
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-stores")
            .join(format!("core-node-{}", std::process::id()));
        let options = gecco_eventlog::IngestOptions {
            batch_traces: 1,
            ..gecco_eventlog::IngestOptions::default()
        };
        gecco_eventlog::ingest_to_store(doc.as_bytes(), &dir, &options).unwrap();
        let node = StoreInputNode::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Oracle: the in-memory parse of the same document (the writer
        // synthesizes `concept:name` attributes the builder log lacks).
        let expect = gecco_eventlog::xes::parse_str(&doc).unwrap();
        assert_eq!(node.artifact().log().traces(), expect.traces());
        assert_eq!(node.artifact().index(), &LogIndex::build(&expect));
        let mut graph = PipelineGraph::new();
        let input = graph.add_node(node);
        let dfg = graph.add_node(CandidateSourceNode::new(
            CandidateStrategy::DfgUnbounded,
            Budget::UNLIMITED,
            Arc::new(
                CompiledConstraintSet::compile(
                    &ConstraintSet::parse("size(g) >= 1;").unwrap(),
                    &log,
                )
                .unwrap(),
            ),
            None,
        ));
        graph.add_edge(input, dfg);
        let run = graph.execute().unwrap();
        assert!(run.artifact(dfg).and_then(Artifact::as_candidates).is_some());
    }
}
