//! The [`GraphNode`] trait: the unit of work a pipeline graph schedules.

use super::artifact::{Artifact, ArtifactKind};
use crate::pipeline::{GeccoError, PassReport};

/// How a node declares its inputs.
#[derive(Debug, Clone, Copy)]
pub enum InputKinds {
    /// Exactly one input port per listed kind, filled by the node's
    /// incoming edges in edge-insertion order. An empty slice makes the
    /// node a source.
    Exact(&'static [ArtifactKind]),
    /// Any number (≥ 1) of inputs of one kind, delivered in edge-insertion
    /// order — the shape of merge nodes like
    /// [`crate::graph::UnionCandidatesNode`].
    Variadic(ArtifactKind),
}

/// What a node hands back to the executor.
pub struct NodeOutput<'a> {
    /// The artifact published on the node's outgoing edges.
    pub artifact: Artifact<'a>,
    /// An optional per-pass summary (set by pass-composition nodes,
    /// collected by [`crate::run_multipass`] / [`crate::run_fanout`]).
    pub report: Option<PassReport>,
}

impl<'a> From<Artifact<'a>> for NodeOutput<'a> {
    fn from(artifact: Artifact<'a>) -> NodeOutput<'a> {
        NodeOutput { artifact, report: None }
    }
}

/// One vertex of a pipeline graph.
///
/// Nodes are `Send + Sync` because the executor runs the independent nodes
/// of a scheduling wave in parallel under the `rayon` feature; anything a
/// node needs beyond its input artifacts (compiled constraints, an
/// [`gecco_eventlog::InstanceCache`], configuration) it captures at
/// construction time. Results must not depend on execution order — the
/// executor guarantees inputs arrive in edge-insertion order and commits
/// outputs in node-id order, which keeps parallel runs bit-identical to
/// serial ones.
pub trait GraphNode<'a>: Send + Sync {
    /// A short label for validation errors and introspection.
    fn name(&self) -> &str;

    /// The input ports this node expects.
    fn input_kinds(&self) -> InputKinds;

    /// Every artifact kind this node can produce. Nodes with more than one
    /// entry (e.g. a selector emitting either a selection or an infeasible
    /// marker) pair with conditional edges downstream.
    fn output_kinds(&self) -> &[ArtifactKind];

    /// Runs the node over its resolved inputs (one per port, in port
    /// order for [`InputKinds::Exact`]; all delivered artifacts in edge
    /// order for [`InputKinds::Variadic`]).
    fn run(&self, inputs: &[Artifact<'a>]) -> Result<NodeOutput<'a>, GeccoError>;
}
