//! Typed artifacts flowing along the edges of a [`crate::graph`] pipeline.
//!
//! Every node consumes and produces [`Artifact`]s — the same values the
//! linear pipeline threads from step to step, wrapped so the executor can
//! type-check a graph before running it and share results across branches
//! without copying. Large payloads travel behind [`std::sync::Arc`]s (a
//! fan-out to N branches clones N pointers, not N logs), and the input
//! log/index pair can stay borrowed from the caller for the whole run.

use crate::candidates::CandidateSet;
use crate::pipeline::InfeasibilityReport;
use crate::selection::Selection;
use gecco_eventlog::{EventLog, LogIndex};
use std::sync::Arc;

/// The type tag of an [`Artifact`], used for static graph validation and
/// for conditional-edge routing at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// An event log together with its [`LogIndex`].
    Log,
    /// A Step-1 [`CandidateSet`].
    Candidates,
    /// A Step-2 [`Selection`] (grouping, distance, optimality proof).
    Selection,
    /// The marker a selector emits instead of a [`Selection`] when no
    /// feasible grouping exists.
    Infeasible,
    /// A Step-3 [`AbstractionOutput`].
    Abstraction,
    /// A rendered [`InfeasibilityReport`].
    Report,
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ArtifactKind::Log => "log",
            ArtifactKind::Candidates => "candidates",
            ArtifactKind::Selection => "selection",
            ArtifactKind::Infeasible => "infeasible",
            ArtifactKind::Abstraction => "abstraction",
            ArtifactKind::Report => "report",
        };
        f.write_str(s)
    }
}

/// A log that is either borrowed from the caller (the graph's input) or
/// produced by a node (an abstracted log handed down a pass chain).
#[derive(Debug, Clone)]
pub enum LogRef<'a> {
    /// Borrowed from outside the graph.
    Borrowed(&'a EventLog),
    /// Produced by a node during this run.
    Owned(Arc<EventLog>),
}

impl std::ops::Deref for LogRef<'_> {
    type Target = EventLog;
    fn deref(&self) -> &EventLog {
        match self {
            LogRef::Borrowed(log) => log,
            LogRef::Owned(log) => log,
        }
    }
}

/// Companion of [`LogRef`] for the log's [`LogIndex`].
#[derive(Debug, Clone)]
pub enum IndexRef<'a> {
    /// Borrowed from outside the graph.
    Borrowed(&'a LogIndex),
    /// Produced by a node during this run (a spliced index).
    Owned(Arc<LogIndex>),
}

impl std::ops::Deref for IndexRef<'_> {
    type Target = LogIndex;
    fn deref(&self) -> &LogIndex {
        match self {
            IndexRef::Borrowed(index) => index,
            IndexRef::Owned(index) => index,
        }
    }
}

/// An event log paired with its index — the unit every stage of the
/// pipeline evaluates against (cf. [`gecco_eventlog::EvalContext`]).
#[derive(Debug, Clone)]
pub struct LogArtifact<'a> {
    /// The log.
    pub log: LogRef<'a>,
    /// Its index; must have been built from (or spliced for) `log`.
    pub index: IndexRef<'a>,
}

impl<'a> LogArtifact<'a> {
    /// Wraps a caller-owned log/index pair.
    pub fn borrowed(log: &'a EventLog, index: &'a LogIndex) -> LogArtifact<'a> {
        LogArtifact { log: LogRef::Borrowed(log), index: IndexRef::Borrowed(index) }
    }

    /// Wraps a log/index pair produced inside the graph.
    pub fn owned(log: EventLog, index: LogIndex) -> LogArtifact<'a> {
        LogArtifact { log: LogRef::Owned(Arc::new(log)), index: IndexRef::Owned(Arc::new(index)) }
    }

    /// The log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The log's index.
    pub fn index(&self) -> &LogIndex {
        &self.index
    }

    /// Consumes the artifact into an owned pair, cloning only when the
    /// data is still shared (borrowed input, or an `Arc` another branch
    /// also holds).
    pub fn into_owned(self) -> (EventLog, LogIndex) {
        let log = match self.log {
            LogRef::Borrowed(l) => l.clone(),
            LogRef::Owned(l) => Arc::try_unwrap(l).unwrap_or_else(|shared| (*shared).clone()),
        };
        let index = match self.index {
            IndexRef::Borrowed(i) => i.clone(),
            IndexRef::Owned(i) => Arc::try_unwrap(i).unwrap_or_else(|shared| (*shared).clone()),
        };
        (log, index)
    }
}

/// What an abstractor node produces: the rewritten log, its incrementally
/// spliced index, and the selection it realized. The pipeline wrapper
/// combines this with the candidate statistics and node timings into the
/// public [`crate::pipeline::AbstractionResult`].
#[derive(Debug, Clone)]
pub struct AbstractionOutput {
    /// The abstracted log `L'`.
    pub log: EventLog,
    /// Its spliced [`LogIndex`].
    pub index: LogIndex,
    /// The grouping that was applied.
    pub grouping: crate::grouping::Grouping,
    /// One activity name per group.
    pub names: Vec<String>,
    /// `dist(G, L)` of the applied grouping.
    pub distance: f64,
    /// Whether the solver proved the grouping optimal.
    pub proven_optimal: bool,
}

/// The marker artifact a selector emits when no feasible grouping exists;
/// conditional edges route it to a diagnostics emitter (see
/// [`crate::graph::DiagnosticsNode`]) instead of aborting the run.
#[derive(Debug, Clone, Default)]
pub struct InfeasibleSignal {}

/// A typed value traveling along a graph edge.
#[derive(Debug, Clone)]
pub enum Artifact<'a> {
    /// A log with its index.
    Log(LogArtifact<'a>),
    /// A candidate set.
    Candidates(Arc<CandidateSet>),
    /// A feasible selection.
    Selection(Arc<Selection>),
    /// Selection found no feasible grouping.
    Infeasible(Arc<InfeasibleSignal>),
    /// An abstracted log with its provenance.
    Abstraction(Arc<AbstractionOutput>),
    /// A rendered infeasibility report.
    Report(Arc<InfeasibilityReport>),
}

impl<'a> Artifact<'a> {
    /// Wraps a caller-owned log/index pair.
    pub fn log(log: &'a EventLog, index: &'a LogIndex) -> Artifact<'a> {
        Artifact::Log(LogArtifact::borrowed(log, index))
    }

    /// This artifact's type tag.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            Artifact::Log(_) => ArtifactKind::Log,
            Artifact::Candidates(_) => ArtifactKind::Candidates,
            Artifact::Selection(_) => ArtifactKind::Selection,
            Artifact::Infeasible(_) => ArtifactKind::Infeasible,
            Artifact::Abstraction(_) => ArtifactKind::Abstraction,
            Artifact::Report(_) => ArtifactKind::Report,
        }
    }

    /// The log payload, if this is a [`Artifact::Log`].
    pub fn as_log(&self) -> Option<&LogArtifact<'a>> {
        match self {
            Artifact::Log(l) => Some(l),
            _ => None,
        }
    }

    /// The candidate set, if this is a [`Artifact::Candidates`].
    pub fn as_candidates(&self) -> Option<&CandidateSet> {
        match self {
            Artifact::Candidates(c) => Some(c),
            _ => None,
        }
    }

    /// The selection, if this is a [`Artifact::Selection`].
    pub fn as_selection(&self) -> Option<&Selection> {
        match self {
            Artifact::Selection(s) => Some(s),
            _ => None,
        }
    }

    /// The abstraction output, if this is an [`Artifact::Abstraction`].
    pub fn as_abstraction(&self) -> Option<&AbstractionOutput> {
        match self {
            Artifact::Abstraction(a) => Some(a),
            _ => None,
        }
    }

    /// The infeasibility report, if this is an [`Artifact::Report`].
    pub fn as_report(&self) -> Option<&InfeasibilityReport> {
        match self {
            Artifact::Report(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes an [`Artifact::Abstraction`], cloning only if shared.
    pub fn into_abstraction(self) -> Option<AbstractionOutput> {
        match self {
            Artifact::Abstraction(a) => {
                Some(Arc::try_unwrap(a).unwrap_or_else(|shared| (*shared).clone()))
            }
            _ => None,
        }
    }

    /// Consumes an [`Artifact::Report`], cloning only if shared.
    pub fn into_report(self) -> Option<InfeasibilityReport> {
        match self {
            Artifact::Report(r) => {
                Some(Arc::try_unwrap(r).unwrap_or_else(|shared| (*shared).clone()))
            }
            _ => None,
        }
    }

    /// Consumes an [`Artifact::Log`] into an owned pair.
    pub fn into_log(self) -> Option<(EventLog, LogIndex)> {
        match self {
            Artifact::Log(l) => Some(l.into_owned()),
            _ => None,
        }
    }
}
