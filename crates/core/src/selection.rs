//! Step 2: finding an optimal grouping (§V-C).
//!
//! Builds the bipartite candidate/class graph of Figure 7 and solves the
//! MIP of Eqs. 3–5: select a minimum-distance subset of candidates covering
//! every occurring event class exactly once, optionally bounding the number
//! of selected groups.
//!
//! By default the solve routes through [`mod@gecco_solver::presolve`]:
//! duplicate candidates collapse, classes covered by a single candidate
//! are fixed, dominated candidates disappear, and the residual
//! candidate/class graph decomposes into connected components that solve
//! independently — in parallel under the `rayon` feature, with results
//! bit-identical to the serial order (components assemble in a fixed
//! order and the final distance is recomputed canonically). The
//! un-presolved single solve stays available (`presolve: false`) as the
//! oracle for differential tests.

use crate::distance::DistanceOracle;
use crate::grouping::{occurring_classes, Grouping};
use crate::parallel::par_map;
use gecco_constraints::{CheckingMode, CompiledConstraintSet};
use gecco_eventlog::{ClassCoOccurrence, ClassId, ClassSet, EventLog};
use gecco_solver::{
    presolve, solve_column_generation, ColGenOptions, ColGenStats, ColumnSource, DualPrices,
    MasterEngine, PresolveOptions, PresolveOutcome, PresolveStats, PricingRequest,
    SetPartitionProblem, SetPartitionSolution, SolveEngine,
};
use std::collections::{HashMap, HashSet};

/// When Step 2 routes through column generation
/// ([`select_optimal_colgen`]) instead of the enumerated solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ColGenMode {
    /// Never: always the enumerated presolved route (the default — it is
    /// the differential oracle and the right choice for enumerable pools).
    #[default]
    Off,
    /// Always: price candidates lazily out of the implicit pool.
    On,
    /// Decide per run from a cheap sketch-driven pool estimate:
    /// [`ClassCoOccurrence::estimate_pool`] counts cliques of the exact
    /// pairwise co-occurrence graph (an upper bound on the enumerable
    /// pool — every occurring group is such a clique) with an early exit
    /// at [`SelectionOptions::auto_colgen_budget`]. Below the budget,
    /// enumeration is proven small and the enumerated route runs;
    /// at the budget, the pool may be huge and column generation runs.
    Auto,
}

/// Options for the selection step.
#[derive(Debug, Clone, Copy)]
pub struct SelectionOptions {
    /// Which solver backend to use.
    pub engine: SolveEngine,
    /// Search budget (0 = backend default). With presolve on, the budget
    /// applies to each independent component rather than globally.
    pub max_nodes: usize,
    /// Route through presolve + component decomposition (the default).
    /// `false` is the seed single-solve path, kept as the oracle for
    /// differential tests and ablation benchmarks.
    pub presolve: bool,
    /// Solve Step 2 by column generation over the *implicit* candidate
    /// pool instead of enumerating it first ([`select_optimal_colgen`]):
    /// candidate groups are generated on demand by a pricing search driven
    /// by LP duals, so pools far past enumerable size stay solvable. The
    /// enumerated presolved route remains the differential oracle.
    pub column_generation: ColGenMode,
    /// Pool-size budget for [`ColGenMode::Auto`]: when the sketch-driven
    /// clique estimate reaches this many groups, the run switches to
    /// column generation. `0` makes `Auto` behave like `On`.
    pub auto_colgen_budget: usize,
    /// Master LP engine for the column-generation route (default: the
    /// incremental revised simplex; the dense tableau rebuild is the
    /// differential oracle).
    pub colgen_master: MasterEngine,
    /// Wentges dual smoothing on the column-generation route (default on;
    /// `false` reproduces the unsmoothed pricing trajectory).
    pub colgen_smoothing: bool,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions {
            engine: SolveEngine::default(),
            max_nodes: 0,
            presolve: true,
            column_generation: ColGenMode::default(),
            auto_colgen_budget: 50_000,
            colgen_master: MasterEngine::default(),
            colgen_smoothing: true,
        }
    }
}

/// Resolves `options.column_generation` for a concrete log: `On`/`Off`
/// are literal, `Auto` consults the co-occurrence sketch (one cheap pass
/// over the postings) and flips column generation on exactly when the
/// clique estimate says enumeration could exceed
/// [`SelectionOptions::auto_colgen_budget`] groups.
pub fn use_column_generation(
    options: &SelectionOptions,
    log: &EventLog,
    index: &gecco_eventlog::LogIndex,
) -> bool {
    match options.column_generation {
        ColGenMode::On => true,
        ColGenMode::Off => false,
        ColGenMode::Auto => {
            let universe = occurring_classes(log);
            let sketch = ClassCoOccurrence::build(index);
            sketch.estimate_pool(&universe, options.auto_colgen_budget)
                >= options.auto_colgen_budget
        }
    }
}

/// Solves a raw weighted set-partitioning instance through the configured
/// route: either the direct single solve (`presolve: false`), or presolve
/// → connected-component decomposition → per-component engines, fanning
/// the components out in parallel under the `rayon` feature. Component
/// order is fixed, so parallel and serial runs assemble bit-identical
/// solutions.
pub fn solve_set_partition(
    problem: &SetPartitionProblem,
    options: SelectionOptions,
) -> Option<SetPartitionSolution> {
    solve_set_partition_stats(problem, options).0
}

/// [`solve_set_partition`] plus the presolve statistics of the run —
/// what was fixed, removed, and how (or why not) the residual decomposed.
/// `None` stats on the un-presolved route.
pub fn solve_set_partition_stats(
    problem: &SetPartitionProblem,
    options: SelectionOptions,
) -> (Option<SetPartitionSolution>, Option<PresolveStats>) {
    // A non-zero option budget overrides the instance's own.
    let rebudgeted;
    let problem = if options.max_nodes != 0 && options.max_nodes != problem.max_nodes {
        rebudgeted = SetPartitionProblem { max_nodes: options.max_nodes, ..problem.clone() };
        &rebudgeted
    } else {
        problem
    };
    if !options.presolve {
        return (problem.solve(options.engine), None);
    }
    match presolve(problem, &PresolveOptions::default()) {
        PresolveOutcome::Infeasible => (None, None),
        PresolveOutcome::Solved(solution, stats) => (Some(solution), Some(stats)),
        PresolveOutcome::Reduced(reduced) => {
            let stats = reduced.stats();
            if reduced.is_coupled() {
                // Residual cardinality bounds couple the components: solve
                // the per-component exact-count frontier tasks (still
                // independent, so still parallel) and let the frontier DP
                // pick the cheapest admissible split.
                let tasks = reduced.frontier_tasks();
                let outcomes = par_map(&tasks, 2, |&(idx, k)| {
                    reduced.solve_frontier_task(idx, k, options.engine)
                });
                return (reduced.assemble_frontier(outcomes), Some(stats));
            }
            let ids: Vec<usize> = (0..reduced.components().len()).collect();
            let solutions = par_map(&ids, 2, |&i| reduced.solve_component(i, options.engine));
            (reduced.assemble(solutions), Some(stats))
        }
    }
}

/// The result of the selection step.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The chosen grouping.
    pub grouping: Grouping,
    /// Its total distance `dist(G, L)` (Eq. 2).
    pub distance: f64,
    /// Whether the solver proved optimality (false if the node budget ran
    /// out with a feasible incumbent).
    pub proven_optimal: bool,
    /// Presolve statistics of the enumerated route — including *why* (or
    /// why not) the residual instance decomposed. `None` on the
    /// un-presolved seed route and on the column-generation route.
    pub presolve: Option<PresolveStats>,
    /// Column-generation counters when the lazy route solved the instance.
    pub colgen: Option<ColGenStats>,
    /// Pricing-search counters when the lazy route solved the instance.
    pub pricing: Option<LazyPricingStats>,
}

/// Selects an optimal grouping from `candidates`, or `None` if no exact
/// cover satisfying the group-count bounds exists.
pub fn select_optimal(
    log: &EventLog,
    candidates: &[ClassSet],
    oracle: &DistanceOracle<'_>,
    group_bounds: (Option<u32>, Option<u32>),
    options: SelectionOptions,
) -> Option<Selection> {
    let universe = occurring_classes(log);
    if universe.is_empty() {
        // Nothing to cover: the empty selection is the only option,
        // feasible unless a minimum group count demands otherwise.
        if group_bounds.0.is_some_and(|min| min > 0) {
            return None;
        }
        return Some(trivial_selection());
    }
    // Dense element ids for the occurring classes.
    let classes: Vec<ClassId> = universe.iter().collect();
    let index_of = |c: ClassId| classes.binary_search(&c).expect("class in universe");

    let mut problem = SetPartitionProblem::new(classes.len());
    problem.min_sets = group_bounds.0.map(|b| b as usize);
    problem.max_sets = group_bounds.1.map(|b| b as usize);
    problem.max_nodes = options.max_nodes;
    // Problem-set index → candidate index (empty or infinite-distance
    // candidates are skipped, so the two indexings can diverge).
    let mut kept: Vec<usize> = Vec::with_capacity(candidates.len());
    for (candidate, group) in candidates.iter().enumerate() {
        debug_assert!(group.is_subset(&universe), "candidate contains unknown class");
        let members: Vec<usize> = group.iter().map(index_of).collect();
        if members.is_empty() {
            continue;
        }
        let cost = oracle.distance(group);
        if cost.is_finite() {
            problem.add_set(members, cost);
            kept.push(candidate);
        }
    }
    let (solution, presolve_stats) = solve_set_partition_stats(&problem, options);
    let solution = solution?;
    let chosen: Vec<(ClassSet, f64)> =
        solution.selected.iter().map(|&i| (candidates[kept[i]], problem.sets[i].1)).collect();
    let (grouping, distance) = canonicalize(log, chosen);
    Some(Selection {
        grouping,
        distance,
        proven_optimal: solution.proven_optimal,
        presolve: presolve_stats,
        colgen: None,
        pricing: None,
    })
}

/// The empty-universe selection shared by every route.
fn trivial_selection() -> Selection {
    Selection {
        grouping: Grouping::new(vec![]),
        distance: 0.0,
        proven_optimal: true,
        presolve: None,
        colgen: None,
        pricing: None,
    }
}

/// Canonical grouping + distance: the selected `(group, cost)` pairs are
/// sorted by their [`ClassSet`] order and the costs summed in that order.
/// The groups of an exact cover are pairwise distinct, so the order — and
/// with it the floating-point sum — is unique for a given selection:
/// every route (enumerated or column generation, presolved or not, serial
/// or parallel) reports bit-identical totals for the same selection.
fn canonicalize(log: &EventLog, mut chosen: Vec<(ClassSet, f64)>) -> (Grouping, f64) {
    chosen.sort_by_key(|entry| entry.0);
    let distance = chosen.iter().map(|(_, cost)| *cost).sum();
    let grouping = Grouping::new(chosen.into_iter().map(|(group, _)| group).collect());
    debug_assert!(grouping.is_exact_cover(log));
    (grouping, distance)
}

/// Counters from the lazy pricing search ([`select_optimal_colgen`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LazyPricingStats {
    /// Pricing calls answered.
    pub pricing_calls: usize,
    /// Distinct groups whose verdict (dead / expandable / candidate) was
    /// established — the lazily-touched slice of the implicit pool.
    pub groups_examined: usize,
    /// Groups rejected by the co-occurrence sketches before any posting
    /// intersection or constraint check ran.
    pub sketch_pruned: usize,
    /// Groups rejected by the exact `occurs` test (sketch said maybe).
    pub non_occurring: usize,
    /// Groups rejected by the anti-monotonic constraint gate (their whole
    /// superset lattice is pruned with them).
    pub constraint_pruned: usize,
    /// Lattice subtrees cut by the dual-derived reduced-cost bound.
    pub bound_pruned_subtrees: usize,
    /// Columns handed to the master (candidates pricing below threshold).
    pub columns_emitted: usize,
}

/// Verdict on one group of the implicit candidate lattice.
#[derive(Debug, Clone, Copy)]
enum GroupVerdict {
    /// Does not occur in any trace, or fails the anti-monotonic constraint
    /// gate — no superset can recover, the subtree is dead.
    Dead,
    /// Occurs but violates the full constraint set; supersets may satisfy.
    Expandable,
    /// A candidate: occurs, satisfies all constraints, with its distance.
    Candidate(f64),
}

/// A [`ColumnSource`] over the *implicit* candidate pool: all
/// constraint-satisfying co-occurring groups, never enumerated up front.
///
/// Pricing runs a depth-first search over the canonical class lattice
/// (each group is extended only by classes above its maximum member, so
/// every group is visited along exactly one path). The search is complete
/// with respect to Algorithm 1's candidate space because each pruning
/// rule is sound along canonical prefixes:
///
/// * **sketch reject** — [`ClassCoOccurrence::may_occur`] never returns
///   `false` for a group that co-occurs (one-sided, property-tested);
/// * **occurs reject** — co-occurrence is anti-monotone, so prefixes of a
///   co-occurring group co-occur;
/// * **constraint gate** — only in anti-monotonic mode, where a failing
///   prefix proves every superset fails
///   ([`CompiledConstraintSet::holds_anti_monotonic`] is anti-monotone,
///   and in that mode `holds ⇒ holds_anti_monotonic`, so every prefix of
///   a full candidate survives the gate);
/// * **dual bound** — for a branch `g` with admissible extension set `U`,
///   every strict superset `h ⊆ g ∪ U` has
///   `rc(h) ≥ 1/|g ∪ U| − Σ_{e∈g} y_e − Σ_{c∈U} max(y_c, 0) − y_card`
///   (each instance of `h` contributes at least `1/|h| ≥ 1/|g ∪ U|` to
///   Eq. 1); when that bound clears the pricing threshold the subtree
///   cannot contain a useful column.
///
/// Verdicts and distances are cached across pricing calls, so each group
/// pays for its constraint checks at most once per solve.
struct CandidateColumnSource<'a> {
    /// Dense element id → class, ascending.
    classes: &'a [ClassId],
    universe: ClassSet,
    constraints: &'a CompiledConstraintSet,
    oracle: &'a DistanceOracle<'a>,
    sketch: ClassCoOccurrence,
    /// Anti-monotonic checking mode: the constraint gate may prune.
    anti_monotonic: bool,
    verdicts: HashMap<ClassSet, GroupVerdict>,
    emitted: HashSet<ClassSet>,
    stats: LazyPricingStats,
}

impl<'a> CandidateColumnSource<'a> {
    fn new(
        classes: &'a [ClassId],
        constraints: &'a CompiledConstraintSet,
        oracle: &'a DistanceOracle<'a>,
    ) -> Self {
        let universe: ClassSet = classes.iter().copied().collect();
        let sketch = ClassCoOccurrence::build(oracle.ctx().index());
        CandidateColumnSource {
            classes,
            universe,
            constraints,
            oracle,
            sketch,
            anti_monotonic: constraints.mode() == CheckingMode::AntiMonotonic,
            verdicts: HashMap::new(),
            emitted: HashSet::new(),
            stats: LazyPricingStats::default(),
        }
    }

    fn dense(&self, c: ClassId) -> usize {
        self.classes.binary_search(&c).expect("class in universe")
    }

    fn verdict(&mut self, group: &ClassSet) -> GroupVerdict {
        if let Some(&v) = self.verdicts.get(group) {
            return v;
        }
        self.stats.groups_examined += 1;
        let ctx = self.oracle.ctx();
        let v = if !self.sketch.may_occur(group) {
            self.stats.sketch_pruned += 1;
            GroupVerdict::Dead
        } else if !ctx.occurs(group) {
            self.stats.non_occurring += 1;
            GroupVerdict::Dead
        } else if self.constraints.holds(group, ctx) {
            let cost = self.oracle.distance(group);
            debug_assert!(cost.is_finite(), "occurring groups have instances");
            GroupVerdict::Candidate(cost)
        } else if self.anti_monotonic && !self.constraints.holds_anti_monotonic(group, ctx) {
            self.stats.constraint_pruned += 1;
            GroupVerdict::Dead
        } else {
            GroupVerdict::Expandable
        };
        self.verdicts.insert(*group, v);
        v
    }

    fn descend(
        &mut self,
        group: ClassSet,
        last: ClassId,
        prices: &DualPrices<'_>,
        request: &PricingRequest,
        out: &mut Vec<(Vec<usize>, f64)>,
    ) {
        if out.len() >= request.max_columns {
            return;
        }
        let verdict = self.verdict(&group);
        if matches!(verdict, GroupVerdict::Dead) {
            return;
        }
        let members: Vec<usize> = group.iter().map(|c| self.dense(c)).collect();
        if let GroupVerdict::Candidate(cost) = verdict {
            if !self.emitted.contains(&group)
                && prices.reduced_cost(&members, cost) < request.threshold
            {
                self.emitted.insert(group);
                self.stats.columns_emitted += 1;
                out.push((members.clone(), cost));
                if out.len() >= request.max_columns {
                    return;
                }
            }
        }
        // Canonical extensions: classes above the maximum member that
        // pairwise co-occur with every member (the sketch rows are exact
        // on pairs, so this loses nothing the full occurs test keeps).
        let mut cooc = self.universe;
        for c in group.iter() {
            cooc = cooc.intersection(self.sketch.cooccurring(c));
        }
        let ext: Vec<ClassId> = cooc.difference(&group).iter().filter(|&c| c > last).collect();
        if ext.is_empty() {
            return;
        }
        // Dual bound over the whole subtree (see the type-level docs).
        let closure = (group.len() + ext.len()) as f64;
        let mut bound = 1.0 / closure - prices.per_set;
        for &e in &members {
            bound -= prices.element[e];
        }
        for &c in &ext {
            bound -= prices.element[self.dense(c)].max(0.0);
        }
        if bound >= request.threshold {
            self.stats.bound_pruned_subtrees += 1;
            return;
        }
        for c in ext {
            let mut bigger = group;
            bigger.insert(c);
            self.descend(bigger, c, prices, request, out);
            if out.len() >= request.max_columns {
                return;
            }
        }
    }
}

impl ColumnSource for CandidateColumnSource<'_> {
    fn price(
        &mut self,
        prices: &DualPrices<'_>,
        request: &PricingRequest,
    ) -> Vec<(Vec<usize>, f64)> {
        self.stats.pricing_calls += 1;
        let mut out = Vec::new();
        for &c in self.classes {
            if out.len() >= request.max_columns {
                break;
            }
            self.descend(ClassSet::singleton(c), c, prices, request, &mut out);
        }
        out
    }
}

/// Selects an optimal grouping by column generation over the implicit
/// candidate pool (all constraint-satisfying co-occurring groups), or
/// `None` if no exact cover within the group-count bounds exists.
///
/// Where [`select_optimal`] needs the pool enumerated up front (Step 1),
/// this route generates candidates on demand: LP duals from the
/// restricted master steer a pricing search through the candidate
/// lattice, sketch / occurs / constraint / dual-bound pruning keeps the
/// touched slice small, and the gap-closing loop of
/// [`solve_column_generation`] makes the result exact. On enumerable
/// pools the selection matches the enumerated route bit for bit
/// (differential-tested); past enumerable sizes only this route finishes.
///
/// Note the implicit pool is Algorithm 1's: merged exclusive-alternative
/// candidates (Algorithm 3) only exist on the enumerated route.
pub fn select_optimal_colgen(
    log: &EventLog,
    constraints: &CompiledConstraintSet,
    oracle: &DistanceOracle<'_>,
    group_bounds: (Option<u32>, Option<u32>),
    options: SelectionOptions,
) -> Option<Selection> {
    let universe = occurring_classes(log);
    if universe.is_empty() {
        if group_bounds.0.is_some_and(|min| min > 0) {
            return None;
        }
        return Some(trivial_selection());
    }
    let classes: Vec<ClassId> = universe.iter().collect();
    let mut source = CandidateColumnSource::new(&classes, constraints, oracle);
    let colgen_options = ColGenOptions {
        engine: options.engine,
        max_nodes: options.max_nodes,
        master: options.colgen_master,
        smoothing: options.colgen_smoothing,
        ..ColGenOptions::default()
    };
    // No warm start: initial columns would have to be checked candidates,
    // and finding one is the pricer's job — the big-M artificial bootstrap
    // prices useful columns in on the first round.
    let solution = solve_column_generation(
        classes.len(),
        (group_bounds.0.map(|b| b as usize), group_bounds.1.map(|b| b as usize)),
        &[],
        &mut source,
        &colgen_options,
    )?;
    let chosen: Vec<(ClassSet, f64)> = solution
        .columns
        .iter()
        .map(|(members, cost)| (members.iter().map(|&e| classes[e]).collect(), *cost))
        .collect();
    let (grouping, distance) = canonicalize(log, chosen);
    Some(Selection {
        grouping,
        distance,
        proven_optimal: solution.proven_optimal,
        presolve: None,
        colgen: Some(solution.stats),
        pricing: Some(source.stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::{LogBuilder, Segmenter};

    fn running_example() -> EventLog {
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    /// The candidate pool of Figure 7.
    fn figure7_candidates(log: &EventLog) -> Vec<ClassSet> {
        vec![
            set(log, &["rcp", "ckt", "ckc"]),
            set(log, &["prio", "inf", "arv"]),
            set(log, &["rej"]),
            set(log, &["acc"]),
            set(log, &["ckt", "ckc"]),
            set(log, &["rcp"]),
            set(log, &["ckt"]),
            set(log, &["arv"]),
            set(log, &["prio"]),
            set(log, &["ckc"]),
            set(log, &["inf"]),
            set(log, &["inf", "arv"]),
            set(log, &["prio", "inf"]),
            set(log, &["prio", "arv"]),
            set(log, &["rcp", "ckc"]),
            set(log, &["rcp", "ckt"]),
        ]
    }

    #[test]
    fn figure7_selection_matches_paper() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let sel =
            select_optimal(&log, &candidates, &oracle, (None, None), SelectionOptions::default())
                .expect("feasible");
        assert!(sel.proven_optimal);
        assert!((sel.distance - 37.0 / 12.0).abs() < 1e-9, "Fig. 7: dist = 3.08");
        let expected = Grouping::new(vec![
            set(&log, &["rcp", "ckt", "ckc"]),
            set(&log, &["acc"]),
            set(&log, &["rej"]),
            set(&log, &["prio", "inf", "arv"]),
        ]);
        assert_eq!(sel.grouping, expected);
    }

    #[test]
    fn both_engines_agree() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let dlx = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { engine: SolveEngine::Dlx, ..Default::default() },
        )
        .unwrap();
        let bnb = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { engine: SolveEngine::SimplexBnb, ..Default::default() },
        )
        .unwrap();
        assert!((dlx.distance - bnb.distance).abs() < 1e-9);
    }

    #[test]
    fn figure7_presolved_routes_match_the_seed_solve() {
        // The Fig. 7 optimum is unique, so every route — presolved or
        // not, either engine — must return the *same* Selection, bit for
        // bit: same grouping, same distance, same optimality proof.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let seed = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { presolve: false, ..Default::default() },
        )
        .unwrap();
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let routed = select_optimal(
                &log,
                &candidates,
                &oracle,
                (None, None),
                SelectionOptions { engine, presolve: true, ..Default::default() },
            )
            .unwrap();
            assert_eq!(routed.grouping, seed.grouping, "{engine:?}");
            assert_eq!(routed.distance.to_bits(), seed.distance.to_bits(), "{engine:?}");
            assert!(routed.proven_optimal);
        }
    }

    #[test]
    fn presolve_handles_duplicate_candidates() {
        // The Fig. 7 pool with every candidate listed twice: dedup keeps
        // one copy of each; the selection is unchanged.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let mut candidates = figure7_candidates(&log);
        candidates.extend(figure7_candidates(&log));
        let sel =
            select_optimal(&log, &candidates, &oracle, (None, None), SelectionOptions::default())
                .expect("feasible");
        assert!((sel.distance - 37.0 / 12.0).abs() < 1e-9);
        assert!(sel.proven_optimal);
        assert!(sel.grouping.is_exact_cover(&log));
    }

    #[test]
    fn group_bounds_change_selection() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        // At most 3 groups: impossible (acc/rej are mandatory singletons
        // here and the other six classes split into at least two groups).
        let sel = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, Some(3)),
            SelectionOptions::default(),
        );
        assert!(sel.is_none());
        // At least 6 groups: forces a finer cover.
        let sel = select_optimal(
            &log,
            &candidates,
            &oracle,
            (Some(6), None),
            SelectionOptions::default(),
        )
        .unwrap();
        assert!(sel.grouping.len() >= 6);
        assert!(sel.distance > 37.0 / 12.0 - 1e-9, "coarser optimum is unreachable");
    }

    #[test]
    fn infeasible_without_covering_candidates() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        // Candidates that cannot cover `prio`.
        let candidates = vec![set(&log, &["rcp"]), set(&log, &["ckc"])];
        assert!(select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions::default()
        )
        .is_none());
    }

    #[test]
    fn empty_log_trivial_grouping() {
        let log = LogBuilder::new().build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let sel =
            select_optimal(&log, &[], &oracle, (None, None), SelectionOptions::default()).unwrap();
        assert!(sel.grouping.is_empty());
        assert_eq!(sel.distance, 0.0);
        // A positive minimum group count makes the empty cover infeasible
        // — on both routes.
        assert!(select_optimal(&log, &[], &oracle, (Some(1), None), SelectionOptions::default())
            .is_none());
        let compiled = compile(&log, "");
        assert!(select_optimal_colgen(
            &log,
            &compiled,
            &oracle,
            (Some(1), None),
            SelectionOptions::default()
        )
        .is_none());
    }

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        let parsed = gecco_constraints::ConstraintSet::parse(dsl).unwrap();
        CompiledConstraintSet::compile(&parsed, log).unwrap()
    }

    #[test]
    fn colgen_route_matches_the_enumerated_route() {
        // Same implicit pool (Algorithm 1 under the constraints), two
        // solvers: the enumerated presolved route and lazy column
        // generation must return the same selection, bit for bit.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        for dsl in ["", "size(g) <= 3;"] {
            let compiled = compile(&log, dsl);
            let pool = crate::candidates::exhaustive::exhaustive_candidates(
                &ctx,
                &compiled,
                crate::candidates::Budget::UNLIMITED,
            );
            let enumerated = select_optimal(
                &log,
                pool.groups(),
                &oracle,
                (None, None),
                SelectionOptions::default(),
            )
            .expect("feasible");
            let lazy = select_optimal_colgen(
                &log,
                &compiled,
                &oracle,
                (None, None),
                SelectionOptions::default(),
            )
            .expect("feasible");
            assert_eq!(lazy.grouping, enumerated.grouping, "{dsl:?}");
            assert_eq!(lazy.distance.to_bits(), enumerated.distance.to_bits(), "{dsl:?}");
            assert!(lazy.proven_optimal && enumerated.proven_optimal);
            // The routes surface their respective statistics.
            assert!(enumerated.presolve.is_some() && enumerated.colgen.is_none());
            let pricing = lazy.pricing.expect("lazy route reports pricing stats");
            assert!(lazy.colgen.is_some() && lazy.presolve.is_none());
            // The pricer touches the implicit pool lazily: every emitted
            // column is an enumerable candidate, and never more of them
            // than enumeration produced.
            assert!(pricing.columns_emitted <= pool.len(), "{pricing:?}");
            assert!(pricing.groups_examined > 0);
        }
    }

    #[test]
    fn auto_mode_follows_the_pool_estimate() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        // Literal modes ignore the estimate entirely.
        let on = SelectionOptions { column_generation: ColGenMode::On, ..Default::default() };
        let off = SelectionOptions::default();
        assert!(use_column_generation(&on, &log, &index));
        assert!(!use_column_generation(&off, &log, &index));
        // The running example's clique count is tiny: the default budget
        // keeps the enumerated route, a budget of 1 flips colgen on.
        let auto = SelectionOptions { column_generation: ColGenMode::Auto, ..Default::default() };
        assert!(!use_column_generation(&auto, &log, &index));
        let tight = SelectionOptions { auto_colgen_budget: 1, ..auto };
        assert!(use_column_generation(&tight, &log, &index));
        let zero = SelectionOptions { auto_colgen_budget: 0, ..auto };
        assert!(use_column_generation(&zero, &log, &index), "budget 0 behaves like On");
    }

    #[test]
    fn colgen_master_engines_return_identical_selections() {
        // The dense tableau oracle and the revised master — smoothed and
        // unsmoothed — must produce the *same* Selection, bit for bit.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        for dsl in ["", "size(g) <= 3;"] {
            let compiled = compile(&log, dsl);
            let mut selections = Vec::new();
            for colgen_master in [MasterEngine::Revised, MasterEngine::Dense] {
                for colgen_smoothing in [true, false] {
                    let options =
                        SelectionOptions { colgen_master, colgen_smoothing, ..Default::default() };
                    let sel =
                        select_optimal_colgen(&log, &compiled, &oracle, (None, None), options)
                            .expect("feasible");
                    assert!(sel.proven_optimal, "{colgen_master:?}/{colgen_smoothing}");
                    selections.push((format!("{colgen_master:?}/{colgen_smoothing}"), sel));
                }
            }
            let (ref base_label, ref base) = selections[0];
            for (label, sel) in &selections[1..] {
                assert_eq!(sel.grouping, base.grouping, "{label} vs {base_label} ({dsl:?})");
                assert_eq!(
                    sel.distance.to_bits(),
                    base.distance.to_bits(),
                    "{label} vs {base_label} ({dsl:?})"
                );
            }
        }
    }

    #[test]
    fn colgen_route_respects_group_bounds() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let compiled = compile(&log, "");
        // At least 6 groups forces a finer cover than the free optimum.
        let bounded = select_optimal_colgen(
            &log,
            &compiled,
            &oracle,
            (Some(6), None),
            SelectionOptions::default(),
        )
        .expect("feasible");
        assert!(bounded.grouping.len() >= 6);
        let free = select_optimal_colgen(
            &log,
            &compiled,
            &oracle,
            (None, None),
            SelectionOptions::default(),
        )
        .expect("feasible");
        assert!(bounded.distance > free.distance - 1e-9);
        // More groups than occurring classes is impossible.
        assert!(select_optimal_colgen(
            &log,
            &compiled,
            &oracle,
            (Some(9), None),
            SelectionOptions::default()
        )
        .is_none());
    }
}
