//! Step 2: finding an optimal grouping (§V-C).
//!
//! Builds the bipartite candidate/class graph of Figure 7 and solves the
//! MIP of Eqs. 3–5: select a minimum-distance subset of candidates covering
//! every occurring event class exactly once, optionally bounding the number
//! of selected groups.

use crate::distance::DistanceOracle;
use crate::grouping::{occurring_classes, Grouping};
use gecco_eventlog::{ClassId, ClassSet, EventLog};
use gecco_solver::{SetPartitionProblem, SolveEngine};

/// Options for the selection step.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectionOptions {
    /// Which solver backend to use.
    pub engine: SolveEngine,
    /// Search budget (0 = backend default).
    pub max_nodes: usize,
}

/// The result of the selection step.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The chosen grouping.
    pub grouping: Grouping,
    /// Its total distance `dist(G, L)` (Eq. 2).
    pub distance: f64,
    /// Whether the solver proved optimality (false if the node budget ran
    /// out with a feasible incumbent).
    pub proven_optimal: bool,
}

/// Selects an optimal grouping from `candidates`, or `None` if no exact
/// cover satisfying the group-count bounds exists.
pub fn select_optimal(
    log: &EventLog,
    candidates: &[ClassSet],
    oracle: &DistanceOracle<'_>,
    group_bounds: (Option<u32>, Option<u32>),
    options: SelectionOptions,
) -> Option<Selection> {
    let universe = occurring_classes(log);
    if universe.is_empty() {
        return Some(Selection {
            grouping: Grouping::new(vec![]),
            distance: 0.0,
            proven_optimal: true,
        });
    }
    // Dense element ids for the occurring classes.
    let classes: Vec<ClassId> = universe.iter().collect();
    let index_of = |c: ClassId| classes.binary_search(&c).expect("class in universe");

    let mut problem = SetPartitionProblem::new(classes.len());
    problem.min_sets = group_bounds.0.map(|b| b as usize);
    problem.max_sets = group_bounds.1.map(|b| b as usize);
    problem.max_nodes = options.max_nodes;
    for group in candidates {
        debug_assert!(group.is_subset(&universe), "candidate contains unknown class");
        let members: Vec<usize> = group.iter().map(index_of).collect();
        if members.is_empty() {
            continue;
        }
        let cost = oracle.distance(group);
        if cost.is_finite() {
            problem.add_set(members, cost);
        }
    }
    let solution = problem.solve(options.engine)?;
    let groups: Vec<ClassSet> = solution.selected.iter().map(|&i| candidates[i]).collect();
    let grouping = Grouping::new(groups);
    debug_assert!(grouping.is_exact_cover(log));
    Some(Selection { grouping, distance: solution.cost, proven_optimal: solution.proven_optimal })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::{LogBuilder, Segmenter};

    fn running_example() -> EventLog {
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    /// The candidate pool of Figure 7.
    fn figure7_candidates(log: &EventLog) -> Vec<ClassSet> {
        vec![
            set(log, &["rcp", "ckt", "ckc"]),
            set(log, &["prio", "inf", "arv"]),
            set(log, &["rej"]),
            set(log, &["acc"]),
            set(log, &["ckt", "ckc"]),
            set(log, &["rcp"]),
            set(log, &["ckt"]),
            set(log, &["arv"]),
            set(log, &["prio"]),
            set(log, &["ckc"]),
            set(log, &["inf"]),
            set(log, &["inf", "arv"]),
            set(log, &["prio", "inf"]),
            set(log, &["prio", "arv"]),
            set(log, &["rcp", "ckc"]),
            set(log, &["rcp", "ckt"]),
        ]
    }

    #[test]
    fn figure7_selection_matches_paper() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let sel =
            select_optimal(&log, &candidates, &oracle, (None, None), SelectionOptions::default())
                .expect("feasible");
        assert!(sel.proven_optimal);
        assert!((sel.distance - 37.0 / 12.0).abs() < 1e-9, "Fig. 7: dist = 3.08");
        let expected = Grouping::new(vec![
            set(&log, &["rcp", "ckt", "ckc"]),
            set(&log, &["acc"]),
            set(&log, &["rej"]),
            set(&log, &["prio", "inf", "arv"]),
        ]);
        assert_eq!(sel.grouping, expected);
    }

    #[test]
    fn both_engines_agree() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let dlx = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { engine: SolveEngine::Dlx, max_nodes: 0 },
        )
        .unwrap();
        let bnb = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { engine: SolveEngine::SimplexBnb, max_nodes: 0 },
        )
        .unwrap();
        assert!((dlx.distance - bnb.distance).abs() < 1e-9);
    }

    #[test]
    fn group_bounds_change_selection() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        // At most 3 groups: impossible (acc/rej are mandatory singletons
        // here and the other six classes split into at least two groups).
        let sel = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, Some(3)),
            SelectionOptions::default(),
        );
        assert!(sel.is_none());
        // At least 6 groups: forces a finer cover.
        let sel = select_optimal(
            &log,
            &candidates,
            &oracle,
            (Some(6), None),
            SelectionOptions::default(),
        )
        .unwrap();
        assert!(sel.grouping.len() >= 6);
        assert!(sel.distance > 37.0 / 12.0 - 1e-9, "coarser optimum is unreachable");
    }

    #[test]
    fn infeasible_without_covering_candidates() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        // Candidates that cannot cover `prio`.
        let candidates = vec![set(&log, &["rcp"]), set(&log, &["ckc"])];
        assert!(select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions::default()
        )
        .is_none());
    }

    #[test]
    fn empty_log_trivial_grouping() {
        let log = LogBuilder::new().build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let sel =
            select_optimal(&log, &[], &oracle, (None, None), SelectionOptions::default()).unwrap();
        assert!(sel.grouping.is_empty());
        assert_eq!(sel.distance, 0.0);
    }
}
