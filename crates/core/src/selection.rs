//! Step 2: finding an optimal grouping (§V-C).
//!
//! Builds the bipartite candidate/class graph of Figure 7 and solves the
//! MIP of Eqs. 3–5: select a minimum-distance subset of candidates covering
//! every occurring event class exactly once, optionally bounding the number
//! of selected groups.
//!
//! By default the solve routes through [`mod@gecco_solver::presolve`]:
//! duplicate candidates collapse, classes covered by a single candidate
//! are fixed, dominated candidates disappear, and the residual
//! candidate/class graph decomposes into connected components that solve
//! independently — in parallel under the `rayon` feature, with results
//! bit-identical to the serial order (components assemble in a fixed
//! order and the final distance is recomputed canonically). The
//! un-presolved single solve stays available (`presolve: false`) as the
//! oracle for differential tests.

use crate::distance::DistanceOracle;
use crate::grouping::{occurring_classes, Grouping};
use crate::parallel::par_map;
use gecco_eventlog::{ClassId, ClassSet, EventLog};
use gecco_solver::{
    presolve, PresolveOptions, PresolveOutcome, SetPartitionProblem, SetPartitionSolution,
    SolveEngine,
};

/// Options for the selection step.
#[derive(Debug, Clone, Copy)]
pub struct SelectionOptions {
    /// Which solver backend to use.
    pub engine: SolveEngine,
    /// Search budget (0 = backend default). With presolve on, the budget
    /// applies to each independent component rather than globally.
    pub max_nodes: usize,
    /// Route through presolve + component decomposition (the default).
    /// `false` is the seed single-solve path, kept as the oracle for
    /// differential tests and ablation benchmarks.
    pub presolve: bool,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions { engine: SolveEngine::default(), max_nodes: 0, presolve: true }
    }
}

/// Solves a raw weighted set-partitioning instance through the configured
/// route: either the direct single solve (`presolve: false`), or presolve
/// → connected-component decomposition → per-component engines, fanning
/// the components out in parallel under the `rayon` feature. Component
/// order is fixed, so parallel and serial runs assemble bit-identical
/// solutions.
pub fn solve_set_partition(
    problem: &SetPartitionProblem,
    options: SelectionOptions,
) -> Option<SetPartitionSolution> {
    // A non-zero option budget overrides the instance's own.
    let rebudgeted;
    let problem = if options.max_nodes != 0 && options.max_nodes != problem.max_nodes {
        rebudgeted = SetPartitionProblem { max_nodes: options.max_nodes, ..problem.clone() };
        &rebudgeted
    } else {
        problem
    };
    if !options.presolve {
        return problem.solve(options.engine);
    }
    match presolve(problem, &PresolveOptions::default()) {
        PresolveOutcome::Infeasible => None,
        PresolveOutcome::Solved(solution) => Some(solution),
        PresolveOutcome::Reduced(reduced) => {
            let ids: Vec<usize> = (0..reduced.components().len()).collect();
            let solutions = par_map(&ids, 2, |&i| reduced.solve_component(i, options.engine));
            reduced.assemble(solutions)
        }
    }
}

/// The result of the selection step.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The chosen grouping.
    pub grouping: Grouping,
    /// Its total distance `dist(G, L)` (Eq. 2).
    pub distance: f64,
    /// Whether the solver proved optimality (false if the node budget ran
    /// out with a feasible incumbent).
    pub proven_optimal: bool,
}

/// Selects an optimal grouping from `candidates`, or `None` if no exact
/// cover satisfying the group-count bounds exists.
pub fn select_optimal(
    log: &EventLog,
    candidates: &[ClassSet],
    oracle: &DistanceOracle<'_>,
    group_bounds: (Option<u32>, Option<u32>),
    options: SelectionOptions,
) -> Option<Selection> {
    let universe = occurring_classes(log);
    if universe.is_empty() {
        return Some(Selection {
            grouping: Grouping::new(vec![]),
            distance: 0.0,
            proven_optimal: true,
        });
    }
    // Dense element ids for the occurring classes.
    let classes: Vec<ClassId> = universe.iter().collect();
    let index_of = |c: ClassId| classes.binary_search(&c).expect("class in universe");

    let mut problem = SetPartitionProblem::new(classes.len());
    problem.min_sets = group_bounds.0.map(|b| b as usize);
    problem.max_sets = group_bounds.1.map(|b| b as usize);
    problem.max_nodes = options.max_nodes;
    // Problem-set index → candidate index (empty or infinite-distance
    // candidates are skipped, so the two indexings can diverge).
    let mut kept: Vec<usize> = Vec::with_capacity(candidates.len());
    for (candidate, group) in candidates.iter().enumerate() {
        debug_assert!(group.is_subset(&universe), "candidate contains unknown class");
        let members: Vec<usize> = group.iter().map(index_of).collect();
        if members.is_empty() {
            continue;
        }
        let cost = oracle.distance(group);
        if cost.is_finite() {
            problem.add_set(members, cost);
            kept.push(candidate);
        }
    }
    let solution = solve_set_partition(&problem, options)?;
    let groups: Vec<ClassSet> = solution.selected.iter().map(|&i| candidates[kept[i]]).collect();
    let grouping = Grouping::new(groups);
    debug_assert!(grouping.is_exact_cover(log));
    // Canonical distance: the selected costs summed in ascending
    // problem-set order, so every route (presolved or not, serial or
    // parallel) reports bit-identical totals for the same selection.
    let distance = solution.selected.iter().map(|&i| problem.sets[i].1).sum();
    Some(Selection { grouping, distance, proven_optimal: solution.proven_optimal })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::{LogBuilder, Segmenter};

    fn running_example() -> EventLog {
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    /// The candidate pool of Figure 7.
    fn figure7_candidates(log: &EventLog) -> Vec<ClassSet> {
        vec![
            set(log, &["rcp", "ckt", "ckc"]),
            set(log, &["prio", "inf", "arv"]),
            set(log, &["rej"]),
            set(log, &["acc"]),
            set(log, &["ckt", "ckc"]),
            set(log, &["rcp"]),
            set(log, &["ckt"]),
            set(log, &["arv"]),
            set(log, &["prio"]),
            set(log, &["ckc"]),
            set(log, &["inf"]),
            set(log, &["inf", "arv"]),
            set(log, &["prio", "inf"]),
            set(log, &["prio", "arv"]),
            set(log, &["rcp", "ckc"]),
            set(log, &["rcp", "ckt"]),
        ]
    }

    #[test]
    fn figure7_selection_matches_paper() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let sel =
            select_optimal(&log, &candidates, &oracle, (None, None), SelectionOptions::default())
                .expect("feasible");
        assert!(sel.proven_optimal);
        assert!((sel.distance - 37.0 / 12.0).abs() < 1e-9, "Fig. 7: dist = 3.08");
        let expected = Grouping::new(vec![
            set(&log, &["rcp", "ckt", "ckc"]),
            set(&log, &["acc"]),
            set(&log, &["rej"]),
            set(&log, &["prio", "inf", "arv"]),
        ]);
        assert_eq!(sel.grouping, expected);
    }

    #[test]
    fn both_engines_agree() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let dlx = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { engine: SolveEngine::Dlx, ..Default::default() },
        )
        .unwrap();
        let bnb = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { engine: SolveEngine::SimplexBnb, ..Default::default() },
        )
        .unwrap();
        assert!((dlx.distance - bnb.distance).abs() < 1e-9);
    }

    #[test]
    fn figure7_presolved_routes_match_the_seed_solve() {
        // The Fig. 7 optimum is unique, so every route — presolved or
        // not, either engine — must return the *same* Selection, bit for
        // bit: same grouping, same distance, same optimality proof.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        let seed = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions { presolve: false, ..Default::default() },
        )
        .unwrap();
        for engine in [SolveEngine::Dlx, SolveEngine::SimplexBnb] {
            let routed = select_optimal(
                &log,
                &candidates,
                &oracle,
                (None, None),
                SelectionOptions { engine, presolve: true, ..Default::default() },
            )
            .unwrap();
            assert_eq!(routed.grouping, seed.grouping, "{engine:?}");
            assert_eq!(routed.distance.to_bits(), seed.distance.to_bits(), "{engine:?}");
            assert!(routed.proven_optimal);
        }
    }

    #[test]
    fn presolve_handles_duplicate_candidates() {
        // The Fig. 7 pool with every candidate listed twice: dedup keeps
        // one copy of each; the selection is unchanged.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let mut candidates = figure7_candidates(&log);
        candidates.extend(figure7_candidates(&log));
        let sel =
            select_optimal(&log, &candidates, &oracle, (None, None), SelectionOptions::default())
                .expect("feasible");
        assert!((sel.distance - 37.0 / 12.0).abs() < 1e-9);
        assert!(sel.proven_optimal);
        assert!(sel.grouping.is_exact_cover(&log));
    }

    #[test]
    fn group_bounds_change_selection() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let candidates = figure7_candidates(&log);
        // At most 3 groups: impossible (acc/rej are mandatory singletons
        // here and the other six classes split into at least two groups).
        let sel = select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, Some(3)),
            SelectionOptions::default(),
        );
        assert!(sel.is_none());
        // At least 6 groups: forces a finer cover.
        let sel = select_optimal(
            &log,
            &candidates,
            &oracle,
            (Some(6), None),
            SelectionOptions::default(),
        )
        .unwrap();
        assert!(sel.grouping.len() >= 6);
        assert!(sel.distance > 37.0 / 12.0 - 1e-9, "coarser optimum is unreachable");
    }

    #[test]
    fn infeasible_without_covering_candidates() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        // Candidates that cannot cover `prio`.
        let candidates = vec![set(&log, &["rcp"]), set(&log, &["ckc"])];
        assert!(select_optimal(
            &log,
            &candidates,
            &oracle,
            (None, None),
            SelectionOptions::default()
        )
        .is_none());
    }

    #[test]
    fn empty_log_trivial_grouping() {
        let log = LogBuilder::new().build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let oracle = DistanceOracle::new(&ctx, Segmenter::RepeatSplit);
        let sel =
            select_optimal(&log, &[], &oracle, (None, None), SelectionOptions::default()).unwrap();
        assert!(sel.grouping.is_empty());
        assert_eq!(sel.distance, 0.0);
    }
}
