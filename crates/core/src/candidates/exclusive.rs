//! Algorithm 3: merging exclusive behavioral alternatives.
//!
//! Exclusive event classes never co-occur in a trace, so the
//! `occurs(g, L)` pruning of Algorithms 1/2 — evaluated on the hot
//! expansion path via the postings-intersection
//! [`gecco_eventlog::LogIndex::occurs`] — deliberately skips groups
//! containing them. But when exclusive groups are *proper alternatives* —
//! identical presets and postsets in the DFG, like the two check variants
//! `ckc`/`ckt` of the running example (Fig. 6) — merging them reduces log
//! complexity without losing behavioral information. This pass extends the
//! candidate set with such merges, including combinations with shared
//! pre-/postsets, and with iteratively larger unions of three or more
//! alternatives.
//!
//! Only class-based constraints need re-checking for a merged group:
//! instances of an exclusive merge are exactly the instances of its parts,
//! so no instance-based constraint can become newly violated (§V-B).

use super::CandidateSet;
use gecco_constraints::CompiledConstraintSet;
use gecco_eventlog::{ClassSet, Dfg, EvalContext};
use std::collections::{HashMap, HashSet};

/// Runs Algorithm 3, extending `candidates` in place. Returns the number of
/// new candidates added.
pub fn extend_with_exclusive_candidates(
    ctx: &EvalContext<'_>,
    constraints: &CompiledConstraintSet,
    candidates: &mut CandidateSet,
) -> usize {
    let log = ctx.log();
    let dfg = Dfg::from_index(log, ctx.index());
    // Index the current candidates by (preset, postset). Computing the two
    // boundary sets walks every DFG edge per group, so fan the per-group
    // computation out over all cores (serial when parallelism is off).
    let snapshot: Vec<ClassSet> = candidates.groups().to_vec();
    let keys: Vec<(ClassSet, ClassSet)> =
        crate::parallel::par_map(&snapshot, 32, |g| (dfg.preset(g), dfg.postset(g)));
    let mut by_pre_post: HashMap<(ClassSet, ClassSet), Vec<ClassSet>> = HashMap::new();
    for (g, key) in snapshot.iter().zip(&keys) {
        by_pre_post.entry(*key).or_default().push(*g);
    }
    let mut added = 0usize;
    let mut seen: HashSet<ClassSet> = HashSet::new();
    for (g, key) in snapshot.iter().copied().zip(keys.iter().copied()) {
        if seen.contains(&g) {
            continue;
        }
        let mut equiv_groups: Vec<ClassSet> =
            by_pre_post.get(&key).cloned().unwrap_or_else(|| vec![g]);
        let mut pairs: Vec<(ClassSet, ClassSet)> = Vec::new();
        for (i, gi) in equiv_groups.iter().enumerate() {
            for gj in equiv_groups.iter().skip(i + 1) {
                pairs.push((*gi, *gj));
            }
        }
        while let Some((gi, gj)) = pairs.pop() {
            if gi.intersects(&gj) {
                continue;
            }
            let gij = gi.union(&gj);
            if !dfg.exclusive(&gi, &gj) || constraints.check_class(&gij, ctx).is_err() {
                continue;
            }
            if candidates.insert(gij) {
                added += 1;
            }
            // Combine the merge with its (shared) pre-/postset when those
            // combinations were already candidates for both parts.
            let pre = dfg.preset(&gi);
            let post = dfg.postset(&gi);
            let both = pre.union(&post);
            let combos: [ClassSet; 3] = [both, pre, post];
            for boundary in combos {
                if boundary.is_empty() {
                    continue;
                }
                let with_gi = boundary.union(&gi);
                let with_gj = boundary.union(&gj);
                if candidates.contains(&with_gi) && candidates.contains(&with_gj) {
                    let merged = boundary.union(&gij);
                    if constraints.check_class(&merged, ctx).is_ok() && candidates.insert(merged) {
                        added += 1;
                    }
                    break; // paper's if/else-if cascade: first applicable only
                }
            }
            // Larger unions: pair the merge with the remaining alternatives.
            for gk in &equiv_groups {
                if *gk != gi && *gk != gj && !gk.intersects(&gij) {
                    pairs.push((gij, *gk));
                }
            }
            equiv_groups.push(gij);
        }
        seen.extend(equiv_groups);
    }
    candidates.stats.exclusive_candidates += added;
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::exhaustive::exhaustive_candidates;
    use crate::candidates::Budget;
    use gecco_constraints::ConstraintSet;
    use gecco_eventlog::{EventLog, LogBuilder};

    fn running_example() -> EventLog {
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb
                    .event_with(cls, |e| {
                        e.str("org:role", role_of(cls));
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
    }

    #[test]
    fn figure6_merges_proper_alternatives_only() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        // DFG-based candidates: {ckc, ckt} has no connecting path of length
        // 2 (no DFG edge between the alternatives), so it is absent before
        // the exclusive-merging pass.
        let mut cands = crate::candidates::dfg::dfg_candidates(
            &ctx,
            &cs,
            None,
            Budget::UNLIMITED,
            &mut crate::candidates::dfg::NoObserver,
        );
        assert!(!cands.groups().contains(&set(&log, &["ckc", "ckt"])));
        let added = extend_with_exclusive_candidates(&ctx, &cs, &mut cands);
        assert!(added > 0);
        // {ckc, ckt}: identical pre ({rcp}) and post ({acc, rej}) → merged.
        assert!(cands.groups().contains(&set(&log, &["ckc", "ckt"])));
        // {acc, rej}: post sets differ (rej loops back to rcp) → NOT merged.
        assert!(!cands.groups().contains(&set(&log, &["acc", "rej"])));
    }

    #[test]
    fn merge_with_preset_produces_winning_group() {
        // The paper: {rcp, ckc} and {rcp, ckt} in G ⟹ {rcp, ckc, ckt} added.
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let mut cands = crate::candidates::dfg::dfg_candidates(
            &ctx,
            &cs,
            None,
            Budget::UNLIMITED,
            &mut crate::candidates::dfg::NoObserver,
        );
        extend_with_exclusive_candidates(&ctx, &cs, &mut cands);
        assert!(
            cands.groups().contains(&set(&log, &["rcp", "ckc", "ckt"])),
            "the optimal grouping's first group must be constructible"
        );
    }

    #[test]
    fn class_constraints_still_bind_merges() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "size(g) <= 1;");
        let mut cands = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        let before = cands.len();
        let added = extend_with_exclusive_candidates(&ctx, &cs, &mut cands);
        assert_eq!(added, 0, "merges would violate size(g) <= 1");
        assert_eq!(cands.len(), before);
    }

    #[test]
    fn three_way_alternatives() {
        // Three exclusive variants with identical pre/post.
        let mut b = LogBuilder::new();
        for (i, variant) in ["v1", "v2", "v3"].iter().enumerate() {
            for r in 0..2 {
                b.trace(&format!("t{i}-{r}"))
                    .event("start")
                    .unwrap()
                    .event(variant)
                    .unwrap()
                    .event("end")
                    .unwrap()
                    .done();
            }
        }
        let log = b.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "");
        let mut cands = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        extend_with_exclusive_candidates(&ctx, &cs, &mut cands);
        assert!(cands.groups().contains(&set(&log, &["v1", "v2"])));
        assert!(cands.groups().contains(&set(&log, &["v1", "v2", "v3"])), "iterative merging");
    }

    #[test]
    fn stats_track_added_candidates() {
        let log = running_example();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "");
        let mut cands = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        let added = extend_with_exclusive_candidates(&ctx, &cs, &mut cands);
        assert_eq!(cands.stats.exclusive_candidates, added);
    }
}
