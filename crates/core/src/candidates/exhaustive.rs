//! Algorithm 1: exhaustive candidate computation.
//!
//! Level-wise enumeration of all constraint-satisfying groups that co-occur
//! in at least one trace, with the two pruning strategies of §V-B:
//!
//! * **monotonic mode** — a group with a known-satisfying subset is admitted
//!   without re-validation;
//! * **anti-monotonic mode** — only groups passing the anti-monotonic
//!   subset of the constraints are expanded (a violated anti-monotonic
//!   constraint can never be repaired by adding classes).
//!
//! The expansion gate deliberately checks only the *anti-monotonic*
//! constraints rather than full satisfaction: when anti-monotonic and
//! non-/monotonic constraints are mixed, the paper's literal "expand
//! `G_new`" would lose completeness (see DESIGN.md, interpretation 4);
//! both behaviors coincide when all constraints are anti-monotonic.

use super::{Budget, CandidateSet, PreevaluatedChecks};
use gecco_constraints::{CheckingMode, CompiledConstraintSet};
use gecco_eventlog::{ClassCoOccurrence, ClassSet, EvalContext};
use std::collections::HashMap;

/// Runs Algorithm 1 and returns the candidate set. Constraint checks go
/// through `ctx`, so each candidate only pays for its own occurrences.
pub fn exhaustive_candidates(
    ctx: &EvalContext<'_>,
    constraints: &CompiledConstraintSet,
    budget: Budget,
) -> CandidateSet {
    let log = ctx.log();
    let mode = constraints.mode();
    let mut out = CandidateSet::new();
    let occurring = crate::grouping::occurring_classes(log);

    // Co-occurrence sketches, built in one pass over the index postings.
    // The pairwise rows are exact — `cooccurring(c)` is precisely the set
    // of classes sharing a trace with c, the cheap necessary condition
    // checked before the full occurs() scan — and `may_occur` adds
    // higher-order (triple) filtering that is one-sided by construction:
    // it never rejects a group that actually co-occurs.
    let sketch = ClassCoOccurrence::build(ctx.index());

    // toCheck entries carry a witness flag: does the group have a subset
    // already admitted to G? (enables the monotonic-mode shortcut).
    let mut to_check: Vec<(ClassSet, bool)> =
        occurring.iter().map(|c| (ClassSet::singleton(c), false)).collect();

    while !to_check.is_empty() {
        out.stats.iterations += 1;
        // With parallelism on, evaluate this level's constraint checks over
        // all cores first; the loop below then replays the budget/shortcut
        // bookkeeping against the stored verdicts (identical results either
        // way — see `PreevaluatedChecks`).
        let pre = PreevaluatedChecks::evaluate(
            ctx,
            constraints,
            to_check.iter().copied(),
            budget,
            out.stats.checked + out.stats.monotonic_shortcuts,
        );
        let mut admitted: Vec<(ClassSet, bool)> = Vec::new(); // (group, expandable)
        for (group, has_satisfied_subset) in &to_check {
            if budget.exhausted(out.stats.checked + out.stats.monotonic_shortcuts) {
                out.stats.budget_exhausted = true;
                return out;
            }
            let holds = if mode == CheckingMode::Monotonic && *has_satisfied_subset {
                out.stats.monotonic_shortcuts += 1;
                true
            } else {
                out.stats.checked += 1;
                match &pre {
                    Some(pre) => pre.holds(group, ctx, constraints),
                    None => constraints.holds(group, ctx),
                }
            };
            if holds {
                out.stats.satisfied += 1;
                out.insert(*group);
            }
            let expandable = match mode {
                // Anti-monotonic mode: only expand groups that satisfy the
                // anti-monotonic constraint subset.
                CheckingMode::AntiMonotonic => {
                    holds
                        || match &pre {
                            Some(pre) => pre.holds_anti_monotonic(group, ctx, constraints),
                            None => constraints.holds_anti_monotonic(group, ctx),
                        }
                }
                // Monotonic / non-monotonic: expand everything (supergroups
                // of violating groups may still satisfy the constraints).
                CheckingMode::Monotonic | CheckingMode::NonMonotonic => true,
            };
            if expandable {
                admitted.push((*group, holds));
            }
        }
        // Group expansion: add one class to each expandable group. Under a
        // check budget the frontier is capped — groups beyond ~4× the
        // remaining budget can never be checked anyway.
        let touched = out.stats.checked + out.stats.monotonic_shortcuts;
        let frontier_cap = budget
            .max_checks
            .map(|m| (m.saturating_sub(touched) * 4).max(1024))
            .unwrap_or(usize::MAX);
        let mut next: HashMap<ClassSet, bool> = HashMap::new();
        'expand: for (group, in_g) in admitted {
            // Classes co-occurring with every member of the group.
            let mut cooc = occurring;
            for c in group.iter() {
                cooc = cooc.intersection(sketch.cooccurring(c));
            }
            for c in cooc.difference(&group).iter() {
                if next.len() >= frontier_cap {
                    break 'expand;
                }
                let mut bigger = group;
                bigger.insert(c);
                // Sketch fast-reject (pairwise passed, but a triple may
                // still prove the classes never share a trace) before the
                // exact co-occurrence check via the adaptive dispatch: a
                // galloping intersection of the classes' trace-id runs on
                // large logs, the early-exit bitmap scan on small ones.
                if !sketch.may_occur(&bigger) {
                    out.stats.pruned_by_sketch += 1;
                    continue;
                }
                if !ctx.occurs(&bigger) {
                    out.stats.pruned_non_occurring += 1;
                    continue;
                }
                let entry = next.entry(bigger).or_insert(false);
                *entry = *entry || in_g;
            }
        }
        // gecco-lint: allow(nondet-iter) — sorted into deterministic order on the next line
        to_check = next.into_iter().collect();
        // Deterministic order keeps runs reproducible.
        to_check.sort_by_key(|(g, _)| *g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_constraints::ConstraintSet;
    use gecco_eventlog::{ClassId, EventLog, LogBuilder};

    fn role_log() -> EventLog {
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb
                    .event_with(cls, |e| {
                        e.str("org:role", role_of(cls));
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
    }

    fn names(log: &EventLog, g: &ClassSet) -> Vec<String> {
        let mut v: Vec<String> = g.iter().map(|c| log.class_name(c).to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn unconstrained_yields_all_co_occurring_groups() {
        let mut b = LogBuilder::new();
        b.trace("t1").event("a").unwrap().event("b").unwrap().done();
        b.trace("t2").event("c").unwrap().done();
        let log = b.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "");
        let out = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        // {a}, {b}, {c}, {a,b} — but not {a,c}, {b,c}, {a,b,c}.
        assert_eq!(out.len(), 4);
        assert!(!out.stats.budget_exhausted);
    }

    #[test]
    fn role_constraint_excludes_mixed_groups() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let out = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        for g in out.groups() {
            let roles: std::collections::HashSet<&str> = g
                .iter()
                .map(|c| match log.class_name(c) {
                    "acc" | "rej" => "manager",
                    _ => "clerk",
                })
                .collect();
            assert_eq!(roles.len(), 1, "mixed-role group {:?}", names(&log, g));
        }
        // The paper's winning group {rcp, ckc, ckt} must be among them.
        let target: ClassSet =
            ["rcp", "ckc", "ckt"].iter().map(|n| log.class_by_name(n).unwrap()).collect();
        assert!(out.groups().contains(&target));
    }

    #[test]
    fn anti_monotonic_pruning_cuts_search() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let anti = compile(&log, "size(g) <= 2;");
        let pruned = exhaustive_candidates(&ctx, &anti, Budget::UNLIMITED);
        // No candidate exceeds the bound and nothing above level 3 was checked.
        assert!(pruned.groups().iter().all(|g| g.len() <= 2));
        assert!(pruned.stats.iterations <= 3);
        // Anti-monotonic pruning touches strictly fewer groups than full
        // enumeration (whose touched set is checks + monotonic shortcuts).
        let unconstrained = compile(&log, "");
        let full = exhaustive_candidates(&ctx, &unconstrained, Budget::UNLIMITED);
        let touched_full = full.stats.checked + full.stats.monotonic_shortcuts;
        let touched_pruned = pruned.stats.checked + pruned.stats.monotonic_shortcuts;
        assert!(touched_pruned < touched_full, "{touched_pruned} !< {touched_full}");
    }

    #[test]
    fn monotonic_shortcut_skips_validation() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "size(g) >= 1;"); // trivially monotonic
        let out = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        assert!(out.stats.monotonic_shortcuts > 0);
        // Every co-occurring group satisfies size >= 1.
        assert_eq!(out.stats.satisfied, out.len());
    }

    #[test]
    fn budget_stops_early_with_partial_results() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "");
        let out = exhaustive_candidates(&ctx, &cs, Budget::max_checks(5));
        assert!(out.stats.budget_exhausted);
        assert!(out.len() <= 5);
        assert!(!out.is_empty(), "partial results are kept");
    }

    #[test]
    fn completeness_on_running_example() {
        // Cross-check against brute force: every subset of C_L up to size 8
        // that co-occurs and satisfies the constraints must be found.
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1; size(g) <= 3;");
        let out = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        let ids: Vec<ClassId> = log.classes().ids().collect();
        let mut expected = Vec::new();
        for mask in 1u32..(1 << ids.len()) {
            let g: ClassSet = ids
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect();
            if log.occurs(&g) && cs.holds(&g, &ctx) {
                expected.push(g);
            }
        }
        let mut found: Vec<ClassSet> = out.groups().to_vec();
        found.sort();
        expected.sort();
        assert_eq!(found, expected);
    }

    #[test]
    fn non_monotonic_mode_expands_violating_groups() {
        // avg-based constraint: singletons may violate while pairs satisfy.
        let mut b = LogBuilder::new();
        b.trace("t")
            .event_with("hi", |e| {
                e.int("v", 100);
            })
            .unwrap()
            .event_with("lo", |e| {
                e.int("v", 0);
            })
            .unwrap()
            .done();
        let log = b.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "avg(\"v\") <= 50;");
        assert_eq!(cs.mode(), CheckingMode::NonMonotonic);
        let out = exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        // {hi} violates (avg 100) but {hi, lo} satisfies (avg 50).
        let hi = log.class_by_name("hi").unwrap();
        let lo = log.class_by_name("lo").unwrap();
        let pair: ClassSet = [hi, lo].into_iter().collect();
        assert!(out.groups().contains(&pair));
        assert!(!out.groups().contains(&ClassSet::singleton(hi)));
        assert!(out.groups().contains(&ClassSet::singleton(lo)));
    }
}
