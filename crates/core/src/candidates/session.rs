//! Session-based segmentation as a candidate source.
//!
//! Event abstraction work on user-interaction and sensor logs (e.g.
//! de Leoni & Dündar, "Event-log abstraction using batch session
//! identification and clustering", arXiv:1903.03993) segments each trace
//! into *sessions* — bursts of low-level events separated by inactivity
//! gaps or delimited by a change of a context attribute — and treats each
//! session as one high-level activity execution. This module transplants
//! that idea into GECCO's candidate stage: the class set of every observed
//! session becomes a candidate group (deduplicated, then admitted only if
//! the user constraints hold), so Step 2 can weigh session-shaped groups
//! against the DFG- or exhaustively-derived ones.
//!
//! The source is deliberately *not* a [`super::CandidateStrategy`]
//! variant: it plugs into the pipeline as a graph node
//! ([`crate::graph::SessionCandidateSourceNode`]), typically unioned with
//! another source via [`crate::graph::UnionCandidatesNode`].

use super::CandidateSet;
use gecco_constraints::CompiledConstraintSet;
use gecco_eventlog::{ClassSet, EvalContext};
use std::collections::HashSet;

/// What ends a session between two consecutive events of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionBoundary {
    /// A new session starts when the `time:timestamp` gap between two
    /// consecutive events exceeds this many milliseconds. Events without a
    /// timestamp never open a boundary (conservative: they extend the
    /// current session).
    Gap {
        /// Maximum intra-session gap in milliseconds.
        max_gap_millis: i64,
    },
    /// A new session starts whenever the value of this event attribute
    /// changes between consecutive events (a present↔missing transition
    /// counts as a change). An attribute unknown to the log yields no
    /// boundaries — each trace is one session.
    AttributeWindow {
        /// The attribute key, e.g. `org:resource`.
        key: String,
    },
}

/// Configuration of [`session_candidates`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// The boundary rule splitting traces into sessions.
    pub boundary: SessionBoundary,
    /// Also offer every occurring class as a singleton candidate (on by
    /// default): sessions rarely cover all classes, and selection needs
    /// enough candidates for an exact cover.
    pub include_singletons: bool,
}

impl SessionConfig {
    /// Gap-based sessions with the given maximum intra-session gap.
    pub fn gap(max_gap_millis: i64) -> SessionConfig {
        SessionConfig {
            boundary: SessionBoundary::Gap { max_gap_millis },
            include_singletons: true,
        }
    }

    /// Attribute-window sessions over the given event attribute.
    pub fn attribute_window(key: &str) -> SessionConfig {
        SessionConfig {
            boundary: SessionBoundary::AttributeWindow { key: key.to_string() },
            include_singletons: true,
        }
    }

    /// Disables the singleton top-up.
    pub fn without_singletons(mut self) -> SessionConfig {
        self.include_singletons = false;
        self
    }
}

/// Computes session-derived candidate groups over the context's log.
///
/// Each trace is split into sessions by `config.boundary`; the class set
/// of every session is collected in first-appearance order, deduplicated,
/// optionally topped up with the occurring singletons, and each distinct
/// group is admitted iff `constraints.holds` — so the output composes with
/// any other [`CandidateSet`] under the same constraint set. The sweep is
/// deterministic: same log, same config, same candidates in the same
/// order.
pub fn session_candidates(
    ctx: &EvalContext<'_>,
    constraints: &CompiledConstraintSet,
    config: &SessionConfig,
) -> CandidateSet {
    let log = ctx.log();
    let ts_key = log.std_keys().timestamp;
    let attr_key = match &config.boundary {
        SessionBoundary::AttributeWindow { key } => log.key(key),
        SessionBoundary::Gap { .. } => None,
    };
    let mut ordered: Vec<ClassSet> = Vec::new();
    let mut seen: HashSet<ClassSet> = HashSet::new();
    for trace in log.traces() {
        let mut current = ClassSet::new();
        let mut prev: Option<&gecco_eventlog::Event> = None;
        for event in trace.events() {
            let boundary = prev.is_some_and(|p| match &config.boundary {
                SessionBoundary::Gap { max_gap_millis } => {
                    match (p.timestamp(ts_key), event.timestamp(ts_key)) {
                        (Some(a), Some(b)) => b - a > *max_gap_millis,
                        _ => false,
                    }
                }
                SessionBoundary::AttributeWindow { .. } => {
                    let before = attr_key.and_then(|k| p.attribute(k));
                    let after = attr_key.and_then(|k| event.attribute(k));
                    before != after
                }
            });
            if boundary && !current.is_empty() {
                if seen.insert(current) {
                    ordered.push(current);
                }
                current = ClassSet::new();
            }
            current.insert(event.class());
            prev = Some(event);
        }
        if !current.is_empty() && seen.insert(current) {
            ordered.push(current);
        }
    }
    if config.include_singletons {
        for class in crate::grouping::occurring_classes(log).iter() {
            let singleton = ClassSet::singleton(class);
            if seen.insert(singleton) {
                ordered.push(singleton);
            }
        }
    }
    let mut out = CandidateSet::new();
    out.stats.iterations = 1;
    for group in ordered {
        out.stats.checked += 1;
        if constraints.holds(&group, ctx) {
            out.stats.satisfied += 1;
            out.insert(group);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_constraints::ConstraintSet;
    use gecco_eventlog::{EventLog, LogBuilder, LogIndex};

    /// Two traces of keyboard/mouse-style events with burst timestamps:
    /// ⟨open edit | save mail⟩ (gap after "edit") and ⟨open edit save⟩.
    fn burst_log() -> EventLog {
        let mut b = LogBuilder::new();
        let mut tb = b.trace("c1");
        for (cls, ts, role) in [
            ("open", 0, "alice"),
            ("edit", 100, "alice"),
            ("save", 10_000, "bob"),
            ("mail", 10_100, "bob"),
        ] {
            tb = tb
                .event_with(cls, |e| {
                    e.str("org:resource", role).timestamp("time:timestamp", ts);
                })
                .unwrap();
        }
        tb.done();
        let mut tb = b.trace("c2");
        for (cls, ts, role) in [("open", 0, "alice"), ("edit", 50, "alice"), ("save", 90, "alice")]
        {
            tb = tb
                .event_with(cls, |e| {
                    e.str("org:resource", role).timestamp("time:timestamp", ts);
                })
                .unwrap();
        }
        tb.done();
        b.build()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    fn candidates(log: &EventLog, dsl: &str, config: &SessionConfig) -> CandidateSet {
        let index = LogIndex::build(log);
        let ctx = EvalContext::new(log, &index);
        let compiled =
            CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap();
        session_candidates(&ctx, &compiled, config)
    }

    #[test]
    fn gap_boundary_splits_bursts() {
        let log = burst_log();
        let out = candidates(&log, "size(g) >= 1;", &SessionConfig::gap(1_000));
        // c1 splits after "edit" (gap 9 900 ms); c2 is one session.
        assert!(out.contains(&set(&log, &["open", "edit"])));
        assert!(out.contains(&set(&log, &["save", "mail"])));
        assert!(out.contains(&set(&log, &["open", "edit", "save"])));
        // Singleton top-up covers every occurring class.
        for c in ["open", "edit", "save", "mail"] {
            assert!(out.contains(&set(&log, &[c])), "missing singleton {c}");
        }
    }

    #[test]
    fn wide_gap_keeps_whole_traces() {
        let log = burst_log();
        let out =
            candidates(&log, "size(g) >= 1;", &SessionConfig::gap(i64::MAX).without_singletons());
        assert_eq!(out.len(), 2, "one session per trace: {:?}", out.groups());
        assert!(out.contains(&set(&log, &["open", "edit", "save", "mail"])));
        assert!(out.contains(&set(&log, &["open", "edit", "save"])));
    }

    #[test]
    fn attribute_window_splits_on_value_change() {
        let log = burst_log();
        let out = candidates(
            &log,
            "size(g) >= 1;",
            &SessionConfig::attribute_window("org:resource").without_singletons(),
        );
        // c1 splits where org:resource flips alice→bob.
        assert!(out.contains(&set(&log, &["open", "edit"])));
        assert!(out.contains(&set(&log, &["save", "mail"])));
        assert!(out.contains(&set(&log, &["open", "edit", "save"])));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn unknown_attribute_means_no_boundaries() {
        let log = burst_log();
        let out = candidates(
            &log,
            "size(g) >= 1;",
            &SessionConfig::attribute_window("no:such").without_singletons(),
        );
        assert_eq!(out.len(), 2, "each trace is one session");
    }

    #[test]
    fn constraints_filter_sessions() {
        let log = burst_log();
        let out = candidates(&log, "size(g) <= 2;", &SessionConfig::gap(1_000));
        assert!(out.contains(&set(&log, &["open", "edit"])));
        assert!(!out.contains(&set(&log, &["open", "edit", "save"])), "violates size bound");
        assert_eq!(out.stats.checked, out.stats.satisfied + 1, "exactly one group rejected");
    }

    #[test]
    fn deterministic_order_and_dedup() {
        let log = burst_log();
        let a = candidates(&log, "size(g) >= 1;", &SessionConfig::gap(1_000));
        let b = candidates(&log, "size(g) >= 1;", &SessionConfig::gap(1_000));
        assert_eq!(a.groups(), b.groups());
        let distinct: HashSet<_> = a.groups().iter().collect();
        assert_eq!(distinct.len(), a.len(), "no duplicates");
    }
}
