//! Algorithm 2: DFG-based candidate computation with beam search.
//!
//! Exploits the process-oriented structure of the log: cohesive groups
//! consist of classes that occur *near* each other, so candidates are grown
//! as paths through the directly-follows graph — extending a path by a
//! predecessor of its first or a successor of its last node — instead of by
//! arbitrary class additions. Each iteration keeps only the `k` paths with
//! the lowest group distance (the beam).

use super::{BeamWidth, Budget, CandidateSet, PreevaluatedChecks};
use crate::distance::DistanceOracle;
use gecco_constraints::{CheckingMode, CompiledConstraintSet};
use gecco_eventlog::{ClassId, ClassSet, Dfg, EvalContext};
use std::collections::HashMap;

/// A path through the DFG: the candidate group is `nodes(p)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Node sequence; `first()`/`last()` are the expansion points.
    pub nodes: Vec<ClassId>,
    /// The set of nodes, i.e. the candidate group.
    pub set: ClassSet,
}

impl Path {
    fn singleton(c: ClassId) -> Path {
        Path { nodes: vec![c], set: ClassSet::singleton(c) }
    }

    fn extended_back(&self, succ: ClassId) -> Path {
        let mut nodes = self.nodes.clone();
        nodes.push(succ);
        let mut set = self.set;
        set.insert(succ);
        Path { nodes, set }
    }

    fn extended_front(&self, pred: ClassId) -> Path {
        let mut nodes = Vec::with_capacity(self.nodes.len() + 1);
        nodes.push(pred);
        nodes.extend_from_slice(&self.nodes);
        let mut set = self.set;
        set.insert(pred);
        Path { nodes, set }
    }
}

/// Observation hook for the per-iteration state (used to reproduce the
/// paper's Figure 5).
pub trait IterationObserver {
    /// Called once per iteration with the paths examined inside the beam
    /// and whether each one's group satisfied the constraints.
    fn iteration(&mut self, iteration: usize, examined: &[(Path, bool)]);
}

/// A no-op observer.
pub struct NoObserver;

impl IterationObserver for NoObserver {
    fn iteration(&mut self, _: usize, _: &[(Path, bool)]) {}
}

/// Runs Algorithm 2 and returns the candidate set. Constraint checks and
/// distance scoring go through `ctx`.
pub fn dfg_candidates<'a>(
    ctx: &'a EvalContext<'a>,
    constraints: &CompiledConstraintSet,
    beam: Option<BeamWidth>,
    budget: Budget,
    observer: &mut dyn IterationObserver,
) -> CandidateSet {
    let log = ctx.log();
    let mode = constraints.mode();
    let dfg = Dfg::from_index(log, ctx.index());
    let oracle = DistanceOracle::new(ctx, constraints.segmenter());
    let mut out = CandidateSet::new();
    let occurring = crate::grouping::occurring_classes(log);
    let k = beam.map(|b| b.resolve(occurring.len())).unwrap_or(usize::MAX);

    let mut to_check: Vec<(Path, bool)> =
        occurring.iter().map(|c| (Path::singleton(c), false)).collect();

    while !to_check.is_empty() {
        out.stats.iterations += 1;
        // The sort below evaluates dist once per frontier path; score the
        // uncached groups over all cores first (no-op when parallelism is
        // off — see `DistanceOracle::prime`).
        oracle.prime(to_check.iter().map(|(p, _)| p.set));
        // Sort by group distance, lowest first (most cohesive paths first).
        to_check.sort_by(|a, b| {
            oracle
                .distance(&a.0.set)
                .total_cmp(&oracle.distance(&b.0.set))
                .then_with(|| a.0.nodes.cmp(&b.0.nodes))
        });
        // Pre-evaluate the beam's constraint checks in parallel; the loop
        // replays its bookkeeping against the verdicts (see exhaustive.rs).
        let pre = PreevaluatedChecks::evaluate(
            ctx,
            constraints,
            to_check.iter().take(k).map(|(p, f)| (p.set, *f)),
            budget,
            out.stats.checked + out.stats.monotonic_shortcuts,
        );
        let mut to_expand: Vec<Path> = Vec::new();
        let mut examined: Vec<(Path, bool)> = Vec::new();
        for (path, has_satisfied_subset) in to_check.iter().take(k) {
            if budget.exhausted(out.stats.checked + out.stats.monotonic_shortcuts) {
                out.stats.budget_exhausted = true;
                observer.iteration(out.stats.iterations, &examined);
                return out;
            }
            let group = path.set;
            let holds = if mode == CheckingMode::Monotonic && *has_satisfied_subset {
                out.stats.monotonic_shortcuts += 1;
                true
            } else {
                out.stats.checked += 1;
                match &pre {
                    Some(pre) => pre.holds(&group, ctx, constraints),
                    None => constraints.holds(&group, ctx),
                }
            };
            examined.push((path.clone(), holds));
            if holds {
                out.stats.satisfied += 1;
                out.insert(group);
            }
            let expandable = match mode {
                CheckingMode::AntiMonotonic => {
                    holds
                        || match &pre {
                            Some(pre) => pre.holds_anti_monotonic(&group, ctx, constraints),
                            None => constraints.holds_anti_monotonic(&group, ctx),
                        }
                }
                CheckingMode::Monotonic | CheckingMode::NonMonotonic => true,
            };
            if expandable {
                to_expand.push(path.clone());
            }
        }
        observer.iteration(out.stats.iterations, &examined);
        // Path expansion: successor of the last or predecessor of the first
        // node. Deduplicate by (set, endpoints) — further growth depends
        // only on those. Under a check budget, cap the frontier: paths
        // beyond ~4× the remaining budget can never be checked, and sorting
        // them (which evaluates dist per path) would dominate the runtime.
        let touched = out.stats.checked + out.stats.monotonic_shortcuts;
        let frontier_cap = budget
            .max_checks
            .map(|m| (m.saturating_sub(touched) * 4).max(1024))
            .unwrap_or(usize::MAX);
        let mut next: HashMap<(ClassSet, ClassId, ClassId), (Path, bool)> = HashMap::new();
        'expand: for path in to_expand {
            let in_g = out.contains(&path.set);
            let last = *path.nodes.last().expect("paths are non-empty");
            let first = path.nodes[0];
            for succ in dfg.successors(last) {
                if next.len() >= frontier_cap {
                    break 'expand;
                }
                if !path.set.contains(succ) {
                    let p = path.extended_back(succ);
                    consider(ctx, &mut out, &mut next, p, in_g);
                }
            }
            for pred in dfg.predecessors(first) {
                if next.len() >= frontier_cap {
                    break 'expand;
                }
                if !path.set.contains(pred) {
                    let p = path.extended_front(pred);
                    consider(ctx, &mut out, &mut next, p, in_g);
                }
            }
        }
        // Deterministic order keeps runs reproducible: hash order must not
        // pick which equal-scoring path survives downstream tie-breaks.
        // gecco-lint: allow(nondet-iter) — sorted by candidate key on the next line
        let mut frontier: Vec<_> = next.into_iter().collect();
        frontier.sort_unstable_by_key(|(key, _)| *key);
        to_check = frontier.into_iter().map(|(_, path)| path).collect();
    }
    out
}

fn consider(
    ctx: &EvalContext<'_>,
    out: &mut CandidateSet,
    next: &mut HashMap<(ClassSet, ClassId, ClassId), (Path, bool)>,
    path: Path,
    parent_in_g: bool,
) {
    // Adaptive `occurs(g, L)`: a galloping intersection of the classes'
    // trace-id runs on large logs, the early-exit bitmap scan on small ones.
    if !ctx.occurs(&path.set) {
        out.stats.pruned_non_occurring += 1;
        return;
    }
    let key = (path.set, path.nodes[0], *path.nodes.last().expect("non-empty"));
    let entry = next.entry(key).or_insert_with(|| (path, parent_in_g));
    entry.1 = entry.1 || parent_in_g;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_constraints::ConstraintSet;
    use gecco_eventlog::{EventLog, LogBuilder};

    fn role_log() -> EventLog {
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for cls in *t {
                tb = tb
                    .event_with(cls, |e| {
                        e.str("org:role", role_of(cls));
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn compile(log: &EventLog, dsl: &str) -> CompiledConstraintSet {
        CompiledConstraintSet::compile(&ConstraintSet::parse(dsl).unwrap(), log).unwrap()
    }

    fn set(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn finds_connected_cohesive_candidates() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let out = dfg_candidates(&ctx, &cs, None, Budget::UNLIMITED, &mut NoObserver);
        // Figure 5's iteration-2 group {prio, inf, arv} must be found, as
        // must the initial clerk block {rcp, ckc} / {rcp, ckt}.
        assert!(out.groups().contains(&set(&log, &["prio", "inf", "arv"])));
        assert!(out.groups().contains(&set(&log, &["rcp", "ckc"])));
        assert!(out.groups().contains(&set(&log, &["rcp", "ckt"])));
        // All candidates satisfy the constraint.
        for g in out.groups() {
            assert!(cs.holds(g, &ctx));
        }
    }

    #[test]
    fn avoids_distant_unconnected_pairs() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let out = dfg_candidates(&ctx, &cs, None, Budget::UNLIMITED, &mut NoObserver);
        // {ckt, inf} are both clerk steps but never adjacent in the DFG; the
        // path-based search cannot produce that exact pair as a group.
        assert!(!out.groups().contains(&set(&log, &["ckt", "inf"])));
    }

    #[test]
    fn violating_paths_are_not_expanded_in_anti_monotonic_mode() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        // acc/inf mix roles → the pair violates; no supergroup of it may appear.
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        assert_eq!(cs.mode(), CheckingMode::AntiMonotonic);
        let out = dfg_candidates(&ctx, &cs, None, Budget::UNLIMITED, &mut NoObserver);
        let bad = set(&log, &["acc", "inf"]);
        for g in out.groups() {
            assert!(!bad.is_subset(g), "found supergroup of a violating pair: {g:?}");
        }
    }

    #[test]
    fn beam_restricts_and_is_subset_of_unbounded() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let unbounded = dfg_candidates(&ctx, &cs, None, Budget::UNLIMITED, &mut NoObserver);
        let narrow = dfg_candidates(
            &ctx,
            &cs,
            Some(BeamWidth::Fixed(3)),
            Budget::UNLIMITED,
            &mut NoObserver,
        );
        assert!(narrow.len() <= unbounded.len());
        for g in narrow.groups() {
            assert!(unbounded.groups().contains(g), "beam invented a candidate");
        }
        // Even a width-1 beam keeps producing *valid* candidates.
        let tiny = dfg_candidates(
            &ctx,
            &cs,
            Some(BeamWidth::Fixed(1)),
            Budget::UNLIMITED,
            &mut NoObserver,
        );
        for g in tiny.groups() {
            assert!(cs.holds(g, &ctx));
        }
    }

    #[test]
    fn observer_sees_iterations() {
        struct Collect {
            iterations: Vec<(usize, usize)>,
        }
        impl IterationObserver for Collect {
            fn iteration(&mut self, it: usize, examined: &[(Path, bool)]) {
                self.iterations.push((it, examined.len()));
            }
        }
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let mut obs = Collect { iterations: vec![] };
        dfg_candidates(&ctx, &cs, None, Budget::UNLIMITED, &mut obs);
        assert!(!obs.iterations.is_empty());
        // Iteration 1 examines all 8 singleton paths.
        assert_eq!(obs.iterations[0], (1, 8));
    }

    #[test]
    fn budget_degrades_gracefully() {
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "");
        let out = dfg_candidates(&ctx, &cs, None, Budget::max_checks(4), &mut NoObserver);
        assert!(out.stats.budget_exhausted);
        assert!(out.len() <= 4);
    }

    #[test]
    fn subset_of_exhaustive() {
        // DFG candidates ⊆ exhaustive candidates (paths are a restriction).
        let log = role_log();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let cs = compile(&log, "distinct(instance, \"org:role\") <= 1;");
        let exh =
            crate::candidates::exhaustive::exhaustive_candidates(&ctx, &cs, Budget::UNLIMITED);
        let dfg = dfg_candidates(&ctx, &cs, None, Budget::UNLIMITED, &mut NoObserver);
        for g in dfg.groups() {
            assert!(exh.groups().contains(g), "{g:?} not in exhaustive set");
        }
    }
}
