//! Candidate-group computation (Step 1 of GECCO, §V-B).

pub mod dfg;
pub mod exclusive;
pub mod exhaustive;
pub mod session;

use gecco_constraints::{CheckingMode, CompiledConstraintSet};
use gecco_eventlog::{ClassSet, EvalContext};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Which Step-1 instantiation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// Algorithm 1: complete level-wise enumeration (configuration `Exh`).
    Exhaustive,
    /// Algorithm 2 with unlimited beam width (configuration `DFG∞`).
    DfgUnbounded,
    /// Algorithm 2 with a beam (configuration `DFGk`).
    DfgBeam {
        /// The beam width `k`.
        k: BeamWidth,
    },
}

/// Beam width for the DFG-based search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeamWidth {
    /// A fixed number of paths per iteration.
    Fixed(usize),
    /// `factor · |C_L|` paths, the paper's adaptive choice (`k = 5·|C_L|`).
    PerClass(usize),
}

impl BeamWidth {
    /// Resolves the width for a log with `num_classes` event classes.
    pub fn resolve(self, num_classes: usize) -> usize {
        match self {
            BeamWidth::Fixed(k) => k.max(1),
            BeamWidth::PerClass(f) => (f * num_classes).max(1),
        }
    }
}

/// Search budget for candidate computation, mirroring the paper's 5-hour
/// timeout after which GECCO "continues with the candidates identified so
/// far".
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Maximum number of constraint-checked groups.
    pub max_checks: Option<usize>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// No limits.
    pub const UNLIMITED: Budget = Budget { max_checks: None, deadline: None };

    /// A budget bounded by the number of checked candidates.
    pub fn max_checks(n: usize) -> Budget {
        Budget { max_checks: Some(n), deadline: None }
    }

    /// A wall-clock budget from now.
    pub fn timeout(duration: std::time::Duration) -> Budget {
        // gecco-lint: allow(ambient-nondet) — a wall-clock budget is wall-clock by definition;
        // the no-budget path is bit-identical and is what the paper pins assert against
        Budget { max_checks: None, deadline: Some(Instant::now() + duration) }
    }

    /// Whether the budget is exhausted after `checks` candidate checks.
    pub fn exhausted(&self, checks: usize) -> bool {
        if self.max_checks.is_some_and(|m| checks >= m) {
            return true;
        }
        // Only consult the clock periodically; `Instant::now` is not free.
        if checks.is_multiple_of(256) {
            if let Some(d) = self.deadline {
                // gecco-lint: allow(ambient-nondet) — deadline check; results under a timeout
                // are explicitly time-dependent (that is the contract of Budget::timeout)
                return Instant::now() >= d;
            }
        }
        false
    }
}

/// Statistics about one candidate-computation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandidateStats {
    /// Groups whose constraints were actually evaluated.
    pub checked: usize,
    /// Groups admitted to the candidate set.
    pub satisfied: usize,
    /// Groups admitted via the monotonic subset shortcut without a check.
    pub monotonic_shortcuts: usize,
    /// Expansion products rejected because they do not co-occur in any trace.
    pub pruned_non_occurring: usize,
    /// Expansion products rejected by the co-occurrence sketches before
    /// the exact occurrence test ran (a subset of the non-occurring:
    /// sketch rejection is one-sided, so these never include a group that
    /// actually co-occurs).
    pub pruned_by_sketch: usize,
    /// Level-wise / beam iterations executed.
    pub iterations: usize,
    /// Whether the budget ran out before completion.
    pub budget_exhausted: bool,
    /// Additional candidates contributed by exclusive-alternative merging
    /// (Algorithm 3).
    pub exclusive_candidates: usize,
}

/// Constraint verdicts pre-evaluated in parallel for one enumeration level.
///
/// Which entries of a level the serial loops of Algorithms 1/2 actually
/// check is decided by budget and shortcut bookkeeping alone — never by a
/// check's outcome — so the checks can be evaluated up front, fanned out
/// over all cores, and the loop replayed against the stored verdicts with
/// bit-identical results and statistics.
#[derive(Debug, Default)]
pub(crate) struct PreevaluatedChecks {
    /// `group -> holds(group)` for every group the replay will check.
    holds: HashMap<ClassSet, bool>,
    /// `group -> holds_anti_monotonic(group)` for non-holding groups in
    /// anti-monotonic mode (the expansion gate's second question).
    anti: HashMap<ClassSet, bool>,
}

impl PreevaluatedChecks {
    /// Evaluates, in parallel, every constraint check the serial loop would
    /// perform on `entries` (each `(group, has_satisfied_subset)`), given
    /// `touched` budget units already consumed. Each chunk worker rebuilds
    /// a private [`EvalContext`] (its own scratch buffers) from the shared
    /// parts of `ctx`. Returns `None` when parallelism is disabled —
    /// callers then check inline as before.
    pub(crate) fn evaluate(
        ctx: &EvalContext<'_>,
        constraints: &CompiledConstraintSet,
        entries: impl Iterator<Item = (ClassSet, bool)>,
        budget: Budget,
        mut touched: usize,
    ) -> Option<Self> {
        if !crate::parallel::parallel_enabled() {
            return None;
        }
        let mode = constraints.mode();
        // Replay the loop's bookkeeping without performing any check, to
        // learn which groups will be checked before the budget runs out.
        let mut need: Vec<ClassSet> = Vec::new();
        let mut seen: HashSet<ClassSet> = HashSet::new();
        for (group, has_satisfied_subset) in entries {
            if budget.exhausted(touched) {
                break;
            }
            touched += 1;
            if mode == CheckingMode::Monotonic && has_satisfied_subset {
                continue; // shortcut: admitted without a check
            }
            if seen.insert(group) {
                need.push(group);
            }
        }
        let parts = ctx.parts();
        let verdicts = crate::parallel::par_map_scoped(
            &need,
            2,
            || parts.context(),
            |worker_ctx, g| constraints.holds(g, worker_ctx),
        );
        let anti_need: Vec<ClassSet> = if mode == CheckingMode::AntiMonotonic {
            need.iter().zip(&verdicts).filter(|(_, &holds)| !holds).map(|(g, _)| *g).collect()
        } else {
            Vec::new()
        };
        let anti_verdicts = crate::parallel::par_map_scoped(
            &anti_need,
            2,
            || parts.context(),
            |worker_ctx, g| constraints.holds_anti_monotonic(g, worker_ctx),
        );
        Some(PreevaluatedChecks {
            holds: need.into_iter().zip(verdicts).collect(),
            anti: anti_need.into_iter().zip(anti_verdicts).collect(),
        })
    }

    /// The stored `holds` verdict, falling back to an inline check.
    pub(crate) fn holds(
        &self,
        group: &ClassSet,
        ctx: &EvalContext<'_>,
        constraints: &CompiledConstraintSet,
    ) -> bool {
        self.holds.get(group).copied().unwrap_or_else(|| constraints.holds(group, ctx))
    }

    /// The stored anti-monotonic verdict, falling back to an inline check.
    pub(crate) fn holds_anti_monotonic(
        &self,
        group: &ClassSet,
        ctx: &EvalContext<'_>,
        constraints: &CompiledConstraintSet,
    ) -> bool {
        self.anti
            .get(group)
            .copied()
            .unwrap_or_else(|| constraints.holds_anti_monotonic(group, ctx))
    }
}

/// The output of Step 1: a deduplicated set of constraint-satisfying groups.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    groups: Vec<ClassSet>,
    index: HashSet<ClassSet>,
    /// Run statistics.
    pub stats: CandidateStats,
}

impl CandidateSet {
    /// An empty candidate set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a group; returns whether it was new.
    pub fn insert(&mut self, group: ClassSet) -> bool {
        if self.index.insert(group) {
            self.groups.push(group);
            true
        } else {
            false
        }
    }

    /// Whether `group` is already a candidate.
    pub fn contains(&self, group: &ClassSet) -> bool {
        self.index.contains(group)
    }

    /// The candidate groups in insertion order.
    pub fn groups(&self) -> &[ClassSet] {
        &self.groups
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no candidate was found.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::ClassId;

    #[test]
    fn beam_width_resolution() {
        assert_eq!(BeamWidth::Fixed(10).resolve(100), 10);
        assert_eq!(BeamWidth::Fixed(0).resolve(100), 1);
        assert_eq!(BeamWidth::PerClass(5).resolve(8), 40);
        assert_eq!(BeamWidth::PerClass(0).resolve(8), 1);
    }

    #[test]
    fn budget_limits_checks() {
        let b = Budget::max_checks(10);
        assert!(!b.exhausted(9));
        assert!(b.exhausted(10));
        assert!(!Budget::UNLIMITED.exhausted(usize::MAX - 1));
    }

    #[test]
    fn budget_deadline() {
        let b = Budget::timeout(std::time::Duration::from_secs(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(b.exhausted(0), "deadline checks happen on multiples of 256 (incl. 0)");
    }

    #[test]
    fn candidate_set_dedupes() {
        let mut cs = CandidateSet::new();
        let g = ClassSet::singleton(ClassId(1));
        assert!(cs.insert(g));
        assert!(!cs.insert(g));
        assert!(cs.contains(&g));
        assert_eq!(cs.len(), 1);
    }
}
