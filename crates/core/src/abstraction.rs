//! Step 3: creating the abstracted event log (§V-D).
//!
//! Every trace is rewritten in terms of activity instances: for each group
//! of the selected grouping, its instances in the trace are identified and
//! replaced by high-level events. Two strategies are supported:
//!
//! * [`AbstractionStrategy::Completion`] keeps one event per activity
//!   instance, positioned at the instance's *last* event (the common
//!   completion-only abstraction);
//! * [`AbstractionStrategy::StartComplete`] keeps two events — at the first
//!   and last event of the instance — so interleaved activities remain
//!   visible; single-event instances stay single events (cf. the paper's
//!   `σ5^{s+c}` example).

use crate::grouping::Grouping;
use gecco_eventlog::{
    AttributeValue, ClassId, EvalContext, Event, EventLog, IndexSplicer, LogBuilder, LogIndex,
    Segmenter, Symbol,
};

/// Trace-rewriting strategy for Step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AbstractionStrategy {
    /// One event per activity instance, at its completion position.
    #[default]
    Completion,
    /// Start and completion events per multi-event instance.
    StartComplete,
}

/// Derives human-readable activity names for the groups of `grouping`.
///
/// Singleton groups keep their class name. Multi-class groups are named
/// after a shared event-attribute value when `label_attribute` names one
/// that is constant across the group's events (e.g. the executing role or
/// originating system), numbered per value (`clerk1`, `clerk2`, …);
/// otherwise they become `Activity 1`, `Activity 2`, ….
pub fn activity_names(
    log: &EventLog,
    grouping: &Grouping,
    label_attribute: Option<&str>,
) -> Vec<String> {
    let key = label_attribute.and_then(|a| log.key(a));
    let mut names = Vec::with_capacity(grouping.len());
    let mut counters: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for group in grouping.iter() {
        if group.len() == 1 {
            let c = group.first().expect("non-empty group");
            names.push(log.class_name(c).to_string());
            continue;
        }
        // A shared attribute value? Check class-level metadata first, then
        // scan events.
        let shared = key.and_then(|k| shared_value(log, group, k));
        let prefix = shared.unwrap_or_else(|| "Activity".to_string());
        let n = counters.entry(prefix.clone()).or_insert(0);
        *n += 1;
        names.push(format!("{prefix}{}", n));
    }
    names
}

fn shared_value(
    log: &EventLog,
    group: &gecco_eventlog::ClassSet,
    key: gecco_eventlog::Symbol,
) -> Option<String> {
    let mut value: Option<gecco_eventlog::Symbol> = None;
    // Class-level attributes.
    let mut all_class_level = true;
    for c in group.iter() {
        match log.classes().info(c).attribute(key).and_then(|v| v.as_symbol()) {
            Some(s) => match value {
                Some(v) if v != s => return None,
                _ => value = Some(s),
            },
            None => {
                all_class_level = false;
                break;
            }
        }
    }
    if all_class_level {
        return value.map(|s| log.resolve(s).to_string());
    }
    // Event-level scan.
    value = None;
    for trace in log.traces() {
        for event in trace.events() {
            if !group.contains(event.class()) {
                continue;
            }
            match event.attribute(key).and_then(|v| v.as_symbol()) {
                Some(s) => match value {
                    Some(v) if v != s => return None,
                    _ => value = Some(s),
                },
                None => return None,
            }
        }
    }
    value.map(|s| log.resolve(s).to_string())
}

/// Abstracts the context's log under `grouping` (Step 3), yielding the
/// high-level log `L'` **together with its [`LogIndex`]**. `names` provides
/// one activity name per group (see [`activity_names`]). Instance
/// identification goes through the context's index, so each trace only pays
/// for the groups it actually contains.
///
/// The returned index is maintained *incrementally* while the traces are
/// rewritten (see [`IndexSplicer`]): each replaced instance span collapses
/// into a single posting appended to its abstracted class's run, so no
/// second pass over `L'` is needed. It is bit-identical to
/// `LogIndex::build(&L')` — the full rebuild stays available as the oracle
/// (asserted by `tests/incremental_index_equivalence.rs`) — and seeds the
/// next evaluation round in iterative use (see
/// [`crate::pipeline::run_multipass`]).
pub fn abstract_log(
    ctx: &EvalContext<'_>,
    grouping: &Grouping,
    names: &[String],
    strategy: AbstractionStrategy,
    segmenter: Segmenter,
) -> (EventLog, LogIndex) {
    let log = ctx.log();
    assert_eq!(names.len(), grouping.len(), "one name per group required");
    let ts_key = log.std_keys().timestamp;
    let mut builder = LogBuilder::new();
    builder.log_attr_str("concept:name", "abstracted");
    let mut splicer = IndexSplicer::new();
    // Pre-render the lifecycle class names and pre-intern the attribute
    // symbols once; the emit loop below runs once per high-level event and
    // must neither allocate strings nor hash attribute keys.
    let (start_names, complete_names): (Vec<String>, Vec<String>) = match strategy {
        AbstractionStrategy::Completion => (Vec::new(), Vec::new()),
        AbstractionStrategy::StartComplete => (
            names.iter().map(|n| format!("{n}+s")).collect(),
            names.iter().map(|n| format!("{n}+c")).collect(),
        ),
    };
    let new_ts_sym = builder.intern("time:timestamp");
    let lc_sym = builder.intern("lifecycle:transition");
    let size_sym = builder.intern("gecco:instance_size");
    let lc_values: [Symbol; 2] = [builder.intern("start"), builder.intern("complete")];
    // Class-id cache per (group, lifecycle kind): the first emit of a name
    // registers the class (keeping first-appearance id order, exactly what
    // a rebuild would see); later emits skip the interner entirely.
    let mut class_ids: Vec<[Option<ClassId>; 3]> = vec![[None; 3]; names.len()];
    for (ti, trace) in log.traces().iter().enumerate() {
        let case_id = trace
            .attribute(log.std_keys().concept_name)
            .and_then(|v| v.as_symbol())
            .map(|s| log.resolve(s).to_string())
            .unwrap_or_else(|| format!("case-{ti}"));
        // Collect activity instances across all groups: (position, kind).
        struct Emit {
            position: u32,
            name_idx: usize,
            lifecycle: Option<&'static str>,
            timestamp: Option<i64>,
            size: usize,
        }
        let mut emits: Vec<Emit> = Vec::new();
        for (gi, group) in grouping.iter().enumerate() {
            for inst in ctx.instances_in(ti, group, segmenter) {
                let first = inst.first();
                let last = inst.last();
                let ts_of = |p: u32| trace.events()[p as usize].timestamp(ts_key);
                match strategy {
                    AbstractionStrategy::Completion => emits.push(Emit {
                        position: last,
                        name_idx: gi,
                        lifecycle: None,
                        timestamp: ts_of(last),
                        size: inst.len(),
                    }),
                    AbstractionStrategy::StartComplete => {
                        if inst.len() == 1 {
                            emits.push(Emit {
                                position: last,
                                name_idx: gi,
                                lifecycle: None,
                                timestamp: ts_of(last),
                                size: 1,
                            });
                        } else {
                            emits.push(Emit {
                                position: first,
                                name_idx: gi,
                                lifecycle: Some("start"),
                                timestamp: ts_of(first),
                                size: inst.len(),
                            });
                            emits.push(Emit {
                                position: last,
                                name_idx: gi,
                                lifecycle: Some("complete"),
                                timestamp: ts_of(last),
                                size: inst.len(),
                            });
                        }
                    }
                }
            }
        }
        emits.sort_by_key(|e| e.position);
        let mut tb = builder.trace(&case_id);
        splicer.begin_trace();
        for (new_pos, e) in emits.into_iter().enumerate() {
            let kind = match e.lifecycle {
                None => 0,
                Some("start") => 1,
                Some(_) => 2,
            };
            let class_id = match class_ids[e.name_idx][kind] {
                Some(id) => id,
                None => {
                    let class_name: &str = match kind {
                        0 => &names[e.name_idx],
                        1 => &start_names[e.name_idx],
                        _ => &complete_names[e.name_idx],
                    };
                    let id = tb.class(class_name).expect("abstracted logs have few classes");
                    class_ids[e.name_idx][kind] = Some(id);
                    id
                }
            };
            // gecco-lint: allow(lossy-cast) — within-trace position; positions are u32 by
            // design throughout the index, and abstraction only ever shrinks traces
            splicer.push(class_id, new_pos as u32);
            let mut attrs: Vec<(Symbol, AttributeValue)> = Vec::with_capacity(3);
            if let Some(ts) = e.timestamp {
                attrs.push((new_ts_sym, AttributeValue::Timestamp(ts)));
            }
            if e.lifecycle.is_some() {
                attrs.push((lc_sym, AttributeValue::Str(lc_values[kind - 1])));
            }
            attrs.push((size_sym, AttributeValue::Int(e.size as i64)));
            tb = tb.push_event(Event::new(class_id, attrs));
        }
        tb.done();
    }
    // The splicer tracked each rewritten trace's class bitmap alongside the
    // postings, so the new log's metadata needs no rescan either.
    let (index, trace_class_sets) = splicer.finish_parts();
    (builder.build_with_trace_class_sets(trace_class_sets), index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecco_eventlog::{ClassSet, LogBuilder};

    fn running_example_with_roles() -> EventLog {
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        let mut b = LogBuilder::new();
        let traces: &[&[&str]] = &[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ];
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("σ{}", i + 1));
            for (j, cls) in t.iter().enumerate() {
                tb = tb
                    .event_with(cls, |e| {
                        e.str("org:role", role_of(cls)).timestamp(
                            "time:timestamp",
                            (i as i64) * 1_000_000 + (j as i64) * 60_000,
                        );
                    })
                    .unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn paper_grouping(log: &EventLog) -> Grouping {
        let set = |names: &[&str]| -> ClassSet {
            names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
        };
        Grouping::new(vec![
            set(&["rcp", "ckc", "ckt"]),
            set(&["acc"]),
            set(&["rej"]),
            set(&["prio", "inf", "arv"]),
        ])
    }

    #[test]
    fn completion_strategy_rewrites_sigma1() {
        let log = running_example_with_roles();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let grouping = paper_grouping(&log);
        let names = activity_names(&log, &grouping, Some("org:role"));
        let (abstracted, _) = abstract_log(
            &ctx,
            &grouping,
            &names,
            AbstractionStrategy::Completion,
            Segmenter::RepeatSplit,
        );
        // σ1 = ⟨rcp ckc acc prio inf arv⟩ → ⟨clerk1, acc, clerk2⟩.
        assert_eq!(abstracted.format_trace(&abstracted.traces()[0]), "⟨clerk1, acc, clerk2⟩");
        // σ4 (restart) → ⟨clerk1, rej, clerk1, acc, clerk2⟩.
        assert_eq!(
            abstracted.format_trace(&abstracted.traces()[3]),
            "⟨clerk1, rej, clerk1, acc, clerk2⟩"
        );
        assert_eq!(abstracted.num_classes(), 4);
    }

    #[test]
    fn activity_names_use_shared_role() {
        let log = running_example_with_roles();
        let grouping = paper_grouping(&log);
        // Groups are ordered by smallest class id: {rcp,ckc,ckt}, {acc},
        // {prio,inf,arv}, {rej}.
        let names = activity_names(&log, &grouping, Some("org:role"));
        assert_eq!(names, vec!["clerk1", "acc", "clerk2", "rej"]);
        // Without a labeling attribute: generic names.
        let generic = activity_names(&log, &grouping, None);
        assert_eq!(generic, vec!["Activity1", "acc", "Activity2", "rej"]);
    }

    #[test]
    fn start_complete_reveals_interleaving() {
        // σ5 = ⟨rcp, ckc, prio, acc, inf, arv⟩: clrk2 starts before acc and
        // completes after (the paper's interleaving example).
        let mut b = LogBuilder::new();
        let role_of = |c: &str| match c {
            "acc" | "rej" => "manager",
            _ => "clerk",
        };
        for cls in ["rcp", "ckc", "prio", "acc", "inf", "arv"] {
            // one trace; build below
            let _ = cls;
        }
        let mut tb = b.trace("σ5");
        for cls in ["rcp", "ckc", "prio", "acc", "inf", "arv"] {
            tb = tb
                .event_with(cls, |e| {
                    e.str("org:role", role_of(cls));
                })
                .unwrap();
        }
        tb.done();
        // Add a ckt/rej trace so all 8 classes exist for the grouping.
        let mut tb = b.trace("σx");
        for cls in ["rcp", "ckt", "rej"] {
            tb = tb
                .event_with(cls, |e| {
                    e.str("org:role", role_of(cls));
                })
                .unwrap();
        }
        tb.done();
        let log = b.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let grouping = paper_grouping(&log);
        let names = activity_names(&log, &grouping, Some("org:role"));
        let (abstracted, _) = abstract_log(
            &ctx,
            &grouping,
            &names,
            AbstractionStrategy::StartComplete,
            Segmenter::RepeatSplit,
        );
        assert_eq!(
            abstracted.format_trace(&abstracted.traces()[0]),
            "⟨clerk1+s, clerk1+c, clerk2+s, acc, clerk2+c⟩",
            "paper: σ5^(s+c) = ⟨clrk1s, clrk1c, clrk2s, acc, clrk2c⟩"
        );
    }

    #[test]
    fn completion_hides_interleaving() {
        let mut b = LogBuilder::new();
        let mut tb = b.trace("σ5");
        for cls in ["a", "p", "m", "q"] {
            tb = tb.event(cls).unwrap();
        }
        tb.done();
        let log = b.build();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let set = |names: &[&str]| -> ClassSet {
            names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
        };
        let grouping = Grouping::new(vec![set(&["a"]), set(&["p", "q"]), set(&["m"])]);
        let names = vec!["a".into(), "pq".into(), "m".into()];
        let (abstracted, _) = abstract_log(
            &ctx,
            &grouping,
            &names,
            AbstractionStrategy::Completion,
            Segmenter::RepeatSplit,
        );
        assert_eq!(abstracted.format_trace(&abstracted.traces()[0]), "⟨a, m, pq⟩");
    }

    #[test]
    fn timestamps_carry_over() {
        let log = running_example_with_roles();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let grouping = paper_grouping(&log);
        let names = activity_names(&log, &grouping, Some("org:role"));
        let (abstracted, _) = abstract_log(
            &ctx,
            &grouping,
            &names,
            AbstractionStrategy::Completion,
            Segmenter::RepeatSplit,
        );
        let first = &abstracted.traces()[0].events()[0];
        // clerk1 of σ1 completes at ckc (position 1) → ts 60_000.
        assert_eq!(first.timestamp(abstracted.std_keys().timestamp), Some(60_000));
        let size_key = abstracted.key("gecco:instance_size").unwrap();
        assert_eq!(first.attribute(size_key), Some(&gecco_eventlog::AttributeValue::Int(2)));
    }

    #[test]
    #[should_panic(expected = "one name per group")]
    fn name_count_must_match() {
        let log = running_example_with_roles();
        let index = gecco_eventlog::LogIndex::build(&log);
        let ctx = gecco_eventlog::EvalContext::new(&log, &index);
        let grouping = paper_grouping(&log);
        abstract_log(&ctx, &grouping, &[], AbstractionStrategy::Completion, Segmenter::RepeatSplit);
    }
}
