//! The GECCO approach (§V): candidate-group computation, optimal selection
//! and log abstraction.
//!
//! The pipeline mirrors Figure 4 of the paper:
//!
//! 1. **Candidate computation** — either [`candidates::exhaustive`]
//!    (Algorithm 1, complete but exponential) or [`candidates::dfg`]
//!    (Algorithm 2, DFG-guided beam search), both exploiting constraint
//!    monotonicity and group co-occurrence pruning, followed by
//!    [`candidates::exclusive`] (Algorithm 3) which merges behavioral
//!    alternatives with identical DFG pre-/postsets.
//! 2. **Optimal grouping** — [`selection`] formulates the exact-cover MIP
//!    of §V-C over the bipartite candidate/class graph and solves it with
//!    the engines of [`gecco_solver`].
//! 3. **Abstraction** — [`abstraction`] rewrites every trace, replacing
//!    events by high-level activity instances (completion-only or
//!    start+complete strategies, §V-D).
//!
//! [`pipeline::Gecco`] ties the steps together behind a builder API. Since
//! the pipeline-as-graph refactor the builder's entry points are thin
//! wrappers assembling default graphs over the [`graph`] module's DAG
//! executor — custom topologies (extra candidate sources, fan-outs,
//! diagnostics sinks) plug in as [`graph::GraphNode`]s.

pub mod abstraction;
pub mod candidates;
pub mod distance;
pub mod graph;
pub mod grouping;
pub mod parallel;
pub mod pipeline;
pub mod selection;

pub use abstraction::AbstractionStrategy;
pub use candidates::session::{SessionBoundary, SessionConfig};
pub use candidates::{BeamWidth, Budget, CandidateSet, CandidateStats, CandidateStrategy};
pub use distance::{group_distance, group_distance_scan, grouping_distance, DistanceOracle};
pub use gecco_solver::MasterEngine;
pub use grouping::Grouping;
pub use parallel::{parallel_enabled, set_parallel};
pub use pipeline::{
    run_fanout, run_multipass, run_multipass_linear, AbstractionResult, BranchOutcome, Gecco,
    GeccoError, InfeasibilityReport, MultiPassResult, Outcome, PassReport,
};
pub use selection::{
    select_optimal, select_optimal_colgen, solve_set_partition, solve_set_partition_stats,
    use_column_generation, ColGenMode, LazyPricingStats, Selection, SelectionOptions,
};
