//! Typed attribute values.
//!
//! Events carry a context of data attributes (§III-A: timestamps, executing
//! role, cost, …). The variants mirror the XES attribute types `string`,
//! `int`, `float`, `boolean` and `date`.

use crate::interner::{Interner, Symbol};
use std::fmt;

/// A typed attribute value attached to an event, trace, log or event class.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeValue {
    /// Categorical value, interned in the owning log's [`Interner`].
    Str(Symbol),
    /// Integer value (XES `int`).
    Int(i64),
    /// Floating-point value (XES `float`).
    Float(f64),
    /// Boolean value (XES `boolean`).
    Bool(bool),
    /// Timestamp in milliseconds since the Unix epoch (XES `date`).
    Timestamp(i64),
}

impl AttributeValue {
    /// Numeric view used by aggregate constraints (`sum`, `avg`, …).
    ///
    /// Strings and booleans have no numeric interpretation; timestamps are
    /// exposed as their epoch-millisecond value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            AttributeValue::Int(i) => Some(i as f64),
            AttributeValue::Float(f) => Some(f),
            AttributeValue::Timestamp(t) => Some(t as f64),
            AttributeValue::Str(_) | AttributeValue::Bool(_) => None,
        }
    }

    /// The interned string if this is a categorical value.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match *self {
            AttributeValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The epoch-millisecond timestamp if this is a `date` value.
    pub fn as_timestamp(&self) -> Option<i64> {
        match *self {
            AttributeValue::Timestamp(t) => Some(t),
            _ => None,
        }
    }

    /// A hashable discriminant used for `distinct(...)` counting: two values
    /// are "the same" iff their keys are equal. Floats are compared by bit
    /// pattern, which is adequate for counting categorical floats.
    pub fn distinct_key(&self) -> DistinctKey {
        match *self {
            AttributeValue::Str(s) => DistinctKey::Str(s),
            AttributeValue::Int(i) => DistinctKey::Int(i),
            AttributeValue::Float(f) => DistinctKey::Float(f.to_bits()),
            AttributeValue::Bool(b) => DistinctKey::Bool(b),
            AttributeValue::Timestamp(t) => DistinctKey::Timestamp(t),
        }
    }

    /// Human-readable rendering; `interner` resolves interned strings.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        DisplayValue { value: self, interner }
    }

    /// The XES tag name for this value's type.
    pub fn xes_tag(&self) -> &'static str {
        match self {
            AttributeValue::Str(_) => "string",
            AttributeValue::Int(_) => "int",
            AttributeValue::Float(_) => "float",
            AttributeValue::Bool(_) => "boolean",
            AttributeValue::Timestamp(_) => "date",
        }
    }
}

/// Hashable equality key for [`AttributeValue`], used by distinct-count
/// aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistinctKey {
    Str(Symbol),
    Int(i64),
    Float(u64),
    Bool(bool),
    Timestamp(i64),
}

struct DisplayValue<'a> {
    value: &'a AttributeValue,
    interner: &'a Interner,
}

impl fmt::Display for DisplayValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self.value {
            AttributeValue::Str(s) => f.write_str(self.interner.resolve(s)),
            AttributeValue::Int(i) => write!(f, "{i}"),
            AttributeValue::Float(x) => write!(f, "{x}"),
            AttributeValue::Bool(b) => write!(f, "{b}"),
            AttributeValue::Timestamp(t) => write!(f, "{}", crate::time::format_iso8601(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(AttributeValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AttributeValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(AttributeValue::Timestamp(1000).as_f64(), Some(1000.0));
        assert_eq!(AttributeValue::Bool(true).as_f64(), None);
        assert_eq!(AttributeValue::Str(Symbol(0)).as_f64(), None);
    }

    #[test]
    fn distinct_keys_distinguish_types() {
        let a = AttributeValue::Int(1).distinct_key();
        let b = AttributeValue::Timestamp(1).distinct_key();
        assert_ne!(a, b);
        assert_eq!(
            AttributeValue::Float(0.5).distinct_key(),
            AttributeValue::Float(0.5).distinct_key()
        );
    }

    #[test]
    fn display_resolves_symbols() {
        let mut i = Interner::new();
        let s = i.intern("clerk");
        assert_eq!(AttributeValue::Str(s).display(&i).to_string(), "clerk");
        assert_eq!(AttributeValue::Bool(false).display(&i).to_string(), "false");
        assert_eq!(AttributeValue::Int(-7).display(&i).to_string(), "-7");
    }

    #[test]
    fn xes_tags() {
        let mut i = Interner::new();
        let s = i.intern("x");
        assert_eq!(AttributeValue::Str(s).xes_tag(), "string");
        assert_eq!(AttributeValue::Int(0).xes_tag(), "int");
        assert_eq!(AttributeValue::Float(0.0).xes_tag(), "float");
        assert_eq!(AttributeValue::Bool(true).xes_tag(), "boolean");
        assert_eq!(AttributeValue::Timestamp(0).xes_tag(), "date");
    }
}
