//! Probabilistic co-occurrence summaries: [`BloomFilter`], [`CountMinSketch`]
//! and the [`ClassCoOccurrence`] sketch built from a [`LogIndex`].
//!
//! Candidate generation (Algorithms 1/2) spends much of its budget asking
//! `occurs(g, L)` — does any trace contain *every* class of `g`? The indexed
//! intersection answers that exactly, but still pays a cursor alignment per
//! query. This module precomputes, in **one pass over the postings**, a set
//! of summaries that answer the *negative* case for free:
//!
//! * an exact pairwise co-occurrence matrix (one [`ClassSet`] row per class —
//!   at most 256 × 32 bytes, so exactness costs nothing);
//! * a [`CountMinSketch`] of per-pair trace supports (always an
//!   **over**estimate, never an under-estimate);
//! * a [`BloomFilter`] of class *triples*, filled only from traces whose
//!   distinct-class count keeps the triple blow-up polynomial, with a
//!   completeness flag that records whether every trace qualified.
//!
//! The contract is one-sided, which is what makes pruning **sound**:
//! [`ClassCoOccurrence::may_occur`] never returns `false` for a group that
//! actually occurs. If a trace contains every class of `g`, then every pair
//! of `g` co-occurs in that trace (the exact matrix cannot miss it), and —
//! when the triple filter is complete — every triple of `g` was inserted
//! (Bloom filters have no false negatives). The reverse direction is
//! deliberately approximate: `may_occur` may say `true` for a group that
//! never co-occurs, in which case the caller falls back to the exact test.
//! The `sketch_soundness` proptests pin the one-sided guarantee.

use crate::classes::{ClassId, ClassSet, MAX_CLASSES};
use crate::index::LogIndex;

/// SplitMix64: a fast, well-mixed 64-bit finalizer. Used as the hash for
/// both sketches (keys are small packed integers, so mixing quality —
/// avalanche on low bits — matters more than throughput).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A classic Bloom filter over `u64` keys: `k` probes per key via
/// double hashing (Kirsch–Mitzenmacher), no false negatives ever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of probes per key.
    probes: u32,
    /// Bit-index mask; the bit count is a power of two.
    mask: u64,
    /// Keys inserted (not distinct — reinsertions count).
    insertions: usize,
}

impl BloomFilter {
    /// Creates a filter with at least `min_bits` bits (rounded up to a
    /// power of two, minimum 64) and `probes` probes per key.
    pub fn new(min_bits: usize, probes: u32) -> BloomFilter {
        let bits = min_bits.next_power_of_two().max(64);
        BloomFilter {
            bits: vec![0u64; bits / 64],
            probes: probes.max(1),
            mask: (bits - 1) as u64,
            insertions: 0,
        }
    }

    #[inline]
    fn probe_bits(&self, key: u64, mut visit: impl FnMut(usize, u64) -> bool) -> bool {
        let h1 = splitmix64(key);
        let h2 = splitmix64(h1) | 1; // odd stride: visits all positions
        for i in 0..self.probes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & self.mask;
            if !visit((bit / 64) as usize, 1u64 << (bit % 64)) {
                return false;
            }
        }
        true
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: u64) {
        self.insertions += 1;
        let h1 = splitmix64(key);
        let h2 = splitmix64(h1) | 1;
        for i in 0..self.probes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & self.mask;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether `key` may have been inserted. `false` is definitive; `true`
    /// may be a false positive.
    pub fn may_contain(&self, key: u64) -> bool {
        self.probe_bits(key, |word, mask| self.bits[word] & mask != 0)
    }

    /// Number of insert calls so far.
    pub fn insertions(&self) -> usize {
        self.insertions
    }
}

/// A count-min sketch over `u64` keys: `depth` rows of `width` saturating
/// `u32` counters. Estimates never under-count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    rows: Vec<Vec<u32>>,
    /// Column mask; the width is a power of two.
    mask: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `depth` rows of at least `min_width` counters
    /// each (rounded up to a power of two, minimum 64).
    pub fn new(depth: usize, min_width: usize) -> CountMinSketch {
        let width = min_width.next_power_of_two().max(64);
        CountMinSketch { rows: vec![vec![0u32; width]; depth.max(1)], mask: (width - 1) as u64 }
    }

    #[inline]
    fn column(&self, row: usize, key: u64) -> usize {
        // Per-row seed keeps the rows' hash functions independent.
        (splitmix64(key ^ (row as u64).wrapping_mul(0xa076_1d64_78bd_642f)) & self.mask) as usize
    }

    /// Adds `count` to `key` (saturating).
    pub fn add(&mut self, key: u64, count: u32) {
        for row in 0..self.rows.len() {
            let col = self.column(row, key);
            let cell = &mut self.rows[row][col];
            *cell = cell.saturating_add(count);
        }
    }

    /// The estimated count of `key`: exact or an over-estimate, never an
    /// under-estimate (each row only ever aggregates colliding keys).
    pub fn estimate(&self, key: u64) -> u32 {
        (0..self.rows.len()).map(|row| self.rows[row][self.column(row, key)]).min().unwrap_or(0)
    }
}

/// Packs an unordered class pair into a sketch key (canonical order).
#[inline]
fn pair_key(a: ClassId, b: ClassId) -> u64 {
    let (lo, hi) = if a.index() <= b.index() { (a, b) } else { (b, a) };
    ((lo.index() as u64) << 16) | hi.index() as u64
}

/// Packs an ascending class triple into a sketch key.
#[inline]
fn triple_key(a: usize, b: usize, c: usize) -> u64 {
    debug_assert!(a < b && b < c);
    ((a as u64) << 32) | ((b as u64) << 16) | c as u64
}

/// Traces with more distinct classes than this skip triple insertion (the
/// triple count grows cubically); [`ClassCoOccurrence::triples_complete`]
/// reports whether any trace was skipped. 24 classes cap a trace at
/// C(24,3) = 2024 triples.
pub const TRIPLE_CLASS_LIMIT: usize = 24;

/// One-pass co-occurrence summary of a [`LogIndex`]: which classes ever
/// share a trace (exact, pairwise), how many traces support each pair
/// (count-min over-estimate), and which class triples share a trace
/// (Bloom, possibly incomplete — see [`Self::triples_complete`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassCoOccurrence {
    /// Row `c`: the classes sharing at least one trace with `c`
    /// (including `c` itself when `c` occurs at all).
    pairs: Vec<ClassSet>,
    /// Per-pair trace supports.
    support: CountMinSketch,
    /// Triples from qualifying traces.
    triples: BloomFilter,
    /// Whether *every* trace contributed its triples.
    triples_complete: bool,
    /// Exact number of traces each class occurs in — the degenerate
    /// "pair" `(c, c)`, which the pair sketch never sees.
    class_trace_counts: Vec<u32>,
    num_traces: usize,
}

impl ClassCoOccurrence {
    /// Builds the sketch from the index's postings in one pass: the runs
    /// of every class scatter into per-trace class lists, then each trace
    /// inserts its pairs (exact matrix + support sketch) and — when small
    /// enough — its triples. Cost: O(total runs + Σ per-trace pairs).
    pub fn build(index: &LogIndex) -> ClassCoOccurrence {
        let num_traces = index.num_traces();
        let mut per_trace: Vec<Vec<u16>> = vec![Vec::new(); num_traces];
        let mut class_trace_counts = vec![0u32; MAX_CLASSES];
        for (c, count) in class_trace_counts.iter_mut().enumerate() {
            let class = ClassId(c as u16);
            for (trace, _) in index.postings(class) {
                per_trace[trace as usize].push(c as u16);
                *count += 1;
            }
        }
        let mut pairs = vec![ClassSet::new(); MAX_CLASSES];
        // Width chosen so the full 256-class pair space (≈32k pairs)
        // rarely collides; 4 rows push the over-estimate tail down.
        let mut support = CountMinSketch::new(4, 64 * 1024);
        let mut triples = BloomFilter::new(1 << 20, 4);
        let mut triples_complete = true;
        for classes in &per_trace {
            // Postings scatter in ascending class order per trace.
            for (i, &a) in classes.iter().enumerate() {
                let ca = ClassId(a);
                pairs[a as usize].insert(ca);
                for &b in &classes[i + 1..] {
                    pairs[a as usize].insert(ClassId(b));
                    pairs[b as usize].insert(ca);
                    support.add(pair_key(ca, ClassId(b)), 1);
                }
            }
            if classes.len() > TRIPLE_CLASS_LIMIT {
                triples_complete = false;
                continue;
            }
            for (i, &a) in classes.iter().enumerate() {
                for (j, &b) in classes.iter().enumerate().skip(i + 1) {
                    for &c in &classes[j + 1..] {
                        triples.insert(triple_key(a as usize, b as usize, c as usize));
                    }
                }
            }
        }
        ClassCoOccurrence {
            pairs,
            support,
            triples,
            triples_complete,
            class_trace_counts,
            num_traces,
        }
    }

    /// Whether `group` may co-occur in some trace. **Sound**: never
    /// `false` for a group where `occurs(g, L)` holds — pairs are exact
    /// and the triple filter is only consulted when complete (Bloom
    /// filters have no false negatives). May return `true` for groups
    /// that do not occur; callers confirm with the exact test.
    pub fn may_occur(&self, group: &ClassSet) -> bool {
        // Mirror the exact semantics on the empty group: ∅ occurs iff the
        // log has a trace at all.
        if group.is_empty() {
            return self.num_traces > 0;
        }
        // Every pair must share a trace: row `a` must contain all of the
        // group's classes (including `a` itself — singleton occurrence).
        for a in group.iter() {
            if !group.is_subset(&self.pairs[a.index()]) {
                return false;
            }
        }
        if self.triples_complete && group.len() >= 3 {
            let classes: Vec<usize> = group.iter().map(|c| c.index()).collect();
            for (i, &a) in classes.iter().enumerate() {
                for (j, &b) in classes.iter().enumerate().skip(i + 1) {
                    for &c in &classes[j + 1..] {
                        if !self.triples.may_contain(triple_key(a, b, c)) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// The classes that share at least one trace with `c` (including `c`
    /// itself when it occurs). Candidate expansion intersects its
    /// extension alphabet with this row so provably non-co-occurring
    /// classes are never even tried.
    pub fn cooccurring(&self, c: ClassId) -> &ClassSet {
        &self.pairs[c.index()]
    }

    /// Over-estimate of the number of traces containing both `a` and `b`
    /// (exact up to count-min collisions; never an under-estimate). The
    /// degenerate query `(c, c)` is exact: it returns the number of traces
    /// `c` occurs in. (The pair sketch never stores the diagonal — `build`
    /// only inserts pairs from `classes[i + 1..]` — so routing `(c, c)`
    /// through the count-min estimate under-counted a class occurring in
    /// more than one trace, violating this contract.)
    pub fn pair_support(&self, a: ClassId, b: ClassId) -> u32 {
        if a == b {
            return self.class_trace_counts[a.index()];
        }
        if !self.pairs[a.index()].contains(b) {
            return 0; // exact: the pair never shares a trace
        }
        self.support.estimate(pair_key(a, b))
    }

    /// Whether every trace contributed its triples to the Bloom filter;
    /// when `false`, [`Self::may_occur`] skips the triple check (it would
    /// be unsound) and prunes on pairs alone.
    pub fn triples_complete(&self) -> bool {
        self.triples_complete
    }

    /// Upper-bound estimate of the enumerable candidate-pool size over
    /// `universe`, saturated at `cap`: the number of nonempty cliques of
    /// the exact pairwise co-occurrence graph. Every occurring group is
    /// such a clique (all of its pairs share the witnessing trace), so the
    /// clique count can never under-state the pool — a return below `cap`
    /// *proves* enumeration stays below `cap` groups. Counting walks the
    /// canonical subset lattice (each clique reached along exactly one
    /// ascending path) and exits early at `cap`, so the estimate costs
    /// `O(min(cliques, cap))` set operations no matter how combinatorial
    /// the log is.
    pub fn estimate_pool(&self, universe: &ClassSet, cap: usize) -> usize {
        let mut count = 0usize;
        for c in universe.iter() {
            // A class absent from every trace forms no clique at all.
            if !self.pairs[c.index()].contains(c) {
                continue;
            }
            let cooc = universe.intersection(&self.pairs[c.index()]);
            if !self.count_cliques(ClassSet::singleton(c), c, cooc, cap, &mut count) {
                return cap;
            }
        }
        count
    }

    /// Counts the cliques extending `group` by classes above `last` inside
    /// `cooc` (the intersection of all members' co-occurrence rows).
    /// Returns `false` once `count` reaches `cap`.
    fn count_cliques(
        &self,
        group: ClassSet,
        last: ClassId,
        cooc: ClassSet,
        cap: usize,
        count: &mut usize,
    ) -> bool {
        *count += 1;
        if *count >= cap {
            return false;
        }
        for c in cooc.difference(&group).iter().filter(|&c| c > last) {
            let mut bigger = group;
            bigger.insert(c);
            let narrowed = cooc.intersection(&self.pairs[c.index()]);
            if !self.count_cliques(bigger, c, narrowed, cap, count) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{EventLog, LogBuilder};

    fn log_from(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("c{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bloom = BloomFilter::new(1 << 10, 4);
        for key in 0..500u64 {
            bloom.insert(key * 7919);
        }
        for key in 0..500u64 {
            assert!(bloom.may_contain(key * 7919));
        }
        assert_eq!(bloom.insertions(), 500);
    }

    #[test]
    fn count_min_never_under_counts() {
        let mut cm = CountMinSketch::new(4, 64);
        // Deliberately tiny width so collisions definitely happen.
        for key in 0..1000u64 {
            cm.add(key, 1);
        }
        cm.add(42, 5);
        assert!(cm.estimate(42) >= 6);
        for key in 0..1000u64 {
            assert!(cm.estimate(key) >= 1);
        }
    }

    #[test]
    fn pairwise_matrix_is_exact() {
        let log = log_from(&[&["a", "b"], &["b", "c"], &["d"]]);
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        let [a, b, c, d] = ["a", "b", "c", "d"].map(|n| log.class_by_name(n).unwrap());
        assert!(sketch.cooccurring(a).contains(b));
        assert!(sketch.cooccurring(b).contains(c));
        assert!(!sketch.cooccurring(a).contains(c));
        assert!(!sketch.cooccurring(d).contains(a));
        assert!(sketch.cooccurring(d).contains(d));
        assert!(sketch.may_occur(&group(&log, &["a", "b"])));
        assert!(!sketch.may_occur(&group(&log, &["a", "c"])), "a,c never share a trace");
        assert!(!sketch.may_occur(&group(&log, &["a", "b", "c"])), "pair a,c already fails");
    }

    #[test]
    fn triples_catch_pairwise_only_groups() {
        // Every pair of {a,b,c} co-occurs, but no trace holds all three:
        // only the (complete) triple filter can prune this group.
        let log = log_from(&[&["a", "b"], &["b", "c"], &["a", "c"]]);
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        assert!(sketch.triples_complete());
        let g = group(&log, &["a", "b", "c"]);
        assert!(!log.occurs(&g));
        assert!(!sketch.may_occur(&g), "complete triple filter prunes the pairwise-only group");
        for names in [&["a", "b"][..], &["b", "c"], &["a", "c"]] {
            assert!(sketch.may_occur(&group(&log, names)));
        }
    }

    #[test]
    fn may_occur_is_sound_on_occurring_groups() {
        let log = log_from(&[&["a", "b", "c", "a"], &["b", "d"], &["a", "c", "e", "b"], &["e"]]);
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        // Exhaustive over all subsets of the 5 classes: occurs ⇒ may_occur.
        let classes: Vec<ClassId> = (0..log.num_classes()).map(|i| ClassId(i as u16)).collect();
        for mask in 0u32..(1 << classes.len()) {
            let g: ClassSet = classes
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &c)| c)
                .collect();
            if log.occurs(&g) {
                assert!(sketch.may_occur(&g), "sound pruning violated on {g:?}");
            }
        }
    }

    #[test]
    fn empty_group_matches_exact_semantics() {
        let log = log_from(&[&["a"]]);
        let sketch = ClassCoOccurrence::build(&LogIndex::build(&log));
        assert!(sketch.may_occur(&ClassSet::EMPTY));
        let empty = LogBuilder::new().build();
        let sketch = ClassCoOccurrence::build(&LogIndex::build(&empty));
        assert!(!sketch.may_occur(&ClassSet::EMPTY));
    }

    #[test]
    fn pair_support_never_under_counts() {
        let log = log_from(&[&["a", "b"], &["a", "b", "c"], &["a", "c"], &["b"]]);
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        let [a, b, c] = ["a", "b", "c"].map(|n| log.class_by_name(n).unwrap());
        assert!(sketch.pair_support(a, b) >= 2);
        assert!(sketch.pair_support(a, c) >= 2);
        assert!(sketch.pair_support(b, c) >= 1);
        let d_free = ClassId((log.num_classes()) as u16);
        assert_eq!(sketch.pair_support(a, d_free), 0, "never-co-occurring pair is exact zero");
    }

    #[test]
    fn estimate_pool_counts_cliques_and_saturates() {
        // Graph: a–b, b–c co-occur; d isolated. Cliques: the four
        // singletons plus {a,b} and {b,c} = 6 (the non-edge {a,c} and
        // anything containing it never count).
        let log = log_from(&[&["a", "b"], &["b", "c"], &["d"]]);
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        let universe: ClassSet = (0..log.num_classes()).map(|i| ClassId(i as u16)).collect();
        assert_eq!(sketch.estimate_pool(&universe, 1000), 6);
        // The cap saturates and the walk exits early.
        assert_eq!(sketch.estimate_pool(&universe, 4), 4);
        assert_eq!(sketch.estimate_pool(&universe, 6), 6);
        // Restricting the universe restricts the count.
        let ab = group(&log, &["a", "b"]);
        assert_eq!(sketch.estimate_pool(&ab, 1000), 3);
        // Classes outside every trace contribute nothing.
        let free = ClassSet::singleton(ClassId(log.num_classes() as u16));
        assert_eq!(sketch.estimate_pool(&free, 1000), 0);
        // A dense trace makes the count exponential; the cap bounds the walk.
        let log = log_from(&[&["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]]);
        let sketch = ClassCoOccurrence::build(&LogIndex::build(&log));
        let universe: ClassSet = (0..10).map(|i| ClassId(i as u16)).collect();
        assert_eq!(sketch.estimate_pool(&universe, 100), 100);
        assert_eq!(sketch.estimate_pool(&universe, 2000), 1023, "2^10 − 1 nonempty subsets");
    }

    #[test]
    fn degenerate_pair_support_is_the_trace_count() {
        // The diagonal never enters the pair sketch (`build` only inserts
        // pairs from `classes[i + 1..]`), so `pair_support(c, c)` used to
        // return at most 1 — under-counting any class that occurs in more
        // than one trace.
        let log = log_from(&[&["a", "b"], &["a"], &["a", "c"], &["b"]]);
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        let [a, b, c] = ["a", "b", "c"].map(|n| log.class_by_name(n).unwrap());
        assert_eq!(sketch.pair_support(a, a), 3);
        assert_eq!(sketch.pair_support(b, b), 2);
        assert_eq!(sketch.pair_support(c, c), 1);
        let free = ClassId(log.num_classes() as u16);
        assert_eq!(sketch.pair_support(free, free), 0, "absent class supports nothing");
    }
}
