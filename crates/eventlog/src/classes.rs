//! Event classes and sets of event classes.
//!
//! An event class (§III-A: `e.C ∈ C`) is the *type* of an event — in the
//! paper's running example the eight process steps `rcp, ckc, ckt, acc, rej,
//! prio, inf, arv`. Groups of event classes (candidate high-level activities)
//! are represented by [`ClassSet`], a fixed-width 256-bit inline bitset:
//! candidate computation manipulates millions of groups, so they must be
//! `Copy` and hashable without allocation.

use crate::interner::Symbol;
use crate::value::AttributeValue;
use std::fmt;

/// Maximum number of distinct event classes per log.
///
/// The largest log in the paper's evaluation collection has 70 classes; the
/// exhaustive algorithm is exponential in this number anyway, so a hard cap
/// of 256 is a non-restriction in practice and keeps [`ClassSet`] `Copy`.
pub const MAX_CLASSES: usize = 256;

const WORDS: usize = MAX_CLASSES / 64;

/// Dense identifier of an event class within one [`crate::EventLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The raw index of this class in the log's [`ClassRegistry`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata about one event class: its name and its *class-level*
/// attributes (e.g. the originating IT system in the paper's case study,
/// used by the `BL3` constraint `|g.D| = 1`).
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Interned class name (the XES `concept:name`).
    pub name: Symbol,
    /// Class-level attributes, sorted by key symbol.
    pub attributes: Vec<(Symbol, AttributeValue)>,
}

impl ClassInfo {
    /// Looks up a class-level attribute by key.
    pub fn attribute(&self, key: Symbol) -> Option<&AttributeValue> {
        self.attributes.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Registry of the event classes of one log (the set `C_L`).
#[derive(Debug, Clone, Default)]
pub struct ClassRegistry {
    infos: Vec<ClassInfo>,
    by_name: std::collections::HashMap<Symbol, ClassId>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for the class named `name`, registering it on first use.
    pub fn get_or_insert(&mut self, name: Symbol) -> crate::Result<ClassId> {
        if let Some(&id) = self.by_name.get(&name) {
            return Ok(id);
        }
        if self.infos.len() >= MAX_CLASSES {
            return Err(crate::Error::TooManyClasses { found: self.infos.len() + 1 });
        }
        // gecco-lint: allow(lossy-cast) — guarded above: len < MAX_CLASSES = 256 fits u16
        let id = ClassId(self.infos.len() as u16);
        self.infos.push(ClassInfo { name, attributes: Vec::new() });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Looks up a class by its interned name.
    pub fn get(&self, name: Symbol) -> Option<ClassId> {
        self.by_name.get(&name).copied()
    }

    /// Metadata for `id`.
    #[inline]
    pub fn info(&self, id: ClassId) -> &ClassInfo {
        &self.infos[id.index()]
    }

    /// Mutable metadata for `id` (used to attach class-level attributes).
    pub fn info_mut(&mut self, id: ClassId) -> &mut ClassInfo {
        &mut self.infos[id.index()]
    }

    /// Number of registered classes, `|C_L|`.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether no class has been registered.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over all class ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ClassId> {
        // gecco-lint: allow(lossy-cast) — registration is capped at MAX_CLASSES = 256
        (0..self.infos.len() as u16).map(ClassId)
    }

    /// The full class set `C_L` as a bitset.
    pub fn all(&self) -> ClassSet {
        self.ids().collect()
    }
}

/// A set of event classes — a (candidate) group `g ⊆ C_L`.
///
/// Fixed-size 256-bit bitset: `Copy`, `Eq`, `Hash`, no heap. All set
/// operations are branch-free word ops.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClassSet {
    words: [u64; WORDS],
}

impl ClassSet {
    /// The empty set.
    pub const EMPTY: ClassSet = ClassSet { words: [0; WORDS] };

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Singleton set `{c}`.
    pub fn singleton(c: ClassId) -> Self {
        let mut s = Self::EMPTY;
        s.insert(c);
        s
    }

    /// Inserts a class; returns whether it was newly added.
    #[inline]
    pub fn insert(&mut self, c: ClassId) -> bool {
        let (w, b) = (c.index() / 64, c.index() % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes a class; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, c: ClassId) -> bool {
        let (w, b) = (c.index() / 64, c.index() % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, c: ClassId) -> bool {
        let (w, b) = (c.index() / 64, c.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of classes in the set, `|g|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union `self ∪ other`.
    #[inline]
    pub fn union(&self, other: &ClassSet) -> ClassSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        out
    }

    /// Set intersection `self ∩ other`.
    #[inline]
    pub fn intersection(&self, other: &ClassSet) -> ClassSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        out
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(&self, other: &ClassSet) -> ClassSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
        out
    }

    /// Whether the two sets share at least one class.
    #[inline]
    pub fn intersects(&self, other: &ClassSet) -> bool {
        self.words.iter().zip(other.words.iter()).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &ClassSet) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(a, b)| a & !b == 0)
    }

    /// Whether `self ⊂ other` (subset and not equal).
    #[inline]
    pub fn is_proper_subset(&self, other: &ClassSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Iterates over member classes in ascending id order.
    pub fn iter(&self) -> ClassSetIter {
        ClassSetIter { words: self.words, word_idx: 0 }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<ClassId> {
        self.iter().next()
    }
}

impl FromIterator<ClassId> for ClassSet {
    fn from_iter<T: IntoIterator<Item = ClassId>>(iter: T) -> Self {
        let mut s = ClassSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl IntoIterator for &ClassSet {
    type Item = ClassId;
    type IntoIter = ClassSetIter;
    fn into_iter(self) -> ClassSetIter {
        self.iter()
    }
}

/// Iterator over the members of a [`ClassSet`].
pub struct ClassSetIter {
    words: [u64; WORDS],
    word_idx: usize,
}

impl Iterator for ClassSetIter {
    type Item = ClassId;

    fn next(&mut self) -> Option<ClassId> {
        while self.word_idx < WORDS {
            let w = self.words[self.word_idx];
            if w == 0 {
                self.word_idx += 1;
                continue;
            }
            let bit = w.trailing_zeros() as usize;
            self.words[self.word_idx] &= w - 1; // clear lowest set bit
            return Some(ClassId((self.word_idx * 64 + bit) as u16));
        }
        None
    }
}

impl fmt::Debug for ClassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|c| c.0)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u16]) -> ClassSet {
        ids.iter().map(|&i| ClassId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = ClassSet::new();
        assert!(s.insert(ClassId(3)));
        assert!(!s.insert(ClassId(3)));
        assert!(s.contains(ClassId(3)));
        assert!(!s.contains(ClassId(4)));
        assert!(s.remove(ClassId(3)));
        assert!(!s.remove(ClassId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn works_across_word_boundaries() {
        let s = set(&[0, 63, 64, 127, 128, 255]);
        assert_eq!(s.len(), 6);
        let members: Vec<u16> = s.iter().map(|c| c.0).collect();
        assert_eq!(members, vec![0, 63, 64, 127, 128, 255]);
    }

    #[test]
    fn set_algebra() {
        let a = set(&[1, 2, 3, 70]);
        let b = set(&[3, 4, 70, 200]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 70, 200]));
        assert_eq!(a.intersection(&b), set(&[3, 70]));
        assert_eq!(a.difference(&b), set(&[1, 2]));
        assert!(a.intersects(&b));
        assert!(!set(&[1]).intersects(&set(&[2])));
    }

    #[test]
    fn subset_relations() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(b.is_subset(&b));
        assert!(!b.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn first_and_singleton() {
        assert_eq!(ClassSet::EMPTY.first(), None);
        let s = ClassSet::singleton(ClassId(42));
        assert_eq!(s.first(), Some(ClassId(42)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn registry_assigns_dense_ids() {
        let mut interner = crate::Interner::new();
        let mut reg = ClassRegistry::new();
        let a = reg.get_or_insert(interner.intern("a")).unwrap();
        let b = reg.get_or_insert(interner.intern("b")).unwrap();
        let a2 = reg.get_or_insert(interner.intern("a")).unwrap();
        assert_eq!(a, a2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.all(), set(&[0, 1]));
    }

    #[test]
    fn registry_rejects_overflow() {
        let mut interner = crate::Interner::new();
        let mut reg = ClassRegistry::new();
        for i in 0..MAX_CLASSES {
            reg.get_or_insert(interner.intern(&format!("c{i}"))).unwrap();
        }
        let over = reg.get_or_insert(interner.intern("one-too-many"));
        assert!(matches!(over, Err(crate::Error::TooManyClasses { .. })));
    }

    #[test]
    fn class_level_attributes() {
        let mut interner = crate::Interner::new();
        let mut reg = ClassRegistry::new();
        let id = reg.get_or_insert(interner.intern("A_Submit")).unwrap();
        let key = interner.intern("system");
        let val = AttributeValue::Str(interner.intern("A"));
        reg.info_mut(id).attributes.push((key, val.clone()));
        assert_eq!(reg.info(id).attribute(key), Some(&val));
        assert_eq!(reg.info(id).attribute(Symbol(999)), None);
    }
}
