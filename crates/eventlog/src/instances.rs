//! Group instances: the `inst : E* × 2^C → 2^(E*)` function of §IV-A.
//!
//! An *instance* of a group `g` in a trace `σ` is a maximal sequence of
//! (not necessarily consecutive) events of `σ` whose classes belong to `g`
//! and that together form one execution of the prospective high-level
//! activity. For traces with recurring behavior the projection must be
//! split: in the paper's running example,
//! `inst(σ4, {rcp,ckc,ckt}) = {⟨rcp,ckc⟩, ⟨rcp,ckt⟩}`.
//!
//! Following the recurrence-detection technique the paper adopts from
//! van der Aa et al. \[9\], the default [`Segmenter::RepeatSplit`] starts a
//! new instance whenever an event class re-occurs that is already part of
//! the current instance. [`Segmenter::NoSplit`] keeps the whole projection
//! as a single instance, which is what a user wants when imposing
//! cardinality constraints such as "at least 2 events of class X per
//! instance".
//!
//! Instances are consumed on two paths: constraint evaluation (via the
//! indexed [`crate::EvalContext`] materialization, bit-identical to the
//! scan here) and Step-3 abstraction, where each instance's span collapses
//! into a high-level event whose posting is spliced straight into the new
//! log's index (see [`crate::IndexSplicer`]).

use crate::classes::ClassSet;
use crate::trace::Trace;

/// Strategy for splitting a projected trace into group instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Segmenter {
    /// Start a new instance when a class already present in the current
    /// instance re-occurs (recurrence detection à la \[9\]); the default.
    #[default]
    RepeatSplit,
    /// The entire projection is one instance.
    NoSplit,
}

/// One instance `ξ` of a group in a trace: the positions (event indexes in
/// the trace) of its events, in ascending order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupInstance {
    positions: Vec<u32>,
    distinct_classes: u16,
}

impl GroupInstance {
    /// Internal constructor shared with the indexed materialization path
    /// (see [`crate::index`]).
    #[inline]
    pub(crate) fn from_parts(positions: Vec<u32>, distinct_classes: u16) -> GroupInstance {
        GroupInstance { positions, distinct_classes }
    }

    /// Event indexes of this instance within its trace, ascending.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Number of events, `|ξ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Instances are never empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of the first event.
    #[inline]
    pub fn first(&self) -> u32 {
        self.positions[0]
    }

    /// Position of the last event.
    #[inline]
    pub fn last(&self) -> u32 {
        *self.positions.last().expect("instances are non-empty")
    }

    /// `interrupts(ξ)` (Eq. 1): the number of events from *other* instances
    /// interspersed between the first and last event of this instance.
    #[inline]
    pub fn interrupts(&self) -> usize {
        (self.last() - self.first() + 1) as usize - self.len()
    }

    /// `missing(ξ, g)` (Eq. 1): how many classes of `g` do not occur in ξ.
    #[inline]
    pub fn missing(&self, group_size: usize) -> usize {
        group_size - self.distinct_classes as usize
    }

    /// Number of distinct event classes occurring in ξ.
    pub fn distinct_classes(&self) -> usize {
        self.distinct_classes as usize
    }
}

/// Computes `inst(σ, group)`: all instances of `group` in `trace`.
///
/// Returns an empty vector when no event of the trace belongs to the group
/// (the constraint semantics of §IV-A treat such traces as vacuous).
pub fn instances(trace: &Trace, group: &ClassSet, segmenter: Segmenter) -> Vec<GroupInstance> {
    let mut out = Vec::new();
    let mut current_positions: Vec<u32> = Vec::new();
    let mut current_classes = ClassSet::new();
    for (idx, event) in trace.events().iter().enumerate() {
        let class = event.class();
        if !group.contains(class) {
            continue;
        }
        if segmenter == Segmenter::RepeatSplit && current_classes.contains(class) {
            out.push(GroupInstance {
                positions: std::mem::take(&mut current_positions),
                // gecco-lint: allow(lossy-cast) — ClassSet::len ≤ MAX_CLASSES = 256 fits u16
                distinct_classes: current_classes.len() as u16,
            });
            current_classes = ClassSet::new();
        }
        // gecco-lint: allow(lossy-cast) — event positions are u32 by design (cf. LogIndex)
        current_positions.push(idx as u32);
        current_classes.insert(class);
    }
    if !current_positions.is_empty() {
        // gecco-lint: allow(lossy-cast) — ClassSet::len ≤ MAX_CLASSES = 256 fits u16
        let distinct = current_classes.len() as u16;
        out.push(GroupInstance { positions: current_positions, distinct_classes: distinct });
    }
    out
}

/// Computes instances of `group` across all traces of a log, yielding
/// `(trace index, instance)` pairs. This is `inst(L, g)` of Eq. 1.
pub fn log_instances<'a>(
    log: &'a crate::EventLog,
    group: &'a ClassSet,
    segmenter: Segmenter,
) -> impl Iterator<Item = (usize, GroupInstance)> + 'a {
    log.traces().iter().enumerate().flat_map(move |(i, t)| {
        instances(t, group, segmenter).into_iter().map(move |inst| (i, inst))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogBuilder;
    use crate::EventLog;

    fn log_from(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("c{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn simple_projection_is_one_instance() {
        let log = log_from(&[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej"], // registers ckt
        ]);
        let g = group(&log, &["rcp", "ckc", "ckt"]);
        let inst = instances(&log.traces()[0], &g, Segmenter::RepeatSplit);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].positions(), &[0, 1]);
        assert_eq!(inst[0].interrupts(), 0);
        assert_eq!(inst[0].missing(g.len()), 1); // ckt missing
    }

    #[test]
    fn paper_sigma4_splits_on_recurrence() {
        // σ4 = ⟨rcp, ckc, rej, rcp, ckt, acc, prio, arv, inf⟩
        let log = log_from(&[&["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"]]);
        let g = group(&log, &["rcp", "ckc", "ckt"]);
        let inst = instances(&log.traces()[0], &g, Segmenter::RepeatSplit);
        assert_eq!(inst.len(), 2, "paper: inst(σ4, g_clrk1) has two instances");
        assert_eq!(inst[0].positions(), &[0, 1]); // ⟨rcp, ckc⟩
        assert_eq!(inst[1].positions(), &[3, 4]); // ⟨rcp, ckt⟩
        assert_eq!(inst[0].missing(3), 1);
        assert_eq!(inst[1].missing(3), 1);
    }

    #[test]
    fn no_split_keeps_one_instance() {
        let log = log_from(&[&["a", "b", "a", "b"]]);
        let g = group(&log, &["a", "b"]);
        let inst = instances(&log.traces()[0], &g, Segmenter::NoSplit);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].len(), 4);
        assert_eq!(inst[0].distinct_classes(), 2);
        assert_eq!(inst[0].missing(2), 0);
    }

    #[test]
    fn interrupts_counts_interspersed_events() {
        // Paper example: in ⟨a,b,c,d,e⟩ grouping {a, e} has 3 interspersed events.
        let log = log_from(&[&["a", "b", "c", "d", "e"]]);
        let g = group(&log, &["a", "e"]);
        let inst = instances(&log.traces()[0], &g, Segmenter::RepeatSplit);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].interrupts(), 3);
    }

    #[test]
    fn absent_group_yields_no_instances() {
        let log = log_from(&[&["a", "b"], &["c"]]);
        let g = group(&log, &["c"]);
        assert!(instances(&log.traces()[0], &g, Segmenter::RepeatSplit).is_empty());
        let all: Vec<_> = log_instances(&log, &g, Segmenter::RepeatSplit).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, 1);
    }

    #[test]
    fn singleton_class_repeats_become_separate_instances() {
        let log = log_from(&[&["x", "y", "x", "x"]]);
        let g = group(&log, &["x"]);
        let inst = instances(&log.traces()[0], &g, Segmenter::RepeatSplit);
        assert_eq!(inst.len(), 3);
        for i in &inst {
            assert_eq!(i.len(), 1);
            assert_eq!(i.interrupts(), 0);
        }
    }

    #[test]
    fn log_instances_spans_traces() {
        let log = log_from(&[&["a", "b"], &["b", "a"], &["c"]]);
        let g = group(&log, &["a", "b"]);
        let all: Vec<_> = log_instances(&log, &g, Segmenter::RepeatSplit).collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 0);
        assert_eq!(all[1].0, 1);
    }
}
