//! Event-log substrate for the GECCO log-abstraction approach (ICDE 2022).
//!
//! This crate provides everything the paper's §III-A event model requires:
//!
//! * an [`EventLog`] of [`Trace`]s of [`Event`]s, each event carrying an
//!   interned event class and a set of typed data attributes,
//! * a per-log [`Interner`] so classes, attribute keys and string values are
//!   compared as `u32`s on the hot paths,
//! * the [`ClassSet`] bitset used to represent groups of event classes,
//! * the per-class occurrence [`LogIndex`] with its [`EvalContext`] and the
//!   shared [`InstanceCache`], which make instance materialization
//!   proportional to a group's own occurrences instead of the log size,
//! * the directly-follows graph ([`Dfg`]) over event classes,
//! * trace [`variants`] and summary [`stats`],
//! * a hand-rolled [XES](crate::xes) reader/writer (own zero-copy XML pull
//!   parser — no external XML dependency) and a [CSV](crate::csv)
//!   importer/exporter, both built as chunked pipelines: a byte-level
//!   scanner splits the input, chunks parse into [`LogFragment`]s with
//!   thread-local interners (chunk-parallel under the `rayon` feature,
//!   see [`parallel`]), and a document-order merge makes the result
//!   bit-identical to a serial parse.
//!
//! The crate is dependency-free and forms the bottom layer of the workspace.

pub mod classes;
pub mod csv;
pub mod dfg;
pub mod error;
pub mod event;
pub mod index;
pub mod instances;
pub mod interner;
pub mod log;
pub mod parallel;
pub mod sketch;
pub mod stats;
pub mod store;
pub mod time;
pub mod trace;
pub mod value;
pub mod variants;
pub mod xes;

pub use classes::{ClassId, ClassInfo, ClassRegistry, ClassSet, MAX_CLASSES};
pub use dfg::Dfg;
pub use error::{Error, Result};
pub use event::Event;
pub use index::{
    CacheStats, CachedInstances, ContextParts, EvalContext, IndexSplicer, InstanceCache, LogIndex,
};
pub use instances::{instances, log_instances, GroupInstance, Segmenter};
pub use interner::{Interner, Symbol};
pub use log::{EventLog, FragmentTrace, LogBuilder, LogFragment, TraceBuilder};
pub use parallel::{parallel_enabled, set_parallel};
pub use sketch::{BloomFilter, ClassCoOccurrence, CountMinSketch};
pub use stats::LogStats;
pub use store::{ingest_to_store, StoreMeta, StoreWriter, TraceStore};
pub use trace::Trace;
pub use value::AttributeValue;
pub use variants::Variants;
pub use xes::{ingest_stream, parse_reader, BatchSink, IngestOptions, StreamScanner};
