//! A single recorded event.

use crate::classes::ClassId;
use crate::interner::Symbol;
use crate::value::AttributeValue;

/// One event `e ∈ E` (§III-A): an occurrence of an event class together with
/// its data-attribute context.
///
/// Attribute keys and categorical values are interned in the owning
/// [`crate::EventLog`]; the attribute list is kept sorted by key so lookups
/// are a short scan / binary search over a handful of entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    class: ClassId,
    attributes: Box<[(Symbol, AttributeValue)]>,
}

impl Event {
    /// Creates an event of class `class` with the given attributes.
    /// The attribute list is sorted by key; duplicate keys keep the first
    /// occurrence.
    pub fn new(class: ClassId, mut attributes: Vec<(Symbol, AttributeValue)>) -> Self {
        attributes.sort_by_key(|(k, _)| *k);
        attributes.dedup_by_key(|(k, _)| *k);
        Event { class, attributes: attributes.into_boxed_slice() }
    }

    /// The event's class, `e.C`.
    #[inline]
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Looks up attribute `key` (`e.D` in the paper).
    #[inline]
    pub fn attribute(&self, key: Symbol) -> Option<&AttributeValue> {
        match self.attributes.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(&self.attributes[i].1),
            Err(_) => None,
        }
    }

    /// The event's timestamp, if it carries one under `key`.
    #[inline]
    pub fn timestamp(&self, key: Symbol) -> Option<i64> {
        self.attribute(key).and_then(AttributeValue::as_timestamp)
    }

    /// All attributes, sorted by key.
    pub fn attributes(&self) -> &[(Symbol, AttributeValue)] {
        &self.attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_are_sorted_and_deduped() {
        let e = Event::new(
            ClassId(0),
            vec![
                (Symbol(5), AttributeValue::Int(1)),
                (Symbol(2), AttributeValue::Int(2)),
                (Symbol(5), AttributeValue::Int(3)), // duplicate: first wins
            ],
        );
        assert_eq!(e.attributes().len(), 2);
        assert_eq!(e.attribute(Symbol(2)), Some(&AttributeValue::Int(2)));
        assert_eq!(e.attribute(Symbol(5)), Some(&AttributeValue::Int(1)));
        assert_eq!(e.attribute(Symbol(9)), None);
    }

    #[test]
    fn timestamp_accessor() {
        let key = Symbol(1);
        let e = Event::new(ClassId(0), vec![(key, AttributeValue::Timestamp(123))]);
        assert_eq!(e.timestamp(key), Some(123));
        let e2 = Event::new(ClassId(0), vec![(key, AttributeValue::Int(123))]);
        assert_eq!(e2.timestamp(key), None);
    }
}
