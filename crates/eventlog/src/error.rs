//! Error type shared by the event-log substrate.

use std::fmt;

/// Convenience alias used throughout `gecco-eventlog`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building, parsing or serializing event logs.
#[derive(Debug)]
pub enum Error {
    /// Malformed XML encountered by the hand-rolled pull parser.
    Xml { line: usize, message: String },
    /// Structurally valid XML that is not valid XES.
    Xes { line: usize, message: String },
    /// Malformed CSV input.
    Csv { line: usize, message: String },
    /// A timestamp string that is not ISO-8601.
    Timestamp(String),
    /// The log references more event classes than [`crate::MAX_CLASSES`].
    TooManyClasses { found: usize },
    /// A corrupt or incompatible on-disk trace store.
    Store(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml { line, message } => write!(f, "XML error at line {line}: {message}"),
            Error::Xes { line, message } => write!(f, "XES error at line {line}: {message}"),
            Error::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            Error::Timestamp(s) => write!(f, "invalid ISO-8601 timestamp: {s:?}"),
            Error::TooManyClasses { found } => write!(
                f,
                "log has {found} event classes; at most {} are supported",
                crate::MAX_CLASSES
            ),
            Error::Store(message) => write!(f, "trace-store error: {message}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = Error::Xml { line: 7, message: "unexpected `<`".into() };
        assert!(e.to_string().contains("line 7"));
        let e = Error::Csv { line: 2, message: "missing column".into() };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
