//! ISO-8601 timestamp parsing and formatting, hand-rolled.
//!
//! XES `date` attributes use ISO-8601 with an optional fractional second and
//! a zone offset (`2017-02-01T09:30:15.250+01:00`). We avoid a chrono
//! dependency by implementing the civil-date ↔ epoch-day conversion of
//! Howard Hinnant's `days_from_civil` algorithm.

use crate::error::{Error, Result};

/// Days from 1970-01-01 for a proleptic Gregorian calendar date.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy as u64; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Whether `y` is a leap year in the proleptic Gregorian calendar.
fn is_leap_year(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in month `m` (1–12) of year `y`.
fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn digits(s: &[u8], n: usize, at: usize) -> Option<i64> {
    if s.len() < at + n {
        return None;
    }
    let mut v: i64 = 0;
    for &b in &s[at..at + n] {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v * 10 + (b - b'0') as i64;
    }
    Some(v)
}

/// Parses an ISO-8601 timestamp into epoch milliseconds (UTC).
///
/// Accepted shapes: `YYYY-MM-DD`, `YYYY-MM-DDTHH:MM:SS`, with optional
/// `.fff` fractional seconds (1–9 digits, truncated to milliseconds) and an
/// optional zone: `Z`, `+HH:MM`, `-HH:MM`, `+HHMM` or `+HH`.
///
/// The calendar date is validated against real month lengths (leap-year
/// aware): `2021-02-30` or `2021-04-31` are rejected instead of silently
/// normalizing into a different instant via `days_from_civil`.
///
/// **Leap-second policy:** a seconds field of `60` is accepted anywhere (we
/// cannot know the historical leap-second table, and real logs contain such
/// stamps) and normalizes to the first instant of the *following* minute —
/// the Unix-time convention of folding the leap second into its successor.
/// Seconds `61`+ are rejected.
pub fn parse_iso8601(s: &str) -> Result<i64> {
    let b = s.trim().as_bytes();
    let fail = || Error::Timestamp(s.to_string());
    let year = digits(b, 4, 0).ok_or_else(fail)?;
    if b.get(4) != Some(&b'-') {
        return Err(fail());
    }
    let month = digits(b, 2, 5).ok_or_else(fail)? as u32;
    if b.get(7) != Some(&b'-') {
        return Err(fail());
    }
    let day = digits(b, 2, 8).ok_or_else(fail)? as u32;
    if !(1..=12).contains(&month) || !(1..=days_in_month(year, month)).contains(&day) {
        return Err(fail());
    }
    let mut millis = days_from_civil(year, month, day) * 86_400_000;
    let mut pos = 10;
    if b.len() > pos {
        if b[pos] != b'T' && b[pos] != b' ' {
            return Err(fail());
        }
        pos += 1;
        let hh = digits(b, 2, pos).ok_or_else(fail)?;
        let mm = digits(b, 2, pos + 3).ok_or_else(fail)?;
        let ss = digits(b, 2, pos + 6).ok_or_else(fail)?;
        if b.get(pos + 2) != Some(&b':') || b.get(pos + 5) != Some(&b':') {
            return Err(fail());
        }
        if hh > 23 || mm > 59 || ss > 60 {
            return Err(fail());
        }
        millis += (hh * 3600 + mm * 60 + ss) * 1000;
        pos += 8;
        // Fractional seconds.
        if b.get(pos) == Some(&b'.') {
            pos += 1;
            let start = pos;
            while pos < b.len() && b[pos].is_ascii_digit() {
                pos += 1;
            }
            if pos == start {
                return Err(fail());
            }
            let mut frac: i64 = 0;
            for i in 0..3 {
                frac = frac * 10
                    + b.get(start + i)
                        .filter(|c| c.is_ascii_digit())
                        .map_or(0, |c| (c - b'0') as i64);
            }
            millis += frac;
        }
        // Zone offset.
        if pos < b.len() {
            match b[pos] {
                b'Z' | b'z' => pos += 1,
                sign @ (b'+' | b'-') => {
                    pos += 1;
                    let oh = digits(b, 2, pos).ok_or_else(fail)?;
                    pos += 2;
                    let om = if b.get(pos) == Some(&b':') {
                        pos += 1;
                        let v = digits(b, 2, pos).ok_or_else(fail)?;
                        pos += 2;
                        v
                    } else if pos + 2 <= b.len() && b[pos].is_ascii_digit() {
                        let v = digits(b, 2, pos).ok_or_else(fail)?;
                        pos += 2;
                        v
                    } else {
                        0
                    };
                    let offset = (oh * 60 + om) * 60_000;
                    millis += if sign == b'+' { -offset } else { offset };
                }
                _ => return Err(fail()),
            }
        }
    }
    if pos != b.len() {
        return Err(fail());
    }
    Ok(millis)
}

/// Formats epoch milliseconds as `YYYY-MM-DDTHH:MM:SS.fffZ` (UTC).
pub fn format_iso8601(millis: i64) -> String {
    let days = millis.div_euclid(86_400_000);
    let rem = millis.rem_euclid(86_400_000);
    let (y, m, d) = civil_from_days(days);
    let (hh, rem) = (rem / 3_600_000, rem % 3_600_000);
    let (mi, rem) = (rem / 60_000, rem % 60_000);
    let (ss, ms) = (rem / 1000, rem % 1000);
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mi:02}:{ss:02}.{ms:03}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(parse_iso8601("1970-01-01T00:00:00Z").unwrap(), 0);
        assert_eq!(parse_iso8601("1970-01-01").unwrap(), 0);
    }

    #[test]
    fn known_instants() {
        // 2017-02-01T09:30:15.250+01:00 == 2017-02-01T08:30:15.250Z
        let t = parse_iso8601("2017-02-01T09:30:15.250+01:00").unwrap();
        assert_eq!(format_iso8601(t), "2017-02-01T08:30:15.250Z");
        // Negative offset moves forward.
        let t2 = parse_iso8601("2017-02-01T09:30:15.250-01:00").unwrap();
        assert_eq!(t2 - t, 2 * 3600 * 1000);
    }

    #[test]
    fn fractional_precision_truncates_to_millis() {
        let a = parse_iso8601("2000-01-01T00:00:00.1Z").unwrap();
        let b = parse_iso8601("2000-01-01T00:00:00.100Z").unwrap();
        let c = parse_iso8601("2000-01-01T00:00:00.100999Z").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn round_trip_across_eras() {
        for &t in &[
            0i64,
            1,
            -1,
            1_000_123,
            1_485_938_415_250,
            -86_400_000,
            253_402_300_799_999, // 9999-12-31T23:59:59.999Z
            -2_208_988_800_000,  // 1900-01-01
        ] {
            let s = format_iso8601(t);
            assert_eq!(parse_iso8601(&s).unwrap(), t, "round trip failed for {s}");
        }
    }

    #[test]
    fn compact_and_hour_only_offsets() {
        let colon = parse_iso8601("2020-06-15T12:00:00+0530").unwrap();
        let compact = parse_iso8601("2020-06-15T12:00:00+05:30").unwrap();
        assert_eq!(colon, compact);
        let hour = parse_iso8601("2020-06-15T12:00:00+05").unwrap();
        assert_eq!(hour - compact, 30 * 60_000);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "not-a-date",
            "2020-13-01",
            "2020-01-32",
            "2020-01-01T25:00:00Z",
            "2020-01-01T00:61:00Z",
            "2020-01-01X00:00:00Z",
            "2020-01-01T00:00:00.Z",
            "2020-01-01T00:00:00Q",
            "2020-01-01T00:00:00Ztrailing",
        ] {
            assert!(parse_iso8601(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn impossible_calendar_dates_are_rejected() {
        // Regression: these used to parse and silently normalize into the
        // following month via days_from_civil.
        for bad in [
            "2021-02-30",
            "2021-02-29", // 2021 is not a leap year
            "2100-02-29", // century non-leap year
            "2021-04-31",
            "2021-06-31",
            "2021-09-31",
            "2021-11-31",
            "2021-02-30T00:00:00Z",
            "2021-04-31T12:00:00+01:00",
        ] {
            assert!(parse_iso8601(bad).is_err(), "accepted impossible date {bad:?}");
        }
        // The matching valid dates still parse.
        for good in ["2020-02-29", "2000-02-29", "2021-04-30", "2021-12-31"] {
            assert!(parse_iso8601(good).is_ok(), "rejected valid date {good:?}");
        }
    }

    #[test]
    fn leap_second_folds_into_next_minute() {
        // Explicit policy: second 60 is accepted and normalizes to the first
        // instant of the following minute; 61+ is rejected.
        let leap = parse_iso8601("2016-12-31T23:59:60Z").unwrap();
        let next = parse_iso8601("2017-01-01T00:00:00Z").unwrap();
        assert_eq!(leap, next);
        let with_frac = parse_iso8601("2016-12-31T23:59:60.500Z").unwrap();
        assert_eq!(with_frac, next + 500);
        assert!(parse_iso8601("2016-12-31T23:59:61Z").is_err());
    }

    #[test]
    fn space_separator_accepted() {
        let a = parse_iso8601("2020-01-01 10:00:00Z").unwrap();
        let b = parse_iso8601("2020-01-01T10:00:00Z").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn leap_year_handling() {
        let feb29 = parse_iso8601("2020-02-29T00:00:00Z").unwrap();
        let mar01 = parse_iso8601("2020-03-01T00:00:00Z").unwrap();
        assert_eq!(mar01 - feb29, 86_400_000);
        assert_eq!(format_iso8601(feb29), "2020-02-29T00:00:00.000Z");
    }
}
