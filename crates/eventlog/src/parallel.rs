//! Opt-in parallel execution of the ingestion hot paths.
//!
//! Built with the `rayon` cargo feature, the per-chunk stages of the XES
//! and CSV importers — trace-chunk parsing and CSV row sniffing — fan out
//! over all cores. Without the feature every function here degenerates to
//! its serial form and [`set_parallel`] is a no-op, so callers never need
//! `cfg` guards. This mirrors `gecco_core::parallel`, which owns the same
//! toggle for the candidate-generation hot path; the two toggles are
//! independent so benchmarks can A/B one stage at a time.
//!
//! Parallel ingestion is **bit-identical** to serial ingestion: chunks are
//! parsed into fragments with thread-local interners and merged in document
//! order, so symbol and class-id assignment never depends on the worker
//! count (asserted by `tests/ingest_equivalence.rs`).

// gecco-lint: allow-file(unordered-par) — this module IS the ingestion-side order-preserving
// seam: chunk results are merged in document order, proven bit-identical to serial ingestion
// by the xes/csv equivalence tests
#[cfg(feature = "rayon")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "rayon")]
static PARALLEL: AtomicBool = AtomicBool::new(true);

/// Enables or disables parallel ingestion process-wide.
///
/// Without the `rayon` feature this is a no-op and ingestion is always
/// serial. Results are identical either way; only wall-clock time changes.
pub fn set_parallel(enabled: bool) {
    #[cfg(feature = "rayon")]
    PARALLEL.store(enabled, Ordering::Relaxed);
    #[cfg(not(feature = "rayon"))]
    let _ = enabled;
}

/// Whether parallel ingestion is compiled in *and* currently enabled.
pub fn parallel_enabled() -> bool {
    #[cfg(feature = "rayon")]
    {
        PARALLEL.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "rayon"))]
    {
        false
    }
}

/// Number of workers a parallel fan-out would use right now (1 when
/// parallelism is compiled out, disabled, or the machine has one core).
pub(crate) fn worker_count() -> usize {
    #[cfg(feature = "rayon")]
    {
        if parallel_enabled() {
            rayon::current_num_threads()
        } else {
            1
        }
    }
    #[cfg(not(feature = "rayon"))]
    {
        1
    }
}

/// Maps `f` over `items`, in parallel when enabled and there are at least
/// `min_items` of them; output order always matches input order.
pub(crate) fn par_map<T, R, F>(items: &[T], min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    #[cfg(feature = "rayon")]
    {
        use rayon::prelude::*;
        if parallel_enabled() && items.len() >= min_items && rayon::current_num_threads() > 1 {
            return items.par_iter().map(f).collect();
        }
    }
    let _ = min_items;
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&items, 1, |&x| x * 3);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn toggle_round_trips() {
        let initial = parallel_enabled();
        set_parallel(false);
        assert!(!parallel_enabled());
        assert_eq!(worker_count(), 1);
        set_parallel(true);
        assert_eq!(parallel_enabled(), cfg!(feature = "rayon"));
        set_parallel(initial);
    }
}
