//! Directly-follows graphs.
//!
//! The DFG of a log (§III-A) has the event classes as vertices and an edge
//! `a → b` iff some trace contains an event of class `a` immediately
//! followed by one of class `b`. Edge and node frequencies are kept because
//! the discovery substrate and the spectral baseline weight by them.

use crate::classes::{ClassId, ClassSet};
use crate::index::LogIndex;
use crate::log::EventLog;

/// A frequency-annotated directly-follows graph over `|C_L|` classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfg {
    n: usize,
    /// Row-major `n × n` matrix of directly-follows counts.
    counts: Vec<u64>,
    /// Number of occurrences per class.
    class_counts: Vec<u64>,
    /// How often each class starts a trace.
    start_counts: Vec<u64>,
    /// How often each class ends a trace.
    end_counts: Vec<u64>,
}

impl Dfg {
    /// Builds the DFG of `log`.
    pub fn from_log(log: &EventLog) -> Dfg {
        let n = log.num_classes();
        let mut dfg = Dfg {
            n,
            counts: vec![0; n * n],
            class_counts: vec![0; n],
            start_counts: vec![0; n],
            end_counts: vec![0; n],
        };
        for trace in log.traces() {
            let events = trace.events();
            if let Some(first) = events.first() {
                dfg.start_counts[first.class().index()] += 1;
            }
            if let Some(last) = events.last() {
                dfg.end_counts[last.class().index()] += 1;
            }
            for e in events {
                dfg.class_counts[e.class().index()] += 1;
            }
            for pair in events.windows(2) {
                let (a, b) = (pair[0].class().index(), pair[1].class().index());
                dfg.counts[a * n + b] += 1;
            }
        }
        dfg
    }

    /// Builds the DFG from `log`'s [`LogIndex`] postings instead of
    /// rescanning the traces, bit-identical to [`Dfg::from_log`] (asserted
    /// by the tests below and the `graph_equivalence` suite in gecco-core).
    ///
    /// The postings already carry every `(trace, position, class)` triple,
    /// so the class sequence of each trace is reconstructed by scattering
    /// class ids into a dense per-log array — one pass over the postings
    /// plus one pass over that array, never touching an event struct or its
    /// attribute vector. On the Step-1 hot path (Algorithms 2 and 3 both
    /// build a DFG per run) this replaces the cache-unfriendly event walk
    /// of [`Dfg::from_log`]; `bench_candidates`'s `dfg_build` group
    /// compares the two.
    ///
    /// `index` must have been built from `log`.
    pub fn from_index(log: &EventLog, index: &LogIndex) -> Dfg {
        let n = log.num_classes();
        // Prefix-sum the trace lengths so every (trace, position) posting
        // maps to one slot of a flat class-sequence array.
        let traces = log.traces();
        let mut offsets = Vec::with_capacity(traces.len() + 1);
        let mut total = 0usize;
        for t in traces {
            offsets.push(total);
            total += t.len();
        }
        offsets.push(total);
        let mut seq = vec![0u16; total];
        let mut class_counts = vec![0u64; n];
        for (c, count) in class_counts.iter_mut().enumerate() {
            let id = ClassId(c as u16);
            *count = index.class_occurrences(id) as u64;
            for (trace, positions) in index.postings(id) {
                let base = offsets[trace as usize];
                for &p in positions {
                    seq[base + p as usize] = c as u16;
                }
            }
        }
        let mut dfg = Dfg {
            n,
            counts: vec![0; n * n],
            class_counts,
            start_counts: vec![0; n],
            end_counts: vec![0; n],
        };
        for t in 0..traces.len() {
            let classes = &seq[offsets[t]..offsets[t + 1]];
            if let Some(&first) = classes.first() {
                dfg.start_counts[first as usize] += 1;
            }
            if let Some(&last) = classes.last() {
                dfg.end_counts[last as usize] += 1;
            }
            for pair in classes.windows(2) {
                dfg.counts[pair[0] as usize * n + pair[1] as usize] += 1;
            }
        }
        dfg
    }

    /// Number of vertices (event classes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Directly-follows count of the edge `a → b`.
    #[inline]
    pub fn count(&self, a: ClassId, b: ClassId) -> u64 {
        self.counts[a.index() * self.n + b.index()]
    }

    /// Whether `a >_L b` holds.
    #[inline]
    pub fn follows(&self, a: ClassId, b: ClassId) -> bool {
        self.count(a, b) > 0
    }

    /// Total occurrences of class `c` in the log.
    #[inline]
    pub fn class_count(&self, c: ClassId) -> u64 {
        self.class_counts[c.index()]
    }

    /// How often `c` starts a trace.
    pub fn start_count(&self, c: ClassId) -> u64 {
        self.start_counts[c.index()]
    }

    /// How often `c` ends a trace.
    pub fn end_count(&self, c: ClassId) -> u64 {
        self.end_counts[c.index()]
    }

    /// All vertices.
    pub fn nodes(&self) -> impl Iterator<Item = ClassId> {
        (0..self.n as u16).map(ClassId)
    }

    /// Direct successors of `a` (classes `b` with `a >_L b`).
    pub fn successors(&self, a: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        let row = a.index() * self.n;
        (0..self.n).filter(move |&j| self.counts[row + j] > 0).map(|j| ClassId(j as u16))
    }

    /// Direct predecessors of `a`.
    pub fn predecessors(&self, a: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        let col = a.index();
        (0..self.n).filter(move |&i| self.counts[i * self.n + col] > 0).map(|i| ClassId(i as u16))
    }

    /// All edges `(a, b, count)` with positive count.
    pub fn edges(&self) -> impl Iterator<Item = (ClassId, ClassId, u64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                let c = self.counts[i * self.n + j];
                (c > 0).then_some((ClassId(i as u16), ClassId(j as u16), c))
            })
        })
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The *preset* of a group: classes outside `group` with an edge into it
    /// (Algorithm 3, `DFG.pre(g)`).
    pub fn preset(&self, group: &ClassSet) -> ClassSet {
        let mut pre = ClassSet::new();
        for member in group.iter() {
            for p in self.predecessors(member) {
                if !group.contains(p) {
                    pre.insert(p);
                }
            }
        }
        pre
    }

    /// The *postset* of a group: classes outside `group` reachable by one
    /// edge from it (Algorithm 3, `DFG.post(g)`).
    pub fn postset(&self, group: &ClassSet) -> ClassSet {
        let mut post = ClassSet::new();
        for member in group.iter() {
            for s in self.successors(member) {
                if !group.contains(s) {
                    post.insert(s);
                }
            }
        }
        post
    }

    /// Whether two groups are *exclusive*: no DFG edge connects them in
    /// either direction (Algorithm 3, `exclusive(g_i, g_j)`).
    pub fn exclusive(&self, a: &ClassSet, b: &ClassSet) -> bool {
        for x in a.iter() {
            for y in b.iter() {
                if self.follows(x, y) || self.follows(y, x) {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the graph in Graphviz DOT format with frequency labels.
    pub fn to_dot(&self, log: &EventLog) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph dfg {\n  rankdir=LR;\n  node [shape=box];\n");
        for c in self.nodes() {
            if self.class_count(c) > 0 {
                let _ = writeln!(
                    out,
                    "  \"{}\" [label=\"{}\\n{}\"];",
                    log.class_name(c),
                    log.class_name(c),
                    self.class_count(c)
                );
            }
        }
        for (a, b, cnt) in self.edges() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                log.class_name(a),
                log.class_name(b),
                cnt
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogBuilder;

    fn log_from(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("c{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    #[test]
    fn counts_and_follows() {
        let log = log_from(&[&["a", "b", "c"], &["a", "b", "b"]]);
        let dfg = Dfg::from_log(&log);
        let (a, b, c) = (
            log.class_by_name("a").unwrap(),
            log.class_by_name("b").unwrap(),
            log.class_by_name("c").unwrap(),
        );
        assert_eq!(dfg.count(a, b), 2);
        assert_eq!(dfg.count(b, c), 1);
        assert_eq!(dfg.count(b, b), 1);
        assert!(!dfg.follows(c, a));
        assert_eq!(dfg.class_count(b), 3);
        assert_eq!(dfg.start_count(a), 2);
        assert_eq!(dfg.end_count(c), 1);
        assert_eq!(dfg.end_count(b), 1);
        assert_eq!(dfg.num_edges(), 3);
    }

    #[test]
    fn successors_predecessors() {
        let log = log_from(&[&["a", "b"], &["a", "c"]]);
        let dfg = Dfg::from_log(&log);
        let a = log.class_by_name("a").unwrap();
        let succ: Vec<_> = dfg.successors(a).map(|c| log.class_name(c).to_string()).collect();
        assert_eq!(succ, vec!["b", "c"]);
        let b = log.class_by_name("b").unwrap();
        let pred: Vec<_> = dfg.predecessors(b).map(|c| log.class_name(c).to_string()).collect();
        assert_eq!(pred, vec!["a"]);
    }

    #[test]
    fn group_pre_post_and_exclusive() {
        // Running-example fragment: rcp -> {ckc|ckt} -> acc
        let log = log_from(&[&["rcp", "ckc", "acc"], &["rcp", "ckt", "acc"]]);
        let dfg = Dfg::from_log(&log);
        let ckc = log.class_by_name("ckc").unwrap();
        let ckt = log.class_by_name("ckt").unwrap();
        let rcp = log.class_by_name("rcp").unwrap();
        let acc = log.class_by_name("acc").unwrap();
        let checks: ClassSet = [ckc, ckt].into_iter().collect();
        assert_eq!(dfg.preset(&checks), ClassSet::singleton(rcp));
        assert_eq!(dfg.postset(&checks), ClassSet::singleton(acc));
        assert!(dfg.exclusive(&ClassSet::singleton(ckc), &ClassSet::singleton(ckt)));
        assert!(!dfg.exclusive(&ClassSet::singleton(rcp), &ClassSet::singleton(ckc)));
    }

    #[test]
    fn preset_excludes_internal_edges() {
        let log = log_from(&[&["a", "b", "c", "a"]]);
        let dfg = Dfg::from_log(&log);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        let c = log.class_by_name("c").unwrap();
        let ab: ClassSet = [a, b].into_iter().collect();
        // c -> a is the only incoming edge from outside {a, b}.
        assert_eq!(dfg.preset(&ab), ClassSet::singleton(c));
        assert_eq!(dfg.postset(&ab), ClassSet::singleton(c));
    }

    #[test]
    fn from_index_matches_from_log() {
        let logs = [
            log_from(&[&["a", "b", "c"], &["a", "b", "b"]]),
            log_from(&[&["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"]]),
            log_from(&[&["x"], &[], &["y", "x", "y", "y"]]),
            log_from(&[]),
        ];
        for log in &logs {
            let index = crate::index::LogIndex::build(log);
            assert_eq!(Dfg::from_index(log, &index), Dfg::from_log(log));
        }
    }

    #[test]
    fn from_index_on_spliced_index() {
        // The index handed out of an incremental splice must drive the
        // same DFG as a scan of the rewritten log.
        let log = log_from(&[&["a"], &["a"]]);
        let mut splicer = crate::index::IndexSplicer::new();
        let a = log.class_by_name("a").unwrap();
        splicer.begin_trace();
        splicer.push(a, 0);
        splicer.begin_trace();
        splicer.push(a, 0);
        let spliced = splicer.finish();
        assert_eq!(Dfg::from_index(&log, &spliced), Dfg::from_log(&log));
    }

    #[test]
    fn dot_rendering_mentions_all_nodes() {
        let log = log_from(&[&["a", "b"]]);
        let dfg = Dfg::from_log(&log);
        let dot = dfg.to_dot(&log);
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.starts_with("digraph dfg {"));
    }
}
