//! Traces: single process executions.

use crate::classes::{ClassId, ClassSet};
use crate::event::Event;
use crate::interner::Symbol;
use crate::value::AttributeValue;

/// One trace `σ ∈ E*` (§III-A): the ordered sequence of events of a single
/// case, plus case-level attributes (e.g. the case id).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    attributes: Vec<(Symbol, AttributeValue)>,
    events: Vec<Event>,
}

impl Trace {
    /// Creates a trace from case attributes and events.
    pub fn new(attributes: Vec<(Symbol, AttributeValue)>, events: Vec<Event>) -> Self {
        Trace { attributes, events }
    }

    /// The events of the trace, in order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events, `|σ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Case-level attribute lookup.
    pub fn attribute(&self, key: Symbol) -> Option<&AttributeValue> {
        self.attributes.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// All case-level attributes.
    pub fn attributes(&self) -> &[(Symbol, AttributeValue)] {
        &self.attributes
    }

    /// The sequence of event classes (the trace's *variant* signature).
    pub fn class_sequence(&self) -> Vec<ClassId> {
        self.events.iter().map(Event::class).collect()
    }

    /// The set of classes occurring in this trace. Used for the group
    /// co-occurrence pruning of Algorithm 1 (line 13).
    pub fn class_set(&self) -> ClassSet {
        self.events.iter().map(Event::class).collect()
    }

    /// Whether every class of `group` occurs at least once in the trace
    /// (`occurs(g, σ)`).
    pub fn covers(&self, group: &ClassSet) -> bool {
        group.is_subset(&self.class_set())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(c: u16) -> Event {
        Event::new(ClassId(c), vec![])
    }

    #[test]
    fn class_sequence_and_set() {
        let t = Trace::new(vec![], vec![ev(0), ev(1), ev(0)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.class_sequence(), vec![ClassId(0), ClassId(1), ClassId(0)]);
        assert_eq!(t.class_set().len(), 2);
    }

    #[test]
    fn covers_requires_all_members() {
        let t = Trace::new(vec![], vec![ev(0), ev(1)]);
        let mut g = ClassSet::singleton(ClassId(0));
        assert!(t.covers(&g));
        g.insert(ClassId(2));
        assert!(!t.covers(&g));
        assert!(t.covers(&ClassSet::EMPTY));
    }

    #[test]
    fn case_attributes() {
        let t = Trace::new(vec![(Symbol(0), AttributeValue::Int(9))], vec![]);
        assert!(t.is_empty());
        assert_eq!(t.attribute(Symbol(0)), Some(&AttributeValue::Int(9)));
        assert_eq!(t.attribute(Symbol(1)), None);
    }
}
