//! Summary statistics of a log, as reported in the paper's Table III.

use crate::log::EventLog;
use crate::variants::Variants;

/// Key characteristics of a log: the columns of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct LogStats {
    /// Number of distinct event classes, `|C_L|`.
    pub num_classes: usize,
    /// Number of traces.
    pub num_traces: usize,
    /// Number of distinct trace variants.
    pub num_variants: usize,
    /// Total number of events, `|E|`.
    pub num_events: usize,
    /// Average trace length, `Avg |σ|`.
    pub avg_trace_len: f64,
    /// Number of DFG edges (complexity indicator used in §VI-D).
    pub num_dfg_edges: usize,
}

impl LogStats {
    /// Computes the statistics of `log`.
    pub fn from_log(log: &EventLog) -> LogStats {
        let num_traces = log.traces().len();
        let num_events = log.num_events();
        let dfg = crate::dfg::Dfg::from_log(log);
        LogStats {
            num_classes: log.num_classes(),
            num_traces,
            num_variants: Variants::from_log(log).len(),
            num_events,
            avg_trace_len: if num_traces == 0 {
                0.0
            } else {
                num_events as f64 / num_traces as f64
            },
            num_dfg_edges: dfg.num_edges(),
        }
    }

    /// Renders one Table-III-style row: `|C_L|  Traces  Variants  |E|  Avg|σ|`.
    pub fn table_row(&self) -> String {
        format!(
            "{:>5} {:>9} {:>9} {:>10} {:>8.2}",
            self.num_classes,
            self.num_traces,
            self.num_variants,
            self.num_events,
            self.avg_trace_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogBuilder;

    #[test]
    fn stats_of_small_log() {
        let mut b = LogBuilder::new();
        b.trace("c1").event("a").unwrap().event("b").unwrap().done();
        b.trace("c2").event("a").unwrap().event("b").unwrap().done();
        b.trace("c3").event("a").unwrap().done();
        let s = LogStats::from_log(&b.build());
        assert_eq!(s.num_classes, 2);
        assert_eq!(s.num_traces, 3);
        assert_eq!(s.num_variants, 2);
        assert_eq!(s.num_events, 5);
        assert!((s.avg_trace_len - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.num_dfg_edges, 1);
    }

    #[test]
    fn empty_log_stats() {
        let s = LogStats::from_log(&LogBuilder::new().build());
        assert_eq!(s.num_traces, 0);
        assert_eq!(s.avg_trace_len, 0.0);
    }

    #[test]
    fn table_row_is_aligned() {
        let mut b = LogBuilder::new();
        b.trace("c").event("a").unwrap().done();
        let row = LogStats::from_log(&b.build()).table_row();
        assert!(row.contains('1'));
        assert!(row.split_whitespace().count() == 5);
    }
}
