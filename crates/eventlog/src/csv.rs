//! CSV import/export for event logs.
//!
//! Many real-world logs (including several 4TU datasets) ship as CSV with
//! one event per row. The importer expects a header row naming at least the
//! case and activity columns; remaining columns become event attributes.
//! Values are typed by sniffing: ISO-8601 → timestamp, integer → int,
//! float → float, `true`/`false` → bool, otherwise string.

use crate::error::{Error, Result};
use crate::log::{EventLog, LogBuilder};
use crate::time::parse_iso8601;

/// Column configuration for [`read_str`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Name of the case-id column.
    pub case_column: String,
    /// Name of the activity (event-class) column.
    pub activity_column: String,
    /// Field delimiter.
    pub delimiter: char,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            case_column: "case:concept:name".into(),
            activity_column: "concept:name".into(),
            delimiter: ',',
        }
    }
}

/// Splits one CSV record, honoring quotes. Returns the fields and the number
/// of input lines consumed (quoted fields may span lines).
fn split_record(lines: &[&str], start: usize, delim: char) -> Result<(Vec<String>, usize)> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut li = start;
    let mut chars: Vec<char> = lines[li].chars().collect();
    let mut ci = 0;
    loop {
        if ci >= chars.len() {
            if in_quotes {
                li += 1;
                if li >= lines.len() {
                    return Err(Error::Csv {
                        line: start + 1,
                        message: "unterminated quote".into(),
                    });
                }
                field.push('\n');
                chars = lines[li].chars().collect();
                ci = 0;
                continue;
            }
            fields.push(std::mem::take(&mut field));
            return Ok((fields, li - start + 1));
        }
        let c = chars[ci];
        if in_quotes {
            if c == '"' {
                if chars.get(ci + 1) == Some(&'"') {
                    field.push('"');
                    ci += 2;
                } else {
                    in_quotes = false;
                    ci += 1;
                }
            } else {
                field.push(c);
                ci += 1;
            }
        } else if c == '"' && field.is_empty() {
            in_quotes = true;
            ci += 1;
        } else if c == delim {
            fields.push(std::mem::take(&mut field));
            ci += 1;
        } else {
            field.push(c);
            ci += 1;
        }
    }
}

/// Parses a CSV document into an event log. Rows are grouped into traces by
/// the case column, preserving row order within each case.
pub fn read_str(input: &str, options: &CsvOptions) -> Result<EventLog> {
    let lines: Vec<&str> = input.lines().collect();
    if lines.is_empty() {
        return Ok(LogBuilder::new().build());
    }
    let (header, mut row_start) = split_record(&lines, 0, options.delimiter)?;
    let case_idx = header.iter().position(|h| *h == options.case_column).ok_or_else(|| {
        Error::Csv { line: 1, message: format!("missing case column {:?}", options.case_column) }
    })?;
    let act_idx =
        header.iter().position(|h| *h == options.activity_column).ok_or_else(|| Error::Csv {
            line: 1,
            message: format!("missing activity column {:?}", options.activity_column),
        })?;

    // Collect rows per case, in first-seen case order.
    let mut case_order: Vec<String> = Vec::new();
    let mut rows_by_case: std::collections::HashMap<String, Vec<Vec<String>>> =
        std::collections::HashMap::new();
    while row_start < lines.len() {
        if lines[row_start].trim().is_empty() {
            row_start += 1;
            continue;
        }
        let (fields, consumed) = split_record(&lines, row_start, options.delimiter)?;
        if fields.len() != header.len() {
            return Err(Error::Csv {
                line: row_start + 1,
                message: format!("expected {} fields, found {}", header.len(), fields.len()),
            });
        }
        let case = fields[case_idx].clone();
        if !rows_by_case.contains_key(&case) {
            case_order.push(case.clone());
        }
        rows_by_case.entry(case).or_default().push(fields);
        row_start += consumed;
    }

    let mut builder = LogBuilder::new();
    for case in case_order {
        let rows = rows_by_case.remove(&case).expect("case registered above");
        let mut tb = builder.trace(&case);
        for row in rows {
            let class = row[act_idx].clone();
            tb = tb.event_with(&class, |e| {
                for (i, value) in row.iter().enumerate() {
                    if i == case_idx || i == act_idx {
                        continue;
                    }
                    let key = &header[i];
                    if value.is_empty() {
                        continue;
                    }
                    if let Ok(ts) = parse_iso8601(value) {
                        e.timestamp(key, ts);
                    } else if let Ok(i64v) = value.parse::<i64>() {
                        e.int(key, i64v);
                    } else if let Ok(f64v) = value.parse::<f64>() {
                        e.float(key, f64v);
                    } else if value == "true" || value == "false" {
                        e.bool(key, value == "true");
                    } else {
                        e.str(key, value);
                    }
                }
            })?;
        }
        tb.done();
    }
    Ok(builder.build())
}

/// Reads a CSV file from disk.
pub fn read_file(path: impl AsRef<std::path::Path>, options: &CsvOptions) -> Result<EventLog> {
    read_str(&std::fs::read_to_string(path)?, options)
}

fn quote(field: &str, delim: char) -> String {
    if field.contains(delim) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes a log to CSV with columns
/// `case:concept:name, concept:name, <union of event attribute keys>`.
pub fn write_string(log: &EventLog) -> String {
    // Collect the union of event-attribute keys (excluding concept:name).
    let mut keys: Vec<crate::Symbol> = Vec::new();
    for trace in log.traces() {
        for event in trace.events() {
            for (k, _) in event.attributes() {
                if *k != log.std_keys().concept_name && !keys.contains(k) {
                    keys.push(*k);
                }
            }
        }
    }
    keys.sort_by_key(|k| log.resolve(*k).to_string());
    let mut out = String::new();
    out.push_str("case:concept:name,concept:name");
    for k in &keys {
        out.push(',');
        out.push_str(&quote(log.resolve(*k), ','));
    }
    out.push('\n');
    for (i, trace) in log.traces().iter().enumerate() {
        let case = trace
            .attribute(log.std_keys().concept_name)
            .and_then(|v| v.as_symbol())
            .map(|s| log.resolve(s).to_string())
            .unwrap_or_else(|| format!("case-{i}"));
        for event in trace.events() {
            out.push_str(&quote(&case, ','));
            out.push(',');
            out.push_str(&quote(log.class_name(event.class()), ','));
            for k in &keys {
                out.push(',');
                if let Some(v) = event.attribute(*k) {
                    out.push_str(&quote(&v.display(log.interner()).to_string(), ','));
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttributeValue;

    #[test]
    fn basic_import_groups_by_case() {
        let csv = "case:concept:name,concept:name,cost\nc1,a,5\nc2,a,1\nc1,b,2\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(log.traces().len(), 2);
        assert_eq!(log.traces()[0].len(), 2); // c1: a, b
        assert_eq!(log.traces()[1].len(), 1);
        let e = &log.traces()[0].events()[1];
        assert_eq!(log.class_name(e.class()), "b");
        assert_eq!(e.attribute(log.key("cost").unwrap()), Some(&AttributeValue::Int(2)));
    }

    #[test]
    fn type_sniffing() {
        let csv = "case:concept:name,concept:name,when,x,y,flag,label\n\
                   c,a,2021-01-01T00:00:00Z,3,2.5,true,hello\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        let e = &log.traces()[0].events()[0];
        assert!(matches!(
            e.attribute(log.key("when").unwrap()),
            Some(AttributeValue::Timestamp(_))
        ));
        assert_eq!(e.attribute(log.key("x").unwrap()), Some(&AttributeValue::Int(3)));
        assert_eq!(e.attribute(log.key("y").unwrap()), Some(&AttributeValue::Float(2.5)));
        assert_eq!(e.attribute(log.key("flag").unwrap()), Some(&AttributeValue::Bool(true)));
        let label = e.attribute(log.key("label").unwrap()).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(label), "hello");
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "case:concept:name,concept:name,note\nc,\"a, really\",\"say \"\"hi\"\"\"\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        assert!(log.class_by_name("a, really").is_some());
        let e = &log.traces()[0].events()[0];
        let note = e.attribute(log.key("note").unwrap()).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(note), "say \"hi\"");
    }

    #[test]
    fn missing_columns_are_errors() {
        let err = read_str("a,b\n1,2\n", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("case column"));
        let err = read_str("case:concept:name,b\n1,2\n", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("activity column"));
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let err = read_str("case:concept:name,concept:name\nc1,a\nc1\n", &CsvOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn round_trip() {
        let csv = "case:concept:name,concept:name,cost\nc1,a,5\nc1,b,7\nc2,a,1\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        let out = write_string(&log);
        let log2 = read_str(&out, &CsvOptions::default()).unwrap();
        assert_eq!(log2.traces().len(), 2);
        assert_eq!(log2.num_events(), 3);
        let e = &log2.traces()[0].events()[1];
        assert_eq!(e.attribute(log2.key("cost").unwrap()), Some(&AttributeValue::Int(7)));
    }

    #[test]
    fn empty_input_is_empty_log() {
        let log = read_str("", &CsvOptions::default()).unwrap();
        assert_eq!(log.traces().len(), 0);
    }

    #[test]
    fn custom_delimiter() {
        let csv = "case:concept:name;concept:name\nc;a\n";
        let opts = CsvOptions { delimiter: ';', ..CsvOptions::default() };
        let log = read_str(csv, &opts).unwrap();
        assert_eq!(log.num_events(), 1);
    }
}
