//! CSV import/export for event logs — chunked like the XES pipeline.
//!
//! Many real-world logs (including several 4TU datasets) ship as CSV with
//! one event per row. The importer expects a header row naming at least the
//! case and activity columns; remaining columns become event attributes.
//! Values are typed by sniffing: ISO-8601 → timestamp, integer → int,
//! float → float, `true`/`false` → bool, otherwise string.
//!
//! Import runs in three phases. Phase A splits the input into records with
//! a single quote-aware byte scan — unquoted fields are *borrowed* slices
//! of the input, only quoted fields (escape/newline normalization) ever
//! allocate. Phase B sniffs and locally interns record chunks — in parallel
//! under the `rayon` feature (type sniffing, i.e. the timestamp/number
//! parse attempts, dominates import time). Phase C merges the chunk
//! interners in order via [`LogBuilder::merge_interner`] — the same
//! fragment-merge machinery the XES reader uses — and groups rows into
//! traces by case, in first-seen order. Chunk boundaries never influence
//! the result: serial and parallel imports are bit-identical
//! (`tests/ingest_equivalence.rs`).

use crate::error::{Error, Result};
use crate::interner::{Interner, Symbol};
use crate::log::{remap_attr, EventLog, LogBuilder};
use crate::parallel;
use crate::time::parse_iso8601;
use crate::value::AttributeValue;
use std::borrow::Cow;

/// Column configuration for [`read_str`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Name of the case-id column.
    pub case_column: String,
    /// Name of the activity (event-class) column.
    pub activity_column: String,
    /// Field delimiter.
    pub delimiter: char,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            case_column: "case:concept:name".into(),
            activity_column: "concept:name".into(),
            delimiter: ',',
        }
    }
}

/// How one field ended: at a delimiter, or at the end of the record.
enum FieldEnd {
    Delim,
    Record,
}

/// Quote-aware record splitter over the raw input bytes. Unquoted fields
/// are borrowed slices; quoted fields allocate once for unescaping.
struct RecordSplitter<'a> {
    input: &'a str,
    bytes: &'a [u8],
    /// UTF-8 encoding of the delimiter (multi-byte delimiters supported).
    delim: [u8; 4],
    delim_len: usize,
    pos: usize,
    /// 1-based physical line number at `pos`.
    line: usize,
}

impl<'a> RecordSplitter<'a> {
    fn new(input: &'a str, delimiter: char) -> Self {
        let mut delim = [0u8; 4];
        let delim_len = delimiter.encode_utf8(&mut delim).len();
        RecordSplitter { input, bytes: input.as_bytes(), delim, delim_len, pos: 0, line: 1 }
    }

    fn at_delim(&self) -> bool {
        self.bytes[self.pos..].starts_with(&self.delim[..self.delim_len])
    }

    /// Consumes a record terminator (`\r\n`, `\n`, or end of input) at the
    /// current position, updating the line counter.
    fn consume_record_end(&mut self) {
        match self.bytes.get(self.pos) {
            Some(b'\r') if self.bytes.get(self.pos + 1) == Some(&b'\n') => {
                self.pos += 2;
                self.line += 1;
            }
            Some(b'\n') => {
                self.pos += 1;
                self.line += 1;
            }
            _ => {}
        }
    }

    /// Whether the current position starts a record terminator.
    fn at_record_end(&self) -> bool {
        match self.bytes.get(self.pos) {
            None | Some(b'\n') => true,
            Some(b'\r') => self.bytes.get(self.pos + 1) == Some(&b'\n'),
            _ => false,
        }
    }

    /// Parses one unquoted field: a borrowed slice up to the next
    /// delimiter or record end (quotes past the first byte are literal).
    fn unquoted_field(&mut self) -> (Cow<'a, str>, FieldEnd) {
        let start = self.pos;
        loop {
            if self.at_record_end() {
                return (Cow::Borrowed(&self.input[start..self.pos]), FieldEnd::Record);
            }
            if self.at_delim() {
                let field = Cow::Borrowed(&self.input[start..self.pos]);
                self.pos += self.delim_len;
                return (field, FieldEnd::Delim);
            }
            self.pos += 1;
        }
    }

    /// Parses one field that starts with a quote: quoted span with `""`
    /// escapes and embedded (normalized) newlines, then a literal tail up
    /// to the delimiter or record end.
    fn quoted_field(&mut self, record_line: usize) -> Result<(Cow<'a, str>, FieldEnd)> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        let mut seg_start = self.pos;
        // Inside quotes.
        loop {
            match self.bytes.get(self.pos) {
                None => {
                    return Err(Error::Csv {
                        line: record_line,
                        message: "unterminated quote".into(),
                    })
                }
                Some(b'"') => {
                    out.push_str(&self.input[seg_start..self.pos]);
                    if self.bytes.get(self.pos + 1) == Some(&b'"') {
                        out.push('"');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break; // closing quote
                    }
                    seg_start = self.pos;
                }
                Some(b'\r') if self.bytes.get(self.pos + 1) == Some(&b'\n') => {
                    out.push_str(&self.input[seg_start..self.pos]);
                    out.push('\n'); // normalize CRLF inside quotes
                    self.pos += 2;
                    self.line += 1;
                    seg_start = self.pos;
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        // Literal tail after the closing quote (quotes here are literal
        // characters, exactly as in the line-based splitter this replaces).
        let seg_start = self.pos;
        loop {
            if self.at_record_end() {
                out.push_str(&self.input[seg_start..self.pos]);
                return Ok((Cow::Owned(out), FieldEnd::Record));
            }
            if self.at_delim() {
                out.push_str(&self.input[seg_start..self.pos]);
                self.pos += self.delim_len;
                return Ok((Cow::Owned(out), FieldEnd::Delim));
            }
            self.pos += 1;
        }
    }

    /// Reads the next record. When `skip_blank` is set, whitespace-only
    /// lines before the record are skipped (matching the original
    /// line-based splitter, which only did this between body records).
    /// Returns the record's starting line and its fields.
    fn next_record(&mut self, skip_blank: bool) -> Result<Option<(usize, Vec<Cow<'a, str>>)>> {
        if skip_blank {
            while self.pos < self.bytes.len() {
                let line_end = self.bytes[self.pos..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(self.bytes.len(), |i| self.pos + i);
                if self.input[self.pos..line_end].trim().is_empty() {
                    self.pos = line_end;
                    self.consume_record_end();
                } else {
                    break;
                }
            }
        }
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let record_line = self.line;
        let mut fields = Vec::new();
        loop {
            let (field, end) = if self.bytes.get(self.pos) == Some(&b'"') {
                self.quoted_field(record_line)?
            } else {
                self.unquoted_field()
            };
            fields.push(field);
            match end {
                FieldEnd::Delim => {}
                FieldEnd::Record => {
                    self.consume_record_end();
                    return Ok(Some((record_line, fields)));
                }
            }
        }
    }
}

/// One split record: its starting (1-based) line plus its fields.
type Record<'a> = (usize, Vec<Cow<'a, str>>);

/// The events of one trace-in-progress: `(class symbol, attributes)`.
type CaseEvents = Vec<(Symbol, Vec<(Symbol, AttributeValue)>)>;

/// One sniffed row in a chunk fragment's local symbol space.
struct CsvRow {
    case: Symbol,
    class: Symbol,
    attrs: Vec<(Symbol, AttributeValue)>,
}

/// A chunk of sniffed rows with its thread-local interner.
struct CsvFragment {
    interner: Interner,
    rows: Vec<CsvRow>,
}

/// Phase B: types and locally interns one chunk of records.
fn sniff_chunk(
    records: &[Record<'_>],
    header: &[Cow<'_, str>],
    case_idx: usize,
    act_idx: usize,
) -> CsvFragment {
    let mut interner = Interner::new();
    let mut rows = Vec::with_capacity(records.len());
    for (_, fields) in records {
        let case = interner.intern(&fields[case_idx]);
        let class = interner.intern(&fields[act_idx]);
        let mut attrs = Vec::new();
        for (i, value) in fields.iter().enumerate() {
            if i == case_idx || i == act_idx || value.is_empty() {
                continue;
            }
            let key = interner.intern(&header[i]);
            let typed = if let Ok(ts) = parse_iso8601(value) {
                AttributeValue::Timestamp(ts)
            } else if let Ok(i64v) = value.parse::<i64>() {
                AttributeValue::Int(i64v)
            } else if let Ok(f64v) = value.parse::<f64>() {
                AttributeValue::Float(f64v)
            } else if value.as_ref() == "true" || value.as_ref() == "false" {
                AttributeValue::Bool(value.as_ref() == "true")
            } else {
                AttributeValue::Str(interner.intern(value))
            };
            attrs.push((key, typed));
        }
        rows.push(CsvRow { case, class, attrs });
    }
    CsvFragment { interner, rows }
}

/// Minimum number of records before phase B fans out.
const MIN_PARALLEL_RECORDS: usize = 512;

/// Parses a CSV document into an event log. Rows are grouped into traces by
/// the case column, preserving row order within each case; traces appear in
/// first-seen case order.
pub fn read_str(input: &str, options: &CsvOptions) -> Result<EventLog> {
    let mut splitter = RecordSplitter::new(input, options.delimiter);
    // Header (blank lines before it are NOT skipped, matching the original
    // importer).
    let Some((_, header)) = splitter.next_record(false)? else {
        return Ok(LogBuilder::new().build());
    };
    let case_idx = header.iter().position(|h| *h == options.case_column).ok_or_else(|| {
        Error::Csv { line: 1, message: format!("missing case column {:?}", options.case_column) }
    })?;
    let act_idx =
        header.iter().position(|h| *h == options.activity_column).ok_or_else(|| Error::Csv {
            line: 1,
            message: format!("missing activity column {:?}", options.activity_column),
        })?;

    // Phase A: split every record (serial — this is a cheap byte scan) and
    // validate field counts in document order.
    let mut records: Vec<Record<'_>> = Vec::new();
    while let Some((line, fields)) = splitter.next_record(true)? {
        if fields.len() != header.len() {
            return Err(Error::Csv {
                line,
                message: format!("expected {} fields, found {}", header.len(), fields.len()),
            });
        }
        records.push((line, fields));
    }

    // Phase B: sniff + locally intern chunks, in parallel when enabled.
    let workers = parallel::worker_count();
    let chunk_size = records.len().div_ceil(workers.max(1)).max(1);
    let chunks: Vec<&[Record<'_>]> = records.chunks(chunk_size).collect();
    let min_chunks = if records.len() >= MIN_PARALLEL_RECORDS { 2 } else { usize::MAX };
    let fragments =
        parallel::par_map(&chunks, min_chunks, |c| sniff_chunk(c, &header, case_idx, act_idx));

    // Phase C: merge fragments in chunk order, group rows by case.
    let mut builder = LogBuilder::new();
    let concept_key = builder.intern("concept:name");
    let mut case_index: std::collections::HashMap<Symbol, usize> = std::collections::HashMap::new();
    let mut cases: Vec<(Symbol, CaseEvents)> = Vec::new();
    for fragment in fragments {
        let map = builder.merge_interner(&fragment.interner);
        for row in fragment.rows {
            let case = map[row.case.index()];
            let class = map[row.class.index()];
            let attrs: Vec<_> =
                row.attrs.into_iter().map(|(k, v)| remap_attr(&map, k, v)).collect();
            let slot = *case_index.entry(case).or_insert_with(|| {
                cases.push((case, Vec::new()));
                cases.len() - 1
            });
            cases[slot].1.push((class, attrs));
        }
    }
    for (case, events) in cases {
        let attributes = vec![(concept_key, AttributeValue::Str(case))];
        builder.push_trace_symbols(attributes, events)?;
    }
    Ok(builder.build())
}

/// Reads a CSV file from disk.
pub fn read_file(path: impl AsRef<std::path::Path>, options: &CsvOptions) -> Result<EventLog> {
    read_str(&std::fs::read_to_string(path)?, options)
}

fn quote(field: &str, delim: char) -> String {
    if field.contains(delim) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes a log to CSV with columns
/// `case:concept:name, concept:name, <union of event attribute keys>`.
pub fn write_string(log: &EventLog) -> String {
    // Collect the union of event-attribute keys (excluding concept:name).
    let mut keys: Vec<crate::Symbol> = Vec::new();
    for trace in log.traces() {
        for event in trace.events() {
            for (k, _) in event.attributes() {
                if *k != log.std_keys().concept_name && !keys.contains(k) {
                    keys.push(*k);
                }
            }
        }
    }
    keys.sort_by_key(|k| log.resolve(*k).to_string());
    let mut out = String::new();
    out.push_str("case:concept:name,concept:name");
    for k in &keys {
        out.push(',');
        out.push_str(&quote(log.resolve(*k), ','));
    }
    out.push('\n');
    for (i, trace) in log.traces().iter().enumerate() {
        let case = trace
            .attribute(log.std_keys().concept_name)
            .and_then(|v| v.as_symbol())
            .map(|s| log.resolve(s).to_string())
            .unwrap_or_else(|| format!("case-{i}"));
        for event in trace.events() {
            out.push_str(&quote(&case, ','));
            out.push(',');
            out.push_str(&quote(log.class_name(event.class()), ','));
            for k in &keys {
                out.push(',');
                if let Some(v) = event.attribute(*k) {
                    out.push_str(&quote(&v.display(log.interner()).to_string(), ','));
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttributeValue;

    #[test]
    fn basic_import_groups_by_case() {
        let csv = "case:concept:name,concept:name,cost\nc1,a,5\nc2,a,1\nc1,b,2\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(log.traces().len(), 2);
        assert_eq!(log.traces()[0].len(), 2); // c1: a, b
        assert_eq!(log.traces()[1].len(), 1);
        let e = &log.traces()[0].events()[1];
        assert_eq!(log.class_name(e.class()), "b");
        assert_eq!(e.attribute(log.key("cost").unwrap()), Some(&AttributeValue::Int(2)));
    }

    #[test]
    fn type_sniffing() {
        let csv = "case:concept:name,concept:name,when,x,y,flag,label\n\
                   c,a,2021-01-01T00:00:00Z,3,2.5,true,hello\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        let e = &log.traces()[0].events()[0];
        assert!(matches!(
            e.attribute(log.key("when").unwrap()),
            Some(AttributeValue::Timestamp(_))
        ));
        assert_eq!(e.attribute(log.key("x").unwrap()), Some(&AttributeValue::Int(3)));
        assert_eq!(e.attribute(log.key("y").unwrap()), Some(&AttributeValue::Float(2.5)));
        assert_eq!(e.attribute(log.key("flag").unwrap()), Some(&AttributeValue::Bool(true)));
        let label = e.attribute(log.key("label").unwrap()).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(label), "hello");
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "case:concept:name,concept:name,note\nc,\"a, really\",\"say \"\"hi\"\"\"\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        assert!(log.class_by_name("a, really").is_some());
        let e = &log.traces()[0].events()[0];
        let note = e.attribute(log.key("note").unwrap()).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(note), "say \"hi\"");
    }

    #[test]
    fn quoted_field_spanning_lines() {
        let csv = "case:concept:name,concept:name,note\nc,a,\"two\nlines\"\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        let e = &log.traces()[0].events()[0];
        let note = e.attribute(log.key("note").unwrap()).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(note), "two\nlines");
        // CRLF inside quotes normalizes to LF, like the line-based splitter.
        let csv = "case:concept:name,concept:name,note\r\nc,a,\"two\r\nlines\"\r\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        let e = &log.traces()[0].events()[0];
        let note = e.attribute(log.key("note").unwrap()).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(note), "two\nlines");
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = read_str("case:concept:name,concept:name\nc,\"oops\n", &CsvOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("unterminated quote"), "{err}");
    }

    #[test]
    fn missing_columns_are_errors() {
        let err = read_str("a,b\n1,2\n", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("case column"));
        let err = read_str("case:concept:name,b\n1,2\n", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("activity column"));
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let err = read_str("case:concept:name,concept:name\nc1,a\nc1\n", &CsvOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn blank_lines_between_records_are_skipped() {
        let csv = "case:concept:name,concept:name\n\n  \nc1,a\n\nc1,b\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        assert_eq!(log.traces().len(), 1);
        assert_eq!(log.num_events(), 2);
    }

    #[test]
    fn round_trip() {
        let csv = "case:concept:name,concept:name,cost\nc1,a,5\nc1,b,7\nc2,a,1\n";
        let log = read_str(csv, &CsvOptions::default()).unwrap();
        let out = write_string(&log);
        let log2 = read_str(&out, &CsvOptions::default()).unwrap();
        assert_eq!(log2.traces().len(), 2);
        assert_eq!(log2.num_events(), 3);
        let e = &log2.traces()[0].events()[1];
        assert_eq!(e.attribute(log2.key("cost").unwrap()), Some(&AttributeValue::Int(7)));
    }

    #[test]
    fn empty_input_is_empty_log() {
        let log = read_str("", &CsvOptions::default()).unwrap();
        assert_eq!(log.traces().len(), 0);
    }

    #[test]
    fn custom_delimiter() {
        let csv = "case:concept:name;concept:name\nc;a\n";
        let opts = CsvOptions { delimiter: ';', ..CsvOptions::default() };
        let log = read_str(csv, &opts).unwrap();
        assert_eq!(log.num_events(), 1);
    }
}
