//! XES deserialization into an [`EventLog`].

use crate::error::{Error, Result};
use crate::log::{EventLog, LogBuilder};
use crate::time::parse_iso8601;
use crate::value::AttributeValue;
use crate::xes::xml::{XmlEvent, XmlParser};

/// Log-level attribute key under which class-level attributes are persisted
/// (nested-attribute convention, see [`crate::xes::writer`]).
pub const CLASS_ATTR_KEY: &str = "gecco:classattr";

/// Parses an XES document from a string.
pub fn parse_str(input: &str) -> Result<EventLog> {
    Reader::new(input).parse()
}

/// Parses an XES file from disk.
pub fn parse_file(path: impl AsRef<std::path::Path>) -> Result<EventLog> {
    let contents = std::fs::read_to_string(path)?;
    parse_str(&contents)
}

/// A typed attribute parsed from one XES attribute element.
struct RawAttr {
    key: String,
    value: RawValue,
}

enum RawValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Timestamp(i64),
}

struct Reader<'a> {
    parser: XmlParser<'a>,
    builder: LogBuilder,
}

impl<'a> Reader<'a> {
    fn new(input: &'a str) -> Self {
        Reader { parser: XmlParser::new(input), builder: LogBuilder::new() }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Xes { line: self.parser.line(), message: message.into() }
    }

    fn parse(mut self) -> Result<EventLog> {
        // Find the root <log>.
        loop {
            match self.parser.next_event()? {
                Some(XmlEvent::StartElement { name, self_closing, .. }) if name == "log" => {
                    if self_closing {
                        return Ok(self.builder.build());
                    }
                    break;
                }
                Some(XmlEvent::StartElement { self_closing, .. }) => {
                    if !self_closing {
                        self.skip_subtree()?;
                    }
                }
                Some(_) => {}
                None => return Err(self.err("no <log> element found")),
            }
        }
        // Log scope.
        loop {
            match self.parser.next_event()? {
                Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                    match name.as_str() {
                        "trace" => {
                            if !self_closing {
                                self.parse_trace()?;
                            } else {
                                self.builder.trace_raw().done();
                            }
                        }
                        "extension" | "global" | "classifier" => {
                            if !self_closing {
                                self.skip_subtree()?;
                            }
                        }
                        _ => {
                            if let Some(attr) = self.attr_from(&name, &attributes)? {
                                if attr.key == CLASS_ATTR_KEY {
                                    self.parse_class_attrs(&attr, self_closing)?;
                                } else {
                                    if !self_closing {
                                        self.skip_subtree()?;
                                    }
                                    let value = self.intern_value(attr.value);
                                    self.builder.log_attr(&attr.key, value);
                                }
                            } else if !self_closing {
                                self.skip_subtree()?;
                            }
                        }
                    }
                }
                Some(XmlEvent::EndElement { name }) if name == "log" => break,
                Some(XmlEvent::EndElement { .. }) | Some(XmlEvent::Text(_)) => {}
                None => return Err(self.err("unexpected end of input inside <log>")),
            }
        }
        Ok(self.builder.build())
    }

    /// Parses one `<trace>…</trace>` (start tag already consumed).
    fn parse_trace(&mut self) -> Result<()> {
        struct PendingEvent {
            class: String,
            attrs: Vec<RawAttr>,
        }
        let mut trace_attrs: Vec<RawAttr> = Vec::new();
        let mut events: Vec<PendingEvent> = Vec::new();
        loop {
            match self.parser.next_event()? {
                Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                    if name == "event" {
                        let attrs =
                            if self_closing { Vec::new() } else { self.parse_event_attrs()? };
                        let class = attrs
                            .iter()
                            .find(|a| a.key == "concept:name")
                            .and_then(|a| match &a.value {
                                RawValue::Str(s) => Some(s.clone()),
                                _ => None,
                            })
                            .ok_or_else(|| self.err("event without string `concept:name`"))?;
                        events.push(PendingEvent { class, attrs });
                    } else if let Some(attr) = self.attr_from(&name, &attributes)? {
                        if !self_closing {
                            self.skip_subtree()?;
                        }
                        trace_attrs.push(attr);
                    } else if !self_closing {
                        self.skip_subtree()?;
                    }
                }
                Some(XmlEvent::EndElement { name }) if name == "trace" => break,
                Some(_) => {}
                None => return Err(self.err("unexpected end of input inside <trace>")),
            }
        }
        let mut tb = self.builder.trace_raw();
        for a in trace_attrs {
            let v = match a.value {
                RawValue::Str(s) => AttributeValue::Str(tb.intern(&s)),
                RawValue::Int(i) => AttributeValue::Int(i),
                RawValue::Float(f) => AttributeValue::Float(f),
                RawValue::Bool(b) => AttributeValue::Bool(b),
                RawValue::Timestamp(t) => AttributeValue::Timestamp(t),
            };
            tb = tb.attr(&a.key, v);
        }
        for ev in events {
            tb = tb.event_with(&ev.class, |e| {
                for a in &ev.attrs {
                    match &a.value {
                        RawValue::Str(s) => e.str(&a.key, s),
                        RawValue::Int(i) => e.int(&a.key, *i),
                        RawValue::Float(f) => e.float(&a.key, *f),
                        RawValue::Bool(b) => e.bool(&a.key, *b),
                        RawValue::Timestamp(t) => e.timestamp(&a.key, *t),
                    };
                }
            })?;
        }
        tb.done();
        Ok(())
    }

    /// Parses the attribute children of one `<event>` element.
    fn parse_event_attrs(&mut self) -> Result<Vec<RawAttr>> {
        let mut out = Vec::new();
        loop {
            match self.parser.next_event()? {
                Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                    if let Some(attr) = self.attr_from(&name, &attributes)? {
                        out.push(attr);
                    }
                    if !self_closing {
                        self.skip_subtree()?;
                    }
                }
                Some(XmlEvent::EndElement { name }) if name == "event" => return Ok(out),
                Some(_) => {}
                None => return Err(self.err("unexpected end of input inside <event>")),
            }
        }
    }

    /// Restores class-level attributes from the nested-attribute convention:
    /// `<string key="gecco:classattr" value="CLASS"> <k=v children/> </string>`.
    fn parse_class_attrs(&mut self, outer: &RawAttr, self_closing: bool) -> Result<()> {
        let class = match &outer.value {
            RawValue::Str(s) => s.clone(),
            _ => return Err(self.err("gecco:classattr value must be the class name")),
        };
        if self_closing {
            return Ok(());
        }
        loop {
            match self.parser.next_event()? {
                Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                    if let Some(attr) = self.attr_from(&name, &attributes)? {
                        match &attr.value {
                            RawValue::Str(s) => {
                                self.builder.class_attr_str(&class, &attr.key, s)?;
                            }
                            _ => return Err(self.err("class-level attributes must be strings")),
                        }
                    }
                    if !self_closing {
                        self.skip_subtree()?;
                    }
                }
                Some(XmlEvent::EndElement { .. }) => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unexpected end of input in class attributes")),
            }
        }
    }

    /// Interprets a start element as a typed XES attribute, if it is one.
    fn attr_from(&self, tag: &str, attributes: &[(String, String)]) -> Result<Option<RawAttr>> {
        let typed = matches!(tag, "string" | "date" | "int" | "float" | "boolean" | "id");
        if !typed {
            return Ok(None);
        }
        let key = attributes
            .iter()
            .find(|(k, _)| k == "key")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| self.err(format!("<{tag}> without `key`")))?;
        let raw = attributes
            .iter()
            .find(|(k, _)| k == "value")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| self.err(format!("<{tag} key=\"{key}\"> without `value`")))?;
        let value = match tag {
            "string" | "id" => RawValue::Str(raw),
            "date" => RawValue::Timestamp(parse_iso8601(&raw)?),
            "int" => RawValue::Int(
                raw.parse()
                    .map_err(|_| self.err(format!("bad int value {raw:?} for key {key:?}")))?,
            ),
            "float" => RawValue::Float(
                raw.parse()
                    .map_err(|_| self.err(format!("bad float value {raw:?} for key {key:?}")))?,
            ),
            "boolean" => match raw.as_str() {
                "true" | "True" | "TRUE" | "1" => RawValue::Bool(true),
                "false" | "False" | "FALSE" | "0" => RawValue::Bool(false),
                _ => return Err(self.err(format!("bad boolean value {raw:?} for key {key:?}"))),
            },
            _ => unreachable!(),
        };
        Ok(Some(RawAttr { key, value }))
    }

    /// Consumes events until the element opened last is closed.
    fn skip_subtree(&mut self) -> Result<()> {
        let mut depth = 1usize;
        loop {
            match self.parser.next_event()? {
                Some(XmlEvent::StartElement { self_closing, .. }) => {
                    if !self_closing {
                        depth += 1;
                    } else {
                        // Self-closing emits a synthetic EndElement next.
                        depth += 1;
                    }
                }
                Some(XmlEvent::EndElement { .. }) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(XmlEvent::Text(_)) => {}
                None => return Err(self.err("unexpected end of input while skipping element")),
            }
        }
    }

    fn intern_value(&mut self, raw: RawValue) -> AttributeValue {
        match raw {
            RawValue::Str(s) => AttributeValue::Str(self.builder.intern(&s)),
            RawValue::Int(i) => AttributeValue::Int(i),
            RawValue::Float(f) => AttributeValue::Float(f),
            RawValue::Bool(b) => AttributeValue::Bool(b),
            RawValue::Timestamp(t) => AttributeValue::Timestamp(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0" xes.features="">
  <extension name="Concept" prefix="concept" uri="http://www.xes-standard.org/concept.xesext"/>
  <global scope="event">
    <string key="concept:name" value="__INVALID__"/>
  </global>
  <classifier name="Activity" keys="concept:name"/>
  <string key="concept:name" value="running-example"/>
  <trace>
    <string key="concept:name" value="case-1"/>
    <event>
      <string key="concept:name" value="rcp"/>
      <string key="org:role" value="clerk"/>
      <date key="time:timestamp" value="2021-03-01T08:00:00.000+00:00"/>
      <int key="cost" value="12"/>
      <float key="effort" value="0.5"/>
      <boolean key="rework" value="false"/>
    </event>
    <event>
      <string key="concept:name" value="acc"/>
      <string key="org:role" value="manager"/>
      <date key="time:timestamp" value="2021-03-01T09:30:00.000+00:00"/>
    </event>
  </trace>
  <trace>
    <string key="concept:name" value="case-2"/>
    <event><string key="concept:name" value="rcp"/></event>
  </trace>
</log>"#;

    #[test]
    fn parses_sample_log() {
        let log = parse_str(SAMPLE).unwrap();
        assert_eq!(log.traces().len(), 2);
        assert_eq!(log.num_classes(), 2);
        assert_eq!(log.num_events(), 3);
        let t0 = &log.traces()[0];
        let case = t0.attribute(log.std_keys().concept_name).unwrap();
        assert_eq!(log.resolve(case.as_symbol().unwrap()), "case-1");
        let e0 = &t0.events()[0];
        assert_eq!(log.class_name(e0.class()), "rcp");
        let role = e0.attribute(log.std_keys().role).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(role), "clerk");
        assert_eq!(e0.attribute(log.key("cost").unwrap()), Some(&AttributeValue::Int(12)));
        assert_eq!(e0.attribute(log.key("effort").unwrap()), Some(&AttributeValue::Float(0.5)));
        assert_eq!(e0.attribute(log.key("rework").unwrap()), Some(&AttributeValue::Bool(false)));
        let ts = e0.timestamp(log.std_keys().timestamp).unwrap();
        assert_eq!(crate::time::format_iso8601(ts), "2021-03-01T08:00:00.000Z");
    }

    #[test]
    fn log_level_attributes_survive() {
        let log = parse_str(SAMPLE).unwrap();
        let key = log.key("concept:name").unwrap();
        let (_, v) = log.attributes().iter().find(|(k, _)| *k == key).unwrap();
        assert_eq!(log.resolve(v.as_symbol().unwrap()), "running-example");
    }

    #[test]
    fn event_without_class_is_an_error() {
        let doc = r#"<log><trace><event><int key="cost" value="1"/></event></trace></log>"#;
        let err = parse_str(doc).unwrap_err();
        assert!(err.to_string().contains("concept:name"), "{err}");
    }

    #[test]
    fn class_attr_convention_round_trip() {
        let doc = r#"<log>
          <string key="gecco:classattr" value="A_Submit">
            <string key="system" value="A"/>
          </string>
          <trace><event><string key="concept:name" value="A_Submit"/></event></trace>
        </log>"#;
        let log = parse_str(doc).unwrap();
        let id = log.class_by_name("A_Submit").unwrap();
        let key = log.key("system").unwrap();
        let v = log.classes().info(id).attribute(key).unwrap();
        assert_eq!(log.resolve(v.as_symbol().unwrap()), "A");
    }

    #[test]
    fn bad_typed_values_are_errors() {
        for (tag, val) in [("int", "xx"), ("float", "--"), ("boolean", "maybe"), ("date", "nope")] {
            let doc = format!(
                r#"<log><trace><event><string key="concept:name" value="a"/><{tag} key="k" value="{val}"/></event></trace></log>"#
            );
            assert!(parse_str(&doc).is_err(), "accepted bad {tag} value");
        }
    }

    #[test]
    fn missing_log_element_is_an_error() {
        assert!(parse_str("<notalog/>").is_err());
    }

    #[test]
    fn empty_and_self_closing_traces() {
        let log = parse_str("<log><trace/><trace></trace></log>").unwrap();
        assert_eq!(log.traces().len(), 2);
        assert_eq!(log.num_events(), 0);
    }
}
