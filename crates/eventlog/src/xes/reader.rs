//! XES deserialization into an [`EventLog`] — a chunked two-stage pipeline.
//!
//! Stage one ([`crate::xes::scan`]) splits the raw bytes into log-level
//! segments and per-`<trace>` chunks. Stage two groups contiguous chunks
//! into per-worker *batches*, parses each batch into one [`LogFragment`]
//! with a thread-local interner — chunk-parallel under the `rayon` feature
//! — and [`LogBuilder::merge_fragment`] folds the fragments back in
//! document order, interleaved with the serially parsed log-level
//! segments. Batches never span a log-level segment, so the merge order
//! makes the result bit-identical to a serial single-pass parse no matter
//! how many workers ran or where batch boundaries fell
//! (`tests/ingest_equivalence.rs`).

use crate::error::{Error, Result};
use crate::log::{EventLog, FragmentTrace, LogBuilder, LogFragment};
use crate::parallel;
use crate::time::parse_iso8601;
use crate::value::AttributeValue;
use crate::xes::scan::{scan_document, Segment};
use crate::xes::xml::{line_at, XmlEvent, XmlParser};
use std::borrow::Cow;
use std::ops::Range;

/// Log-level attribute key under which class-level attributes are persisted
/// (nested-attribute convention, see [`crate::xes::writer`]).
pub const CLASS_ATTR_KEY: &str = "gecco:classattr";

/// Minimum number of trace chunks in a run before it is split into more
/// than one batch; below this the per-worker setup costs more than the
/// serial loop.
const MIN_PARALLEL_CHUNKS: usize = 16;

/// Parses an XES document from a string.
pub fn parse_str(input: &str) -> Result<EventLog> {
    parse_bytes(input.as_bytes())
}

/// Groups the trace chunks into batches of contiguous chunks, one
/// [`LogFragment`] each. A *run* is a maximal sequence of trace segments
/// with no log-level segment in between; runs are split into at most
/// `worker_count` batches so per-fragment overhead (interner, remap table)
/// scales with the worker count, not the trace count. Batches never cross
/// a log-level segment — that keeps the document-order merge exact.
fn make_batches(segments: &[Segment]) -> Vec<Vec<Range<usize>>> {
    let workers = parallel::worker_count().max(1);
    let mut batches: Vec<Vec<Range<usize>>> = Vec::new();
    let mut run: Vec<Range<usize>> = Vec::new();
    let flush = |run: &mut Vec<Range<usize>>, batches: &mut Vec<Vec<Range<usize>>>| {
        if run.is_empty() {
            return;
        }
        let pieces = if run.len() < MIN_PARALLEL_CHUNKS { 1 } else { workers };
        let batch_size = run.len().div_ceil(pieces).max(1);
        let mut rest = std::mem::take(run);
        while !rest.is_empty() {
            let tail = rest.split_off(batch_size.min(rest.len()));
            batches.push(rest);
            rest = tail;
        }
    };
    for segment in segments {
        match segment {
            Segment::Trace(r) => run.push(r.clone()),
            Segment::Log(_) => flush(&mut run, &mut batches),
        }
    }
    flush(&mut run, &mut batches);
    batches
}

/// Parses an XES document from raw bytes — the zero-copy entry point with
/// **no** up-front UTF-8 validation pass: names are validated lazily and
/// attribute values / text are decoded lossily exactly where they are
/// read, so invalid bytes in values become U+FFFD. Callers that need
/// whole-document validation (like [`parse_file`]) should validate first.
pub fn parse_bytes(input: &[u8]) -> Result<EventLog> {
    let doc = scan_document(input)?;
    let batches = make_batches(&doc.segments);
    let fragments = parallel::par_map(&batches, 2, |ranges| parse_trace_batch(input, ranges));

    let mut builder = LogBuilder::new();
    let mut next_batch = fragments.into_iter().zip(&batches);
    // Trace segments already covered by the batch merged last.
    let mut covered = 0usize;
    for segment in &doc.segments {
        match segment {
            Segment::Log(r) => parse_log_segment(&mut builder, &input[r.clone()])
                .map_err(|e| rebase_lines(e, input, r.start))?,
            Segment::Trace(_) => {
                if covered > 0 {
                    covered -= 1;
                    continue;
                }
                let (fragment, ranges) =
                    next_batch.next().expect("one batch per run of trace segments");
                builder.merge_fragment(fragment?)?;
                covered = ranges.len() - 1;
            }
        }
    }
    Ok(builder.build())
}

/// Parses an XES file from disk. Reads raw bytes and validates them as
/// UTF-8 in place — rejecting Latin-1 or corrupted files loudly, exactly
/// like the importer always did (and like [`crate::csv::read_file`] still
/// does) — then runs the chunked pipeline. The validation is a single
/// cheap scan; unlike `read_to_string` there is no intermediate `String`
/// and the parse itself stays zero-copy over the byte buffer.
pub fn parse_file(path: impl AsRef<std::path::Path>) -> Result<EventLog> {
    let contents = std::fs::read(path)?;
    if let Err(e) = std::str::from_utf8(&contents) {
        return Err(Error::Xml {
            line: line_at(&contents, e.valid_up_to()),
            message: "file is not valid UTF-8".into(),
        });
    }
    parse_bytes(&contents)
}

/// Shifts chunk-relative line numbers in an error to document-absolute
/// ones. Only computed on the error path, so the happy path never counts
/// newlines.
fn rebase_lines(err: Error, input: &[u8], chunk_start: usize) -> Error {
    shift_lines(err, line_at(input, chunk_start) - 1)
}

/// Adds `base` lines to the positions in an error. The streaming path uses
/// this directly: it knows each chunk's document-absolute start line from
/// the window scanner instead of recounting the (long gone) document.
pub(crate) fn shift_lines(err: Error, base: usize) -> Error {
    match err {
        Error::Xml { line, message } => Error::Xml { line: line + base, message },
        Error::Xes { line, message } => Error::Xes { line: line + base, message },
        other => other,
    }
}

/// A typed attribute parsed from one XES attribute element, borrowing from
/// the chunk being parsed.
struct RawAttr<'a> {
    key: Cow<'a, str>,
    value: RawValue<'a>,
}

enum RawValue<'a> {
    Str(Cow<'a, str>),
    Int(i64),
    Float(f64),
    Bool(bool),
    Timestamp(i64),
}

fn xes_err(parser: &XmlParser<'_>, message: impl Into<String>) -> Error {
    Error::Xes { line: parser.line(), message: message.into() }
}

/// Interprets a start element as a typed XES attribute, if it is one.
/// Consumes the element's attribute list so key and value move out without
/// copies.
fn attr_from<'a>(
    parser: &XmlParser<'a>,
    tag: &str,
    attributes: Vec<(&'a str, Cow<'a, str>)>,
) -> Result<Option<RawAttr<'a>>> {
    let typed = matches!(tag, "string" | "date" | "int" | "float" | "boolean" | "id");
    if !typed {
        return Ok(None);
    }
    let mut key: Option<Cow<'a, str>> = None;
    let mut raw: Option<Cow<'a, str>> = None;
    for (k, v) in attributes {
        match k {
            "key" if key.is_none() => key = Some(v),
            "value" if raw.is_none() => raw = Some(v),
            _ => {}
        }
    }
    let key = key.ok_or_else(|| xes_err(parser, format!("<{tag}> without `key`")))?;
    let raw =
        raw.ok_or_else(|| xes_err(parser, format!("<{tag} key=\"{key}\"> without `value`")))?;
    let value = match tag {
        "string" | "id" => RawValue::Str(raw),
        "date" => RawValue::Timestamp(parse_iso8601(&raw)?),
        "int" => RawValue::Int(
            raw.parse()
                .map_err(|_| xes_err(parser, format!("bad int value {raw:?} for key {key:?}")))?,
        ),
        "float" => RawValue::Float(
            raw.parse()
                .map_err(|_| xes_err(parser, format!("bad float value {raw:?} for key {key:?}")))?,
        ),
        "boolean" => match raw.as_ref() {
            "true" | "True" | "TRUE" | "1" => RawValue::Bool(true),
            "false" | "False" | "FALSE" | "0" => RawValue::Bool(false),
            _ => return Err(xes_err(parser, format!("bad boolean value {raw:?} for key {key:?}"))),
        },
        _ => unreachable!(),
    };
    Ok(Some(RawAttr { key, value }))
}

/// Consumes events until the element opened last is closed. For a
/// self-closing element this consumes exactly its synthetic `EndElement`.
fn skip_subtree(parser: &mut XmlParser<'_>) -> Result<()> {
    let mut depth = 1usize;
    loop {
        match parser.next_event()? {
            Some(XmlEvent::StartElement { .. }) => {
                // Self-closing elements emit a synthetic EndElement next,
                // so counting them like open elements balances out.
                depth += 1;
            }
            Some(XmlEvent::EndElement { .. }) => {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
            Some(XmlEvent::Text(_)) => {}
            None => return Err(xes_err(parser, "unexpected end of input while skipping element")),
        }
    }
}

// ---------------------------------------------------------------------------
// Stage two, log-level segments (serial).
// ---------------------------------------------------------------------------

/// Parses one log-level segment — typed log attributes, extensions,
/// classifiers and `gecco:classattr` wrappers — directly into the builder.
pub(crate) fn parse_log_segment(builder: &mut LogBuilder, segment: &[u8]) -> Result<()> {
    let mut parser = XmlParser::from_bytes(segment);
    while let Some(event) = parser.next_event()? {
        match event {
            XmlEvent::StartElement { name, attributes, self_closing } => match name {
                "extension" | "global" | "classifier" => {
                    if !self_closing {
                        skip_subtree(&mut parser)?;
                    }
                }
                _ => {
                    if let Some(attr) = attr_from(&parser, name, attributes)? {
                        if attr.key == CLASS_ATTR_KEY {
                            parse_class_attrs(builder, &mut parser, &attr, self_closing)?;
                        } else {
                            if !self_closing {
                                skip_subtree(&mut parser)?;
                            }
                            let value = intern_value(builder, attr.value);
                            builder.log_attr(&attr.key, value);
                        }
                    } else if !self_closing {
                        skip_subtree(&mut parser)?;
                    }
                }
            },
            XmlEvent::EndElement { .. } | XmlEvent::Text(_) => {}
        }
    }
    Ok(())
}

/// Restores class-level attributes from the nested-attribute convention:
/// `<string key="gecco:classattr" value="CLASS"> <k=v children/> </string>`.
///
/// The wrapper's own `EndElement` is tracked explicitly: every child —
/// self-closing or not — is fully consumed (including the synthetic
/// `EndElement` a self-closing child emits) before the loop looks at the
/// next event. The previous implementation returned on *any* `EndElement`,
/// so the synthetic one after a first self-closing child ended the wrapper
/// early and every following class attribute leaked to log level.
fn parse_class_attrs(
    builder: &mut LogBuilder,
    parser: &mut XmlParser<'_>,
    outer: &RawAttr<'_>,
    self_closing: bool,
) -> Result<()> {
    let class = match &outer.value {
        RawValue::Str(s) => s.clone(),
        _ => return Err(xes_err(parser, "gecco:classattr value must be the class name")),
    };
    if self_closing {
        // An empty wrapper still names a class; nothing to attach.
        return Ok(());
    }
    loop {
        match parser.next_event()? {
            Some(XmlEvent::StartElement { name, attributes, self_closing: _ }) => {
                if let Some(attr) = attr_from(parser, name, attributes)? {
                    match &attr.value {
                        RawValue::Str(s) => {
                            builder.class_attr_str(&class, &attr.key, s)?;
                        }
                        _ => return Err(xes_err(parser, "class-level attributes must be strings")),
                    }
                }
                // Consume the child subtree entirely — for a self-closing
                // child this eats exactly its synthetic EndElement.
                skip_subtree(parser)?;
            }
            Some(XmlEvent::EndElement { .. }) => return Ok(()), // the wrapper itself
            Some(XmlEvent::Text(_)) => {}
            None => return Err(xes_err(parser, "unexpected end of input in class attributes")),
        }
    }
}

fn intern_value(builder: &mut LogBuilder, raw: RawValue<'_>) -> AttributeValue {
    match raw {
        RawValue::Str(s) => AttributeValue::Str(builder.intern(&s)),
        RawValue::Int(i) => AttributeValue::Int(i),
        RawValue::Float(f) => AttributeValue::Float(f),
        RawValue::Bool(b) => AttributeValue::Bool(b),
        RawValue::Timestamp(t) => AttributeValue::Timestamp(t),
    }
}

// ---------------------------------------------------------------------------
// Stage two, trace batches (parallel under the `rayon` feature).
// ---------------------------------------------------------------------------

/// Parses one batch of contiguous trace chunks into a single
/// [`LogFragment`]: one thread-local interner and one eventual remap table
/// for the whole batch instead of per trace. Errors come back with
/// document-absolute line numbers.
fn parse_trace_batch(input: &[u8], ranges: &[Range<usize>]) -> Result<LogFragment> {
    let mut fragment = LogFragment::new();
    for range in ranges {
        parse_trace_into(&mut fragment, &input[range.clone()])
            .map_err(|e| rebase_lines(e, input, range.start))?;
    }
    Ok(fragment)
}

/// Parses one `<trace>…</trace>` chunk into the batch fragment, interning
/// strings into the fragment's thread-local interner as they are read —
/// no intermediate owned strings.
pub(crate) fn parse_trace_into(fragment: &mut LogFragment, chunk: &[u8]) -> Result<()> {
    let mut parser = XmlParser::from_bytes(chunk);
    match parser.next_event()? {
        Some(XmlEvent::StartElement { name: "trace", self_closing, .. }) => {
            if self_closing {
                fragment.push_trace(FragmentTrace { attributes: Vec::new(), events: Vec::new() });
                return Ok(());
            }
        }
        _ => return Err(xes_err(&parser, "trace chunk does not start with <trace>")),
    }
    let mut attributes: Vec<(crate::Symbol, AttributeValue)> = Vec::new();
    let mut events: Vec<(crate::Symbol, Vec<(crate::Symbol, AttributeValue)>)> = Vec::new();
    loop {
        match parser.next_event()? {
            Some(XmlEvent::StartElement { name, attributes: xattrs, self_closing }) => {
                if name == "event" {
                    let raw_attrs =
                        if self_closing { Vec::new() } else { parse_event_attrs(&mut parser)? };
                    let class = raw_attrs
                        .iter()
                        .find(|a| a.key == "concept:name")
                        .and_then(|a| match &a.value {
                            RawValue::Str(s) => Some(s.as_ref()),
                            _ => None,
                        })
                        .ok_or_else(|| xes_err(&parser, "event without string `concept:name`"))?;
                    let class = fragment.intern(class);
                    let attrs = raw_attrs
                        .into_iter()
                        .map(|a| {
                            let key = fragment.intern(&a.key);
                            (key, fragment_value(fragment, a.value))
                        })
                        .collect();
                    events.push((class, attrs));
                } else if let Some(attr) = attr_from(&parser, name, xattrs)? {
                    if !self_closing {
                        skip_subtree(&mut parser)?;
                    }
                    let key = fragment.intern(&attr.key);
                    let value = fragment_value(fragment, attr.value);
                    attributes.push((key, value));
                } else if !self_closing {
                    skip_subtree(&mut parser)?;
                }
            }
            Some(XmlEvent::EndElement { name: "trace" }) => break,
            Some(_) => {}
            None => return Err(xes_err(&parser, "unexpected end of input inside <trace>")),
        }
    }
    fragment.push_trace(FragmentTrace { attributes, events });
    Ok(())
}

/// Parses the attribute children of one `<event>` element.
fn parse_event_attrs<'a>(parser: &mut XmlParser<'a>) -> Result<Vec<RawAttr<'a>>> {
    let mut out = Vec::new();
    loop {
        match parser.next_event()? {
            Some(XmlEvent::StartElement { name, attributes, self_closing }) => {
                if let Some(attr) = attr_from(parser, name, attributes)? {
                    out.push(attr);
                }
                if !self_closing {
                    skip_subtree(parser)?;
                }
            }
            Some(XmlEvent::EndElement { name: "event" }) => return Ok(out),
            Some(_) => {}
            None => return Err(xes_err(parser, "unexpected end of input inside <event>")),
        }
    }
}

fn fragment_value(fragment: &mut LogFragment, raw: RawValue<'_>) -> AttributeValue {
    match raw {
        RawValue::Str(s) => AttributeValue::Str(fragment.intern(&s)),
        RawValue::Int(i) => AttributeValue::Int(i),
        RawValue::Float(f) => AttributeValue::Float(f),
        RawValue::Bool(b) => AttributeValue::Bool(b),
        RawValue::Timestamp(t) => AttributeValue::Timestamp(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0" xes.features="">
  <extension name="Concept" prefix="concept" uri="http://www.xes-standard.org/concept.xesext"/>
  <global scope="event">
    <string key="concept:name" value="__INVALID__"/>
  </global>
  <classifier name="Activity" keys="concept:name"/>
  <string key="concept:name" value="running-example"/>
  <trace>
    <string key="concept:name" value="case-1"/>
    <event>
      <string key="concept:name" value="rcp"/>
      <string key="org:role" value="clerk"/>
      <date key="time:timestamp" value="2021-03-01T08:00:00.000+00:00"/>
      <int key="cost" value="12"/>
      <float key="effort" value="0.5"/>
      <boolean key="rework" value="false"/>
    </event>
    <event>
      <string key="concept:name" value="acc"/>
      <string key="org:role" value="manager"/>
      <date key="time:timestamp" value="2021-03-01T09:30:00.000+00:00"/>
    </event>
  </trace>
  <trace>
    <string key="concept:name" value="case-2"/>
    <event><string key="concept:name" value="rcp"/></event>
  </trace>
</log>"#;

    #[test]
    fn parses_sample_log() {
        let log = parse_str(SAMPLE).unwrap();
        assert_eq!(log.traces().len(), 2);
        assert_eq!(log.num_classes(), 2);
        assert_eq!(log.num_events(), 3);
        let t0 = &log.traces()[0];
        let case = t0.attribute(log.std_keys().concept_name).unwrap();
        assert_eq!(log.resolve(case.as_symbol().unwrap()), "case-1");
        let e0 = &t0.events()[0];
        assert_eq!(log.class_name(e0.class()), "rcp");
        let role = e0.attribute(log.std_keys().role).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(role), "clerk");
        assert_eq!(e0.attribute(log.key("cost").unwrap()), Some(&AttributeValue::Int(12)));
        assert_eq!(e0.attribute(log.key("effort").unwrap()), Some(&AttributeValue::Float(0.5)));
        assert_eq!(e0.attribute(log.key("rework").unwrap()), Some(&AttributeValue::Bool(false)));
        let ts = e0.timestamp(log.std_keys().timestamp).unwrap();
        assert_eq!(crate::time::format_iso8601(ts), "2021-03-01T08:00:00.000Z");
    }

    #[test]
    fn log_level_attributes_survive() {
        let log = parse_str(SAMPLE).unwrap();
        let key = log.key("concept:name").unwrap();
        let (_, v) = log.attributes().iter().find(|(k, _)| *k == key).unwrap();
        assert_eq!(log.resolve(v.as_symbol().unwrap()), "running-example");
    }

    #[test]
    fn event_without_class_is_an_error() {
        let doc = r#"<log><trace><event><int key="cost" value="1"/></event></trace></log>"#;
        let err = parse_str(doc).unwrap_err();
        assert!(err.to_string().contains("concept:name"), "{err}");
    }

    #[test]
    fn class_attr_convention_round_trip() {
        let doc = r#"<log>
          <string key="gecco:classattr" value="A_Submit">
            <string key="system" value="A"/>
          </string>
          <trace><event><string key="concept:name" value="A_Submit"/></event></trace>
        </log>"#;
        let log = parse_str(doc).unwrap();
        let id = log.class_by_name("A_Submit").unwrap();
        let key = log.key("system").unwrap();
        let v = log.classes().info(id).attribute(key).unwrap();
        assert_eq!(log.resolve(v.as_symbol().unwrap()), "A");
    }

    #[test]
    fn multiple_class_attrs_stay_on_the_class() {
        // Regression for the parse_class_attrs early-return bug: with two or
        // more self-closing children (the writer always emits self-closing
        // attribute elements), every attribute after the first used to be
        // misfiled as a log-level attribute.
        let doc = r#"<log>
          <string key="gecco:classattr" value="A">
            <string key="system" value="S1"/>
            <string key="department" value="D1"/>
            <string key="owner" value="O1"/>
          </string>
          <string key="gecco:classattr" value="B">
            <string key="system" value="S2"/>
            <string key="department" value="D2"/>
          </string>
          <trace>
            <event><string key="concept:name" value="A"/></event>
            <event><string key="concept:name" value="B"/></event>
          </trace>
        </log>"#;
        let log = parse_str(doc).unwrap();
        let a = log.class_by_name("A").unwrap();
        let b = log.class_by_name("B").unwrap();
        for (class, key, want) in [
            (a, "system", "S1"),
            (a, "department", "D1"),
            (a, "owner", "O1"),
            (b, "system", "S2"),
            (b, "department", "D2"),
        ] {
            let key = log.key(key).unwrap_or_else(|| panic!("key {key:?} not interned"));
            let v = log
                .classes()
                .info(class)
                .attribute(key)
                .unwrap_or_else(|| panic!("missing class attr"));
            assert_eq!(log.resolve(v.as_symbol().unwrap()), want);
        }
        // And nothing leaked to log level.
        assert!(log.attributes().is_empty(), "class attrs leaked: {:?}", log.attributes());
    }

    #[test]
    fn bad_typed_values_are_errors() {
        for (tag, val) in [("int", "xx"), ("float", "--"), ("boolean", "maybe"), ("date", "nope")] {
            let doc = format!(
                r#"<log><trace><event><string key="concept:name" value="a"/><{tag} key="k" value="{val}"/></event></trace></log>"#
            );
            assert!(parse_str(&doc).is_err(), "accepted bad {tag} value");
        }
    }

    #[test]
    fn missing_log_element_is_an_error() {
        assert!(parse_str("<notalog/>").is_err());
    }

    #[test]
    fn empty_and_self_closing_traces() {
        let log = parse_str("<log><trace/><trace></trace></log>").unwrap();
        assert_eq!(log.traces().len(), 2);
        assert_eq!(log.num_events(), 0);
    }

    #[test]
    fn errors_in_late_chunks_report_document_lines() {
        // The bad value sits inside the second trace; the reported line
        // must be document-absolute, not chunk-relative.
        let doc = "<log>\n<trace>\n<event><string key=\"concept:name\" value=\"a\"/></event>\n</trace>\n<trace>\n<event>\n<int key=\"k\" value=\"zz\"/>\n<string key=\"concept:name\" value=\"b\"/>\n</event>\n</trace>\n</log>";
        let err = parse_str(doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 7"), "got {msg}");
    }

    #[test]
    fn parse_bytes_accepts_raw_bytes() {
        let log = parse_bytes(SAMPLE.as_bytes()).unwrap();
        assert_eq!(log.num_events(), 3);
    }

    #[test]
    fn parse_file_rejects_invalid_utf8() {
        // parse_bytes is documented as lossy, but parse_file must keep the
        // old read_to_string behavior: a Latin-1 / corrupted file errors
        // instead of importing with U+FFFD mojibake.
        let dir = std::env::temp_dir().join("gecco-xes-utf8-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latin1.xes");
        std::fs::write(
            &path,
            b"<log>\n<trace><event><string key=\"concept:name\" value=\"caf\xE9\"/></event></trace></log>",
        )
        .unwrap();
        let err = parse_file(&path).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
