//! XES serialization of an [`EventLog`].

use crate::error::Result;
use crate::interner::Symbol;
use crate::log::EventLog;
use crate::time::format_iso8601;
use crate::value::AttributeValue;
use crate::xes::reader::CLASS_ATTR_KEY;
use crate::xes::xml::escape;
use std::fmt::Write as _;

/// Serializes `log` to an XES string.
pub fn write_string(log: &EventLog) -> String {
    let mut out = String::with_capacity(1024 + log.num_events() * 128);
    write_header(&mut out, log);
    write_traces(&mut out, log);
    write_footer(&mut out);
    out
}

/// Writes the XES prolog: declaration, extensions, classifier, log-level
/// attributes and the class-level attribute blocks. Streaming writers
/// emit this once (from the first chunk, whose builder registers every
/// class up front) and then [`write_traces`] per chunk.
pub fn write_header(out: &mut String, log: &EventLog) {
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<log xes.version=\"1.0\" xes.features=\"nested-attributes\">\n");
    out.push_str(
        "  <extension name=\"Concept\" prefix=\"concept\" uri=\"http://www.xes-standard.org/concept.xesext\"/>\n",
    );
    out.push_str(
        "  <extension name=\"Time\" prefix=\"time\" uri=\"http://www.xes-standard.org/time.xesext\"/>\n",
    );
    out.push_str(
        "  <extension name=\"Organizational\" prefix=\"org\" uri=\"http://www.xes-standard.org/org.xesext\"/>\n",
    );
    out.push_str("  <classifier name=\"Activity\" keys=\"concept:name\"/>\n");
    for (k, v) in log.attributes() {
        write_attr(out, log, 1, *k, v);
    }
    // Persist class-level attributes via the nested-attribute convention.
    for id in log.classes().ids() {
        let info = log.classes().info(id);
        if info.attributes.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  <string key=\"{}\" value=\"{}\">",
            CLASS_ATTR_KEY,
            escape(log.resolve(info.name))
        );
        for (k, v) in &info.attributes {
            write_attr(out, log, 2, *k, v);
        }
        out.push_str("  </string>\n");
    }
}

/// Writes the `<trace>` elements of `log` (no prolog, no closing tag).
pub fn write_traces(out: &mut String, log: &EventLog) {
    for trace in log.traces() {
        out.push_str("  <trace>\n");
        for (k, v) in trace.attributes() {
            write_attr(out, log, 2, *k, v);
        }
        for event in trace.events() {
            out.push_str("    <event>\n");
            let class_name = log.class_name(event.class());
            let has_concept_name =
                event.attributes().iter().any(|(k, _)| *k == log.std_keys().concept_name);
            if !has_concept_name {
                let _ = writeln!(
                    out,
                    "      <string key=\"concept:name\" value=\"{}\"/>",
                    escape(class_name)
                );
            }
            for (k, v) in event.attributes() {
                write_attr(out, log, 3, *k, v);
            }
            out.push_str("    </event>\n");
        }
        out.push_str("  </trace>\n");
    }
}

/// Closes the XES document.
pub fn write_footer(out: &mut String) {
    out.push_str("</log>\n");
}

/// Serializes `log` to a file.
pub fn write_file(log: &EventLog, path: impl AsRef<std::path::Path>) -> Result<()> {
    std::fs::write(path, write_string(log))?;
    Ok(())
}

fn write_attr(
    out: &mut String,
    log: &EventLog,
    indent: usize,
    key: Symbol,
    value: &AttributeValue,
) {
    let pad = "  ".repeat(indent);
    let key = escape(log.resolve(key));
    let _ = match value {
        AttributeValue::Str(s) => {
            writeln!(out, "{pad}<string key=\"{key}\" value=\"{}\"/>", escape(log.resolve(*s)))
        }
        AttributeValue::Int(i) => writeln!(out, "{pad}<int key=\"{key}\" value=\"{i}\"/>"),
        AttributeValue::Float(f) => writeln!(out, "{pad}<float key=\"{key}\" value=\"{f}\"/>"),
        AttributeValue::Bool(b) => writeln!(out, "{pad}<boolean key=\"{key}\" value=\"{b}\"/>"),
        AttributeValue::Timestamp(t) => {
            writeln!(out, "{pad}<date key=\"{key}\" value=\"{}\"/>", format_iso8601(*t))
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogBuilder;
    use crate::xes::reader::parse_str;

    fn sample_log() -> EventLog {
        let mut b = LogBuilder::new();
        b.log_attr_str("concept:name", "sample <log> & co");
        b.class_attr_str("a", "system", "S1").unwrap();
        b.trace("case-1")
            .event_with("a", |e| {
                e.str("org:role", "clerk")
                    .timestamp("time:timestamp", 1_485_938_415_250)
                    .int("cost", -3)
                    .float("effort", 1.25)
                    .bool("rework", true);
            })
            .unwrap()
            .event("b \"quoted\"")
            .unwrap()
            .done();
        b.trace("case-2").event("a").unwrap().done();
        b.build()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let log = sample_log();
        let xes = write_string(&log);
        let back = parse_str(&xes).unwrap();
        assert_eq!(back.traces().len(), log.traces().len());
        assert_eq!(back.num_classes(), log.num_classes());
        assert_eq!(back.num_events(), log.num_events());
        // Trace 0, event 0 attributes survive with types.
        let e = &back.traces()[0].events()[0];
        assert_eq!(back.class_name(e.class()), "a");
        assert_eq!(e.attribute(back.key("cost").unwrap()), Some(&AttributeValue::Int(-3)));
        assert_eq!(e.attribute(back.key("effort").unwrap()), Some(&AttributeValue::Float(1.25)));
        assert_eq!(e.attribute(back.key("rework").unwrap()), Some(&AttributeValue::Bool(true)));
        assert_eq!(e.timestamp(back.std_keys().timestamp), Some(1_485_938_415_250));
        // Special characters in class names survive.
        assert!(back.class_by_name("b \"quoted\"").is_some());
    }

    #[test]
    fn round_trip_preserves_class_attributes() {
        let log = sample_log();
        let back = parse_str(&write_string(&log)).unwrap();
        let a = back.class_by_name("a").unwrap();
        let key = back.key("system").unwrap();
        let v = back.classes().info(a).attribute(key).unwrap();
        assert_eq!(back.resolve(v.as_symbol().unwrap()), "S1");
    }

    #[test]
    fn round_trip_preserves_case_ids() {
        let log = sample_log();
        let back = parse_str(&write_string(&log)).unwrap();
        let case = back.traces()[1].attribute(back.std_keys().concept_name).unwrap();
        assert_eq!(back.resolve(case.as_symbol().unwrap()), "case-2");
    }

    #[test]
    fn file_round_trip() {
        let log = sample_log();
        let dir = std::env::temp_dir().join("gecco-xes-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.xes");
        write_file(&log, &path).unwrap();
        let back = crate::xes::parse_file(&path).unwrap();
        assert_eq!(back.num_events(), log.num_events());
        std::fs::remove_file(&path).ok();
    }
}
