//! Incremental document scanner over any [`Read`] source.
//!
//! [`StreamScanner`] is the bounded-memory sibling of
//! [`scan_document`](crate::xes::scan::scan_document): instead of requiring
//! the whole document as one byte slice, it keeps a sliding window over a
//! [`Read`] source and yields the same document-order pieces — log-level
//! segments and complete `<trace>…</trace>` subtrees — as *owned* byte
//! buffers, each stamped with the document-absolute line of its first byte
//! so stage-two parse errors keep accurate positions.
//!
//! The window machine is rescan-based: each attempt tokenizes from the
//! last committed byte with the crate-private `Scanner` in partial-window
//! mode (`at_eof == false`); if the window ends inside a construct the
//! scanner reports `Step::Incomplete`, the window is refilled and the attempt
//! repeats. Refill sizes double while a construct stays incomplete, so the
//! total rescan work stays linear in the document size, and the committed
//! prefix is compacted away on every refill, so peak memory is bounded by
//! the read chunk plus the largest single construct (one trace).

use crate::error::{Error, Result};
use crate::xes::scan::{RawTag, Scanner, Step};
use crate::xes::xml::line_at;
use std::io::Read;

/// One owned, document-order piece of the log: the bytes of the construct
/// plus the 1-based document line of its first byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedSegment {
    /// The raw bytes of the construct, exactly as they appeared in the
    /// document (same byte ranges [`scan_document`] would report).
    ///
    /// [`scan_document`]: crate::xes::scan::scan_document
    pub bytes: Vec<u8>,
    /// 1-based line of `bytes[0]` in the whole document, for rebasing
    /// stage-two parse errors to document-absolute positions.
    pub line: usize,
}

/// What [`StreamScanner::next_item`] yields: the streaming counterpart of
/// [`Segment`](crate::xes::scan::Segment), with owned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// Log-level content between traces (attributes, extensions,
    /// `gecco:classattr` wrappers). Must be parsed serially, in order.
    Log(OwnedSegment),
    /// One complete `<trace …>…</trace>` subtree. Independent of every
    /// other trace; safe to parse on any worker.
    Trace(OwnedSegment),
}

/// Where the scanner is in the document grammar.
enum StreamState {
    /// Before the root `<log>` start tag.
    Prologue,
    /// Inside the `<log>` body, at depth 1, at a segment boundary.
    Body,
    /// The root element was closed (or was self-closing). Trailing bytes
    /// after `</log>` are not read, matching [`scan_document`].
    ///
    /// [`scan_document`]: crate::xes::scan::scan_document
    Done,
}

/// Outcome of one scan attempt over the current window.
enum Attempt {
    /// Emit these items (0, 1 or 2: a pending log segment, then a trace).
    Items(Vec<StreamItem>),
    /// The window ended inside a construct — refill and rescan.
    NeedMore,
    /// Keep scanning the (possibly advanced) window in a new state.
    Continue,
    /// The document is complete.
    Finished,
}

/// Streaming scanner over any [`Read`] source.
///
/// ```
/// use gecco_eventlog::xes::stream::{StreamItem, StreamScanner};
///
/// let doc = b"<log><trace><event/></trace></log>";
/// let mut scanner = StreamScanner::new(&doc[..], 8);
/// let item = scanner.next_item().unwrap().unwrap();
/// match item {
///     StreamItem::Trace(seg) => assert_eq!(seg.bytes, b"<trace><event/></trace>"),
///     other => panic!("unexpected {other:?}"),
/// }
/// assert_eq!(scanner.next_item().unwrap(), None);
/// ```
pub struct StreamScanner<R> {
    source: R,
    /// The sliding window. `buf[consumed..]` is the unscanned tail.
    buf: Vec<u8>,
    /// Bytes of `buf` already committed (emitted or skipped for good).
    consumed: usize,
    /// Newlines in the document strictly before `buf[consumed]`.
    nl_before: usize,
    /// The source returned EOF; `buf[consumed..]` is the document's tail.
    eof: bool,
    /// Bytes requested on the next refill; doubles while one construct
    /// stays incomplete so repeated rescans stay amortized-linear.
    refill: usize,
    /// Baseline refill size; `refill` resets to this on every commit.
    read_chunk: usize,
    state: StreamState,
    /// A second item produced by the same attempt (a trace following its
    /// preceding log segment), held until the next `next_item` call.
    pending: Vec<StreamItem>,
}

/// Default refill granularity: 64 KiB.
pub const DEFAULT_READ_CHUNK: usize = 64 * 1024;

impl<R: Read> StreamScanner<R> {
    /// Creates a scanner reading roughly `read_chunk` bytes per refill.
    ///
    /// The window grows beyond `read_chunk` only as far as the largest
    /// single construct in the document (in XES: one trace subtree).
    pub fn new(source: R, read_chunk: usize) -> Self {
        let read_chunk = read_chunk.max(1);
        StreamScanner {
            source,
            buf: Vec::new(),
            consumed: 0,
            nl_before: 0,
            eof: false,
            refill: read_chunk,
            read_chunk,
            state: StreamState::Prologue,
            pending: Vec::new(),
        }
    }

    /// Yields the next document-order item, or `None` after `</log>`.
    pub fn next_item(&mut self) -> Result<Option<StreamItem>> {
        loop {
            if !self.pending.is_empty() {
                return Ok(Some(self.pending.remove(0)));
            }
            match self.state {
                StreamState::Done => return Ok(None),
                StreamState::Prologue => match self.scan_prologue()? {
                    Attempt::NeedMore => self.fill()?,
                    Attempt::Continue => {}
                    Attempt::Finished => self.state = StreamState::Done,
                    Attempt::Items(items) => self.pending = items,
                },
                StreamState::Body => match self.scan_body()? {
                    Attempt::NeedMore => self.fill()?,
                    Attempt::Continue => {}
                    Attempt::Finished => self.state = StreamState::Done,
                    Attempt::Items(items) => self.pending = items,
                },
            }
        }
    }

    /// Commits `rel` more bytes of the window, keeping the newline count
    /// in sync and resetting the refill growth (progress was made).
    fn advance(&mut self, rel: usize) {
        let end = self.consumed + rel;
        self.nl_before += count_newlines(&self.buf[self.consumed..end]);
        self.consumed = end;
        self.refill = self.read_chunk;
    }

    /// Drops the committed prefix and reads `self.refill` more bytes. At
    /// EOF this is a no-op: the next scan attempt runs with
    /// `at_eof == true`, which turns `Incomplete` into hard errors, so the
    /// refill loop always terminates.
    fn fill(&mut self) -> Result<()> {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        if self.eof {
            return Ok(());
        }
        let target = self.buf.len() + self.refill;
        while self.buf.len() < target {
            let start = self.buf.len();
            self.buf.resize(target, 0);
            let n = self.source.read(&mut self.buf[start..]).map_err(Error::from)?;
            self.buf.truncate(start + n);
            if n == 0 {
                self.eof = true;
                break;
            }
        }
        // Still mid-construct next attempt? Ask for twice as much then.
        self.refill = self.refill.saturating_mul(2);
        Ok(())
    }

    /// Shifts a window-relative scanner error to document-absolute lines.
    fn rebase(&self, err: Error) -> Error {
        match err {
            Error::Xml { line, message } => Error::Xml { line: line + self.nl_before, message },
            Error::Xes { line, message } => Error::Xes { line: line + self.nl_before, message },
            other => other,
        }
    }

    /// 1-based document line of window-relative offset `rel`.
    fn line_of(&self, rel: usize) -> usize {
        let window = &self.buf[self.consumed..];
        self.nl_before + line_at(window, rel)
    }

    /// One scan attempt before the root `<log>`: skip misc constructs and
    /// non-log top-level subtrees (committing past each completed one).
    fn scan_prologue(&mut self) -> Result<Attempt> {
        let mut scanner = Scanner { input: &self.buf[self.consumed..], pos: 0, at_eof: self.eof };
        // How far the window can be committed: everything before `<log>`
        // is skipped for good once complete.
        let mut committed = 0usize;
        let outcome = loop {
            match scanner.next_tag().map_err(|e| self.rebase(e))? {
                Step::Incomplete => break Attempt::NeedMore,
                Step::Done(Some((_, RawTag::Start { name: b"log", self_closing }))) => {
                    committed = scanner.pos;
                    if self_closing {
                        break Attempt::Finished;
                    }
                    break Attempt::Continue;
                }
                Step::Done(Some((_, RawTag::Start { self_closing, .. }))) => {
                    if !self_closing {
                        match scanner.skip_subtree().map_err(|e| self.rebase(e))? {
                            Step::Incomplete => break Attempt::NeedMore,
                            Step::Done(()) => {}
                        }
                    }
                    committed = scanner.pos;
                }
                Step::Done(Some((_, RawTag::End { .. }))) | Step::Done(None) => {
                    let line = self.line_of(scanner.pos);
                    return Err(Error::Xes { line, message: "no <log> element found".into() });
                }
            }
        };
        self.advance(committed);
        if matches!(outcome, Attempt::Continue) {
            self.state = StreamState::Body;
        }
        Ok(outcome)
    }

    /// One scan attempt inside the `<log>` body, starting at a segment
    /// boundary (depth 1). Commits and emits one pending log segment plus
    /// one trace (or the trailing log segment at `</log>`).
    fn scan_body(&mut self) -> Result<Attempt> {
        let mut scanner = Scanner { input: &self.buf[self.consumed..], pos: 0, at_eof: self.eof };
        let mut depth = 1usize;
        // Window-relative ranges decided by this attempt.
        enum Hit {
            Trace { start: usize, end: usize },
            Close { tag_start: usize, end: usize },
        }
        let hit = loop {
            match scanner.next_tag().map_err(|e| self.rebase(e))? {
                Step::Incomplete => return Ok(Attempt::NeedMore),
                Step::Done(Some((tag_start, RawTag::Start { name, self_closing }))) => {
                    if depth == 1 && name == b"trace" {
                        if !self_closing {
                            match scanner.skip_subtree().map_err(|e| self.rebase(e))? {
                                Step::Incomplete => return Ok(Attempt::NeedMore),
                                Step::Done(()) => {}
                            }
                        }
                        break Hit::Trace { start: tag_start, end: scanner.pos };
                    } else if !self_closing {
                        depth += 1;
                    }
                }
                Step::Done(Some((tag_start, RawTag::End { name }))) => {
                    depth -= 1;
                    if depth == 0 {
                        if name != b"log" {
                            let line = self.line_of(tag_start);
                            return Err(Error::Xml {
                                line,
                                message: format!(
                                    "mismatched `</{}>`; expected `</log>`",
                                    String::from_utf8_lossy(name)
                                ),
                            });
                        }
                        break Hit::Close { tag_start, end: scanner.pos };
                    }
                }
                Step::Done(None) => {
                    let line = self.line_of(scanner.pos);
                    return Err(Error::Xml {
                        line,
                        message: "unexpected end of input; `<log>` not closed".into(),
                    });
                }
            }
        };
        let mut items = Vec::new();
        match hit {
            Hit::Trace { start, end } => {
                if let Some(seg) = self.take_log_segment(start) {
                    items.push(StreamItem::Log(seg));
                }
                // `take_log_segment` advanced `consumed` to the trace
                // start; the trace itself is the next `end - start` bytes.
                let len = end - start;
                let line = self.nl_before + 1;
                let bytes = self.buf[self.consumed..self.consumed + len].to_vec();
                self.advance(len);
                items.push(StreamItem::Trace(OwnedSegment { bytes, line }));
                Ok(Attempt::Items(items))
            }
            Hit::Close { tag_start, end } => {
                if let Some(seg) = self.take_log_segment(tag_start) {
                    items.push(StreamItem::Log(seg));
                }
                self.advance(end - tag_start);
                self.state = StreamState::Done;
                if items.is_empty() {
                    Ok(Attempt::Finished)
                } else {
                    Ok(Attempt::Items(items))
                }
            }
        }
    }

    /// Lifts the pending log-level range `[consumed, consumed + rel)` out
    /// of the window (committing it) unless it is pure inter-element
    /// whitespace — the same filter [`scan_document`] applies.
    ///
    /// [`scan_document`]: crate::xes::scan::scan_document
    fn take_log_segment(&mut self, rel: usize) -> Option<OwnedSegment> {
        let range = &self.buf[self.consumed..self.consumed + rel];
        let keep = range.iter().any(|b| !matches!(b, b' ' | b'\t' | b'\r' | b'\n'));
        let seg = keep.then(|| OwnedSegment { bytes: range.to_vec(), line: self.nl_before + 1 });
        self.advance(rel);
        seg
    }
}

fn count_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xes::scan::{scan_document, Segment};

    /// Reader that feeds at most `chunk` bytes per `read` call, to stress
    /// window-edge handling independently of the refill size.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn drain(doc: &str, read_chunk: usize, dribble: usize) -> Result<Vec<StreamItem>> {
        let source = Dribble { data: doc.as_bytes(), pos: 0, chunk: dribble.max(1) };
        let mut scanner = StreamScanner::new(source, read_chunk);
        let mut items = Vec::new();
        while let Some(item) = scanner.next_item()? {
            items.push(item);
        }
        Ok(items)
    }

    /// The in-memory scan re-expressed as owned segments, for comparison.
    fn oracle(doc: &str) -> Result<Vec<StreamItem>> {
        let scanned = scan_document(doc.as_bytes())?;
        Ok(scanned
            .segments
            .into_iter()
            .map(|seg| match seg {
                Segment::Log(r) => StreamItem::Log(OwnedSegment {
                    line: line_at(doc.as_bytes(), r.start),
                    bytes: doc.as_bytes()[r].to_vec(),
                }),
                Segment::Trace(r) => StreamItem::Trace(OwnedSegment {
                    line: line_at(doc.as_bytes(), r.start),
                    bytes: doc.as_bytes()[r].to_vec(),
                }),
            })
            .collect())
    }

    const DOCS: &[&str] = &[
        "<log><trace><event/></trace></log>",
        "<log/>",
        "<?xml version=\"1.0\"?>\n<log>\n  <string key=\"a\" value=\"1\"/>\n  \
         <trace><event><string key=\"k\" value=\"v\"/></event></trace>\n  <trace/>\n  \
         <int key=\"b\" value=\"2\"/>\n</log>\n",
        "<meta><x/></meta><log><trace/></log>",
        "<log><trace><!-- </trace> --><event a=\"</trace>\"/><![CDATA[</trace>]]></trace></log>",
        "<!DOCTYPE log [ <!ENTITY l \"x > <log><trace/></log>\"> ]>\n<log><trace><event/></trace></log>",
        "<log><string key=\"gecco:classattr\" value=\"A\">\
         <string key=\"s\" value=\"x\"/></string><trace/></log>",
    ];

    #[test]
    fn matches_the_in_memory_scan_for_every_window_size() {
        for doc in DOCS {
            let expect = oracle(doc).unwrap();
            for read_chunk in [1, 2, 3, 5, 7, 16, 64, 4096] {
                for dribble in [1, 3, usize::MAX] {
                    let got = drain(doc, read_chunk, dribble).unwrap();
                    assert_eq!(got, expect, "doc {doc:?} chunk {read_chunk} dribble {dribble}");
                }
            }
        }
    }

    #[test]
    fn errors_match_the_in_memory_scan() {
        for doc in ["<notalog/>", "plain text", "<log><trace>", "<log>", "<log><trace/></notlog>"] {
            let expect = oracle(doc).unwrap_err().to_string();
            for read_chunk in [1, 4, 4096] {
                let got = drain(doc, read_chunk, usize::MAX).unwrap_err().to_string();
                assert_eq!(got, expect, "doc {doc:?} chunk {read_chunk}");
            }
        }
    }

    #[test]
    fn lines_are_document_absolute() {
        let doc = "<?xml version=\"1.0\"?>\n<log>\n<trace><event/></trace>\n\
                   <string key=\"a\" value=\"1\"/>\n<trace/>\n</log>\n";
        for read_chunk in [1, 8, 4096] {
            let items = drain(doc, read_chunk, usize::MAX).unwrap();
            let lines: Vec<usize> = items
                .iter()
                .map(|i| match i {
                    StreamItem::Log(s) | StreamItem::Trace(s) => s.line,
                })
                .collect();
            // The log segment starts at the newline ending line 3 (the
            // byte right after `</trace>`), so its first-byte line is 3.
            assert_eq!(lines, vec![3, 3, 5], "chunk {read_chunk}");
        }
    }

    #[test]
    fn window_stays_bounded_by_the_largest_trace() {
        // 200 traces of ~40 bytes each with a tiny read chunk: the window
        // must never grow anywhere near the document size.
        let mut doc = String::from("<log>");
        for i in 0..200 {
            doc.push_str(&format!("<trace><event a=\"{i:020}\"/></trace>"));
        }
        doc.push_str("</log>");
        let source = Dribble { data: doc.as_bytes(), pos: 0, chunk: 16 };
        let mut scanner = StreamScanner::new(source, 64);
        let mut max_window = 0usize;
        let mut traces = 0usize;
        while let Some(item) = scanner.next_item().unwrap() {
            max_window = max_window.max(scanner.buf.len());
            if matches!(item, StreamItem::Trace(_)) {
                traces += 1;
            }
        }
        assert_eq!(traces, 200);
        assert!(max_window < 512, "window grew to {max_window} bytes");
    }
}
