//! Hand-rolled XES serialization.
//!
//! [XES](http://xes-standard.org) (eXtensible Event Stream) is the IEEE
//! standard interchange format for event logs and the format of all datasets
//! in the paper's evaluation. This module implements a reader and writer for
//! the XES subset that event-log tooling actually exchanges: logs, traces,
//! events and typed attributes (`string`, `date`, `int`, `float`,
//! `boolean`), on top of the in-crate [`xml`] pull parser.

pub mod ingest;
pub mod reader;
pub mod scan;
pub mod stream;
pub mod writer;
pub mod xml;

pub use ingest::{ingest_stream, parse_reader, BatchSink, IngestOptions};
pub use reader::{parse_bytes, parse_file, parse_str};
pub use stream::{OwnedSegment, StreamItem, StreamScanner, DEFAULT_READ_CHUNK};
pub use writer::{write_file, write_footer, write_header, write_string, write_traces};
