//! A minimal, dependency-free XML pull parser.
//!
//! Supports exactly what XES serializations of event logs need: elements
//! with attributes, self-closing tags, character data (skipped by the XES
//! reader), comments, processing instructions, DOCTYPE, CDATA and the five
//! predefined entities plus numeric character references. It does **not**
//! implement namespaces-aware processing, DTD expansion or validation — XES
//! files do not require them.

use crate::error::{Error, Result};

/// One event yielded by [`XmlParser::next_event`].
#[derive(Debug, Clone, PartialEq)]
pub enum XmlEvent {
    /// `<name a="v" …>` or `<name … />`.
    StartElement {
        /// Element name (namespace prefixes retained verbatim).
        name: String,
        /// Attributes in document order, entity-decoded.
        attributes: Vec<(String, String)>,
        /// Whether the element was self-closing.
        self_closing: bool,
    },
    /// `</name>`. Also emitted synthetically after self-closing elements.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data between tags (entity-decoded, whitespace preserved).
    Text(String),
}

/// Streaming pull parser over a UTF-8 document.
#[derive(Debug)]
pub struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    /// Name to synthesize an `EndElement` for after a self-closing tag.
    pending_end: Option<String>,
    open: Vec<String>,
}

impl<'a> XmlParser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlParser { input: input.as_bytes(), pos: 0, line: 1, pending_end: None, open: Vec::new() }
    }

    /// Current 1-based line number (for error reporting).
    pub fn line(&self) -> usize {
        self.line
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Xml { line: self.line, message: message.into() }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.err(format!("expected `{}`, found `{}`", b as char, got as char)))
            }
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn advance_over(&mut self, s: &[u8]) {
        for _ in 0..s.len() {
            self.bump();
        }
    }

    /// Skips until (and over) the byte sequence `until`.
    fn skip_until(&mut self, until: &[u8]) -> Result<()> {
        while self.pos < self.input.len() {
            if self.starts_with(until) {
                self.advance_over(until);
                return Ok(());
            }
            self.bump();
        }
        Err(self
            .err(format!("unterminated construct; expected `{}`", String::from_utf8_lossy(until))))
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn decode_entities(&self, raw: &str) -> Result<String> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp..];
            let semi = rest.find(';').ok_or_else(|| self.err("unterminated entity reference"))?;
            let ent = &rest[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code = u32::from_str_radix(&ent[2..], 16)
                        .map_err(|_| self.err(format!("bad character reference `&{ent};`")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err(format!("invalid code point &{ent};")))?,
                    );
                }
                _ if ent.starts_with('#') => {
                    let code = ent[1..]
                        .parse::<u32>()
                        .map_err(|_| self.err(format!("bad character reference `&{ent};`")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err(format!("invalid code point &{ent};")))?,
                    );
                }
                _ => return Err(self.err(format!("unknown entity `&{ent};`"))),
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    fn read_attribute_value(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.bump();
                return self.decode_entities(&raw);
            }
            if b == b'<' {
                return Err(self.err("`<` not allowed in attribute value"));
            }
            self.bump();
        }
        Err(self.err("unterminated attribute value"))
    }

    /// Pulls the next event, or `None` at end of document.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        loop {
            if self.pos >= self.input.len() {
                if let Some(open) = self.open.last() {
                    return Err(self.err(format!("unexpected end of input; `<{open}>` not closed")));
                }
                return Ok(None);
            }
            if self.peek() != Some(b'<') {
                // Character data.
                let start = self.pos;
                while self.peek().is_some_and(|b| b != b'<') {
                    self.bump();
                }
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                let text = self.decode_entities(&raw)?;
                if text.chars().all(char::is_whitespace) {
                    continue; // inter-element whitespace
                }
                return Ok(Some(XmlEvent::Text(text)));
            }
            // A `<…>` construct.
            if self.starts_with(b"<?") {
                self.skip_until(b"?>")?;
                continue;
            }
            if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
                continue;
            }
            if self.starts_with(b"<![CDATA[") {
                self.advance_over(b"<![CDATA[");
                let start = self.pos;
                while self.pos < self.input.len() && !self.starts_with(b"]]>") {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.skip_until(b"]]>")?;
                return Ok(Some(XmlEvent::Text(text)));
            }
            if self.starts_with(b"<!") {
                self.skip_until(b">")?; // DOCTYPE etc.
                continue;
            }
            if self.starts_with(b"</") {
                self.advance_over(b"</");
                let name = self.read_name()?;
                self.skip_whitespace();
                self.expect(b'>')?;
                match self.open.pop() {
                    Some(expected) if expected == name => {}
                    Some(expected) => {
                        return Err(
                            self.err(format!("mismatched `</{name}>`; expected `</{expected}>`"))
                        )
                    }
                    None => {
                        return Err(self.err(format!("closing `</{name}>` with no open element")))
                    }
                }
                return Ok(Some(XmlEvent::EndElement { name }));
            }
            // Start tag.
            self.expect(b'<')?;
            let name = self.read_name()?;
            let mut attributes = Vec::new();
            loop {
                self.skip_whitespace();
                match self.peek() {
                    Some(b'>') => {
                        self.bump();
                        self.open.push(name.clone());
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: false,
                        }));
                    }
                    Some(b'/') => {
                        self.bump();
                        self.expect(b'>')?;
                        self.pending_end = Some(name.clone());
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: true,
                        }));
                    }
                    Some(_) => {
                        let key = self.read_name()?;
                        self.skip_whitespace();
                        self.expect(b'=')?;
                        self.skip_whitespace();
                        let value = self.read_attribute_value()?;
                        attributes.push((key, value));
                    }
                    None => return Err(self.err("unterminated start tag")),
                }
            }
        }
    }
}

/// Escapes a string for inclusion in XML attribute values or text.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events(s: &str) -> Vec<XmlEvent> {
        let mut p = XmlParser::new(s);
        let mut out = Vec::new();
        while let Some(e) = p.next_event().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn parses_nested_elements() {
        let events = all_events(r#"<log a="1"><trace><event/></trace></log>"#);
        assert_eq!(events.len(), 6);
        match &events[0] {
            XmlEvent::StartElement { name, attributes, self_closing } => {
                assert_eq!(name, "log");
                assert_eq!(attributes, &[("a".to_string(), "1".to_string())]);
                assert!(!self_closing);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            matches!(&events[2], XmlEvent::StartElement { name, self_closing: true, .. } if name == "event")
        );
        assert!(matches!(&events[3], XmlEvent::EndElement { name } if name == "event"));
        assert!(matches!(&events[5], XmlEvent::EndElement { name } if name == "log"));
    }

    #[test]
    fn skips_prolog_comments_doctype() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE log><!-- hi --><log></log>";
        let events = all_events(doc);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn decodes_entities_in_attributes_and_text() {
        let events = all_events(r#"<a k="x &amp; y &lt; &#65; &#x42;">T &gt; 1</a>"#);
        match &events[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].1, "x & y < A B");
            }
            _ => panic!(),
        }
        assert!(matches!(&events[1], XmlEvent::Text(t) if t == "T > 1"));
    }

    #[test]
    fn whitespace_only_text_is_skipped() {
        let events = all_events("<a>\n   <b/>\n</a>");
        assert_eq!(events.len(), 4); // a, b, /b, /a
    }

    #[test]
    fn cdata_is_text() {
        let events = all_events("<a><![CDATA[1 < 2 & 3]]></a>");
        assert!(matches!(&events[1], XmlEvent::Text(t) if t == "1 < 2 & 3"));
    }

    #[test]
    fn single_quoted_attributes() {
        let events = all_events("<a k='v'/>");
        match &events[0] {
            XmlEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].1, "v"),
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "<a><b></a>",
            "<a",
            "<a k=>",
            "<a k=\"v>",
            "</a>",
            "<a>&bogus;</a>",
            "<a>&#xZZ;</a>",
            "<a><b>",
        ] {
            let mut p = XmlParser::new(bad);
            let mut result = Ok(());
            loop {
                match p.next_event() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            assert!(result.is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn error_reports_line_numbers() {
        let mut p = XmlParser::new("<a>\n<b>\n</c>");
        let mut last = None;
        loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    last = Some(e);
                    break;
                }
            }
        }
        let msg = last.unwrap().to_string();
        assert!(msg.contains("line 3"), "got {msg}");
    }

    #[test]
    fn escape_round_trips() {
        let s = "a<b>&\"'c";
        let escaped = escape(s);
        let events = all_events(&format!("<a k=\"{escaped}\"/>"));
        match &events[0] {
            XmlEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].1, s),
            _ => panic!(),
        }
    }
}
