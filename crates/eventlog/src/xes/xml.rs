//! A minimal, dependency-free, zero-copy XML pull parser.
//!
//! Supports exactly what XES serializations of event logs need: elements
//! with attributes, self-closing tags, character data (skipped by the XES
//! reader), comments, processing instructions, DOCTYPE, CDATA and the five
//! predefined entities plus numeric character references. It does **not**
//! implement namespaces-aware processing, DTD expansion or validation — XES
//! files do not require them.
//!
//! The parser operates on `&[u8]` and yields events that *borrow* from the
//! input: element and attribute names are `&str` slices of the document, and
//! attribute values / character data are [`Cow`]s that only allocate when an
//! entity reference has to be decoded. Element and attribute names must be
//! valid UTF-8 (malformed bytes are a parse error); attribute values and
//! text tolerate invalid UTF-8 via lossy decoding, matching what the old
//! allocating parser did. Line numbers for errors are computed lazily, so
//! the hot path never counts newlines.

use crate::error::{Error, Result};
use std::borrow::Cow;

/// One event yielded by [`XmlParser::next_event`], borrowing from the input
/// document.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlEvent<'a> {
    /// `<name a="v" …>` or `<name … />`.
    StartElement {
        /// Element name (namespace prefixes retained verbatim).
        name: &'a str,
        /// Attributes in document order, entity-decoded.
        attributes: Vec<(&'a str, Cow<'a, str>)>,
        /// Whether the element was self-closing.
        self_closing: bool,
    },
    /// `</name>`. Also emitted synthetically after self-closing elements.
    EndElement {
        /// Element name.
        name: &'a str,
    },
    /// Character data between tags (entity-decoded, whitespace preserved).
    Text(Cow<'a, str>),
}

/// Streaming pull parser over a byte document.
#[derive(Debug)]
pub struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Name to synthesize an `EndElement` for after a self-closing tag.
    pending_end: Option<&'a str>,
    open: Vec<&'a str>,
}

impl<'a> XmlParser<'a> {
    /// Creates a parser over a string document.
    pub fn new(input: &'a str) -> Self {
        Self::from_bytes(input.as_bytes())
    }

    /// Creates a parser over a byte document (zero-copy entry point used by
    /// the chunked XES reader).
    pub fn from_bytes(input: &'a [u8]) -> Self {
        XmlParser { input, pos: 0, pending_end: None, open: Vec::new() }
    }

    /// Current 1-based line number (for error reporting). Computed lazily by
    /// counting newlines up to the current position — errors are rare, the
    /// hot path should not pay for line tracking.
    pub fn line(&self) -> usize {
        line_at(self.input, self.pos)
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Xml { line: self.line(), message: message.into() }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    /// Reborrows a sub-slice of the input with the *input's* lifetime.
    #[inline]
    fn slice(&self, start: usize, end: usize) -> &'a [u8] {
        &self.input[start..end]
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.err(format!("expected `{}`, found `{}`", b as char, got as char)))
            }
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    /// Skips until (and over) the byte sequence `until`.
    fn skip_until(&mut self, until: &[u8]) -> Result<()> {
        if skip_past(self.input, &mut self.pos, until) {
            return Ok(());
        }
        Err(self
            .err(format!("unterminated construct; expected `{}`", String::from_utf8_lossy(until))))
    }

    fn read_name(&mut self) -> Result<&'a str> {
        let name = take_name_bytes(self.input, &mut self.pos);
        if name.is_empty() {
            return Err(self.err("expected a name"));
        }
        std::str::from_utf8(name).map_err(|_| self.err("name is not valid UTF-8"))
    }

    /// Lossily decodes `raw` and expands entity references; borrows the
    /// input when no entity (and no invalid UTF-8) is present.
    fn decode_entities(&self, raw: &'a [u8]) -> Result<Cow<'a, str>> {
        if !raw.contains(&b'&') {
            return Ok(String::from_utf8_lossy(raw));
        }
        let src = String::from_utf8_lossy(raw);
        let mut out = String::with_capacity(src.len());
        let mut rest: &str = &src;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp..];
            let semi = rest.find(';').ok_or_else(|| self.err("unterminated entity reference"))?;
            let ent = &rest[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code = u32::from_str_radix(&ent[2..], 16)
                        .map_err(|_| self.err(format!("bad character reference `&{ent};`")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err(format!("invalid code point &{ent};")))?,
                    );
                }
                _ if ent.starts_with('#') => {
                    let code = ent[1..]
                        .parse::<u32>()
                        .map_err(|_| self.err(format!("bad character reference `&{ent};`")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err(format!("invalid code point &{ent};")))?,
                    );
                }
                _ => return Err(self.err(format!("unknown entity `&{ent};`"))),
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(Cow::Owned(out))
    }

    fn read_attribute_value(&mut self) -> Result<Cow<'a, str>> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input[self.pos];
            if b == quote {
                let raw = self.slice(start, self.pos);
                self.pos += 1;
                return self.decode_entities(raw);
            }
            if b == b'<' {
                return Err(self.err("`<` not allowed in attribute value"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    /// Pulls the next event, or `None` at end of document.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent<'a>>> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        loop {
            if self.pos >= self.input.len() {
                if let Some(open) = self.open.last() {
                    return Err(self.err(format!("unexpected end of input; `<{open}>` not closed")));
                }
                return Ok(None);
            }
            if self.peek() != Some(b'<') {
                // Character data.
                let start = self.pos;
                let len = self.input[self.pos..]
                    .iter()
                    .position(|&b| b == b'<')
                    .unwrap_or(self.input.len() - self.pos);
                self.pos += len;
                let raw = self.slice(start, self.pos);
                // Fast path: inter-element whitespace is skipped without
                // decoding (an entity could still decode to whitespace, so
                // raw bytes containing `&` go through the slow path).
                if raw.iter().all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n')) {
                    continue;
                }
                let text = self.decode_entities(raw)?;
                if text.chars().all(char::is_whitespace) {
                    continue; // inter-element whitespace (via entities)
                }
                return Ok(Some(XmlEvent::Text(text)));
            }
            // A `<…>` construct.
            if self.starts_with(b"<?") {
                self.skip_until(b"?>")?;
                continue;
            }
            if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
                continue;
            }
            if self.starts_with(b"<![CDATA[") {
                self.pos += b"<![CDATA[".len();
                let start = self.pos;
                while self.pos < self.input.len() && !self.starts_with(b"]]>") {
                    self.pos += 1;
                }
                let raw = self.slice(start, self.pos);
                self.skip_until(b"]]>")?;
                return Ok(Some(XmlEvent::Text(String::from_utf8_lossy(raw))));
            }
            if self.starts_with(b"<!") {
                // DOCTYPE etc. — the internal subset may contain `>`.
                if !skip_markup_decl(self.input, &mut self.pos) {
                    return Err(self.err("unterminated markup declaration"));
                }
                continue;
            }
            if self.starts_with(b"</") {
                self.pos += 2;
                let name = self.read_name()?;
                self.skip_whitespace();
                self.expect(b'>')?;
                match self.open.pop() {
                    Some(expected) if expected == name => {}
                    Some(expected) => {
                        return Err(
                            self.err(format!("mismatched `</{name}>`; expected `</{expected}>`"))
                        )
                    }
                    None => {
                        return Err(self.err(format!("closing `</{name}>` with no open element")))
                    }
                }
                return Ok(Some(XmlEvent::EndElement { name }));
            }
            // Start tag.
            self.expect(b'<')?;
            let name = self.read_name()?;
            let mut attributes = Vec::new();
            loop {
                self.skip_whitespace();
                match self.peek() {
                    Some(b'>') => {
                        self.pos += 1;
                        self.open.push(name);
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: false,
                        }));
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        self.expect(b'>')?;
                        self.pending_end = Some(name);
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: true,
                        }));
                    }
                    Some(_) => {
                        let key = self.read_name()?;
                        self.skip_whitespace();
                        self.expect(b'=')?;
                        self.skip_whitespace();
                        let value = self.read_attribute_value()?;
                        attributes.push((key, value));
                    }
                    None => return Err(self.err("unterminated start tag")),
                }
            }
        }
    }
}

/// 1-based line number of byte offset `pos` in `input`.
pub(crate) fn line_at(input: &[u8], pos: usize) -> usize {
    1 + input[..pos.min(input.len())].iter().filter(|&&b| b == b'\n').count()
}

/// Whether `b` may appear in an element or attribute name. Shared with the
/// chunk scanner so both stages agree on where a name ends.
#[inline]
pub(crate) fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

/// Consumes the name bytes at `*pos`, returning the (possibly empty) range
/// as a slice. Shared with the chunk scanner.
#[inline]
pub(crate) fn take_name_bytes<'a>(input: &'a [u8], pos: &mut usize) -> &'a [u8] {
    let start = *pos;
    while let Some(&b) = input.get(*pos) {
        if !is_name_byte(b) {
            break;
        }
        *pos += 1;
    }
    &input[start..*pos]
}

/// Advances `*pos` to just past the next occurrence of `until`. Returns
/// `false` (with `*pos` at end of input) when the sequence never occurs.
/// Shared with the chunk scanner so skipping of comments / PIs / CDATA is
/// identical in both stages.
pub(crate) fn skip_past(input: &[u8], pos: &mut usize, until: &[u8]) -> bool {
    let first = until[0];
    while *pos < input.len() {
        match input[*pos..].iter().position(|&b| b == first) {
            Some(i) => {
                *pos += i;
                if input[*pos..].starts_with(until) {
                    *pos += until.len();
                    return true;
                }
                *pos += 1;
            }
            None => break,
        }
    }
    *pos = input.len();
    false
}

/// Skips a markup declaration (`<!DOCTYPE …>`, `<!ENTITY …>`, …) whose
/// `<!` starts at `*pos`, leaving `*pos` just past the closing `>`.
///
/// A DOCTYPE may carry an `[ … ]` internal subset holding nested `<!…>`
/// declarations, comments, processing instructions and quoted literals —
/// a `>` inside any of those does not end the DOCTYPE, so a bare
/// skip-to-`>` would leak the remainder of the subset into the token
/// stream. Tracked here: quoted literals (`"…"` / `'…'`), embedded
/// comments and PIs (via [`skip_past`]), nested declaration depth and the
/// subset bracket. Returns `false` (with `*pos` at end of input) when the
/// declaration never terminates. Shared by the real parser and the chunk
/// scanner so both stages skip identical byte ranges.
pub(crate) fn skip_markup_decl(input: &[u8], pos: &mut usize) -> bool {
    debug_assert!(input[*pos..].starts_with(b"<!"));
    *pos += 2;
    let mut decls = 1usize; // open `<!…` declarations
    let mut subset = 0usize; // `[ … ]` bracket depth
    while *pos < input.len() {
        match input[*pos] {
            quote @ (b'"' | b'\'') => {
                *pos += 1;
                match input[*pos..].iter().position(|&b| b == quote) {
                    Some(i) => *pos += i + 1,
                    None => {
                        *pos = input.len();
                        return false;
                    }
                }
            }
            b'<' if input[*pos..].starts_with(b"<!--") => {
                if !skip_past(input, pos, b"-->") {
                    return false;
                }
            }
            b'<' if input[*pos..].starts_with(b"<?") => {
                if !skip_past(input, pos, b"?>") {
                    return false;
                }
            }
            b'<' if input[*pos..].starts_with(b"<!") => {
                decls += 1;
                *pos += 2;
            }
            b'[' => {
                subset += 1;
                *pos += 1;
            }
            b']' => {
                subset = subset.saturating_sub(1);
                *pos += 1;
            }
            b'>' => {
                *pos += 1;
                if decls > 1 {
                    decls -= 1;
                } else if subset == 0 {
                    return true;
                }
                // else: a stray `>` inside the internal subset — the
                // DOCTYPE's own `>` still comes after the closing `]`.
            }
            _ => *pos += 1,
        }
    }
    false
}

/// Escapes a string for inclusion in XML attribute values or text.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events(s: &str) -> Vec<XmlEvent<'_>> {
        let mut p = XmlParser::new(s);
        let mut out = Vec::new();
        while let Some(e) = p.next_event().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn parses_nested_elements() {
        let events = all_events(r#"<log a="1"><trace><event/></trace></log>"#);
        assert_eq!(events.len(), 6);
        match &events[0] {
            XmlEvent::StartElement { name, attributes, self_closing } => {
                assert_eq!(*name, "log");
                assert_eq!(attributes, &[("a", Cow::Borrowed("1"))]);
                assert!(!self_closing);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            matches!(&events[2], XmlEvent::StartElement { name, self_closing: true, .. } if *name == "event")
        );
        assert!(matches!(&events[3], XmlEvent::EndElement { name } if *name == "event"));
        assert!(matches!(&events[5], XmlEvent::EndElement { name } if *name == "log"));
    }

    #[test]
    fn skips_prolog_comments_doctype() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE log><!-- hi --><log></log>";
        let events = all_events(doc);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn doctype_internal_subset_does_not_leak() {
        // The `>` inside the entity declarations, the comment and the
        // quoted literal must all stay inside the DOCTYPE: the old
        // skip-to-`>` stopped at the first one and leaked ` ]>` (and the
        // rest of the subset) into the token stream as text.
        for doc in [
            "<!DOCTYPE log [ <!ENTITY auth \"Bob\"> ]><log></log>",
            "<!DOCTYPE log [ <!ENTITY gt2 \"x > y\"> <!ENTITY b 'c'> ]><log></log>",
            "<!DOCTYPE log [ <!-- > inside comment --> <!ELEMENT log ANY> ]><log></log>",
            "<!DOCTYPE log [ <?pi with > inside?> ]><log></log>",
            "<!DOCTYPE log SYSTEM \"http://a/b>c.dtd\"><log></log>",
        ] {
            let events = all_events(doc);
            assert_eq!(events.len(), 2, "subset leaked in {doc:?}: {events:?}");
            assert!(matches!(&events[0], XmlEvent::StartElement { name: "log", .. }));
        }
    }

    #[test]
    fn unterminated_doctype_subset_is_an_error() {
        for bad in ["<!DOCTYPE log [ <!ENTITY a \"b\"> <log></log>", "<!DOCTYPE log [ ]"] {
            let mut p = XmlParser::new(bad);
            let mut saw_err = false;
            loop {
                match p.next_event() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        saw_err = true;
                        assert!(e.to_string().contains("markup declaration"), "{e}");
                        break;
                    }
                }
            }
            assert!(saw_err, "accepted {bad:?}");
        }
    }

    #[test]
    fn skip_markup_decl_lands_after_the_real_close() {
        let doc = b"<!DOCTYPE log [ <!ENTITY a \"]>\"> ]><log/>";
        let mut pos = 0usize;
        assert!(skip_markup_decl(doc, &mut pos));
        assert_eq!(&doc[pos..], b"<log/>");
    }

    #[test]
    fn decodes_entities_in_attributes_and_text() {
        let events = all_events(r#"<a k="x &amp; y &lt; &#65; &#x42;">T &gt; 1</a>"#);
        match &events[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].1, "x & y < A B");
            }
            _ => panic!(),
        }
        assert!(matches!(&events[1], XmlEvent::Text(t) if t == "T > 1"));
    }

    #[test]
    fn plain_values_borrow_from_the_input() {
        let events = all_events(r#"<a k="plain">body text</a>"#);
        match &events[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert!(matches!(&attributes[0].1, Cow::Borrowed("plain")));
            }
            _ => panic!(),
        }
        assert!(matches!(&events[1], XmlEvent::Text(Cow::Borrowed("body text"))));
    }

    #[test]
    fn whitespace_only_text_is_skipped() {
        let events = all_events("<a>\n   <b/>\n</a>");
        assert_eq!(events.len(), 4); // a, b, /b, /a
        let entity_ws = all_events("<a>&#32;&#9;</a>");
        assert_eq!(entity_ws.len(), 2, "entity-encoded whitespace is still whitespace");
    }

    #[test]
    fn cdata_is_text() {
        let events = all_events("<a><![CDATA[1 < 2 & 3]]></a>");
        assert!(matches!(&events[1], XmlEvent::Text(t) if t == "1 < 2 & 3"));
    }

    #[test]
    fn single_quoted_attributes() {
        let events = all_events("<a k='v'/>");
        match &events[0] {
            XmlEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].1, "v"),
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "<a><b></a>",
            "<a",
            "<a k=>",
            "<a k=\"v>",
            "</a>",
            "<a>&bogus;</a>",
            "<a>&#xZZ;</a>",
            "<a><b>",
        ] {
            let mut p = XmlParser::new(bad);
            let mut result = Ok(());
            loop {
                match p.next_event() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            assert!(result.is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn invalid_utf8_in_names_is_an_error() {
        let mut p = XmlParser::from_bytes(b"<a\xFFb k=\"v\"/>");
        let mut saw_err = false;
        loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    saw_err = true;
                    assert!(e.to_string().contains("UTF-8"), "{e}");
                    break;
                }
            }
        }
        assert!(saw_err);
    }

    #[test]
    fn invalid_utf8_in_values_is_lossy() {
        let mut p = XmlParser::from_bytes(b"<a k=\"x\xFFy\"/>");
        match p.next_event().unwrap().unwrap() {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].1, "x\u{FFFD}y");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line_numbers() {
        let mut p = XmlParser::new("<a>\n<b>\n</c>");
        let mut last = None;
        loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    last = Some(e);
                    break;
                }
            }
        }
        let msg = last.unwrap().to_string();
        assert!(msg.contains("line 3"), "got {msg}");
    }

    #[test]
    fn escape_round_trips() {
        let s = "a<b>&\"'c";
        let escaped = escape(s);
        let doc = format!("<a k=\"{escaped}\"/>");
        let mut p = XmlParser::new(&doc);
        match p.next_event().unwrap().unwrap() {
            XmlEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].1, s),
            _ => panic!(),
        }
    }
}
