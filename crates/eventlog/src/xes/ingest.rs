//! Bounded-memory streaming ingestion: producer/consumer over the
//! windowed scanner.
//!
//! [`ingest_stream`] wires the pieces of the chunked pipeline into a
//! streaming one: a producer thread drives [`StreamScanner`] over a
//! [`Read`] source and hands out batches of owned trace chunks over a
//! *bounded* queue, worker threads parse each batch into a
//! [`LogFragment`] with a thread-local interner, and the consumer merges
//! the results strictly in document order into a [`BatchSink`]. Because
//! merging happens in document order — the same order a serial pass would
//! produce — the resulting builder state is bit-identical to
//! [`parse_bytes`](crate::xes::reader::parse_bytes) on the equivalent
//! in-memory document, for any batch size and worker count.
//!
//! Memory stays bounded by `queue_depth` batches of `batch_traces` traces
//! plus the scanner window: the document text is never held whole. What
//! the *sink* accumulates is its own business — [`LogBuilder`] keeps
//! everything (the in-memory route), while the on-disk store
//! ([`crate::store::StoreWriter`]) spills traces after every batch.

use crate::error::{Error, Result};
use crate::log::{LogBuilder, LogFragment};
use crate::parallel;
use crate::xes::reader::{parse_log_segment, parse_trace_into, shift_lines};
use crate::xes::stream::{OwnedSegment, StreamItem, StreamScanner, DEFAULT_READ_CHUNK};
use crate::EventLog;
use std::collections::BTreeMap;
use std::io::Read;
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;

/// Where streamed batches end up. Everything funnels into one
/// [`LogBuilder`] — that is what keeps symbol numbering and class-id
/// assignment identical to the in-memory route — and [`BatchSink::commit`]
/// marks the points where a spilling sink may move the builder's
/// accumulated traces elsewhere.
pub trait BatchSink {
    /// The builder log-level segments are parsed into and trace fragments
    /// are merged into, in document order.
    fn builder(&mut self) -> &mut LogBuilder;

    /// Commit point, called after each merged trace batch. A spilling
    /// sink (the on-disk store) drains the builder's traces here; the
    /// in-memory sink does nothing and accumulates the whole log.
    fn commit(&mut self) -> Result<()>;
}

/// The in-memory route: keep every trace in the builder.
impl BatchSink for LogBuilder {
    fn builder(&mut self) -> &mut LogBuilder {
        self
    }

    fn commit(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Tuning knobs for [`ingest_stream`].
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Traces per parse batch (and per [`BatchSink::commit`]). Larger
    /// batches amortize merge overhead; smaller ones bound memory tighter.
    pub batch_traces: usize,
    /// Refill granularity of the scanner window, in bytes.
    pub read_chunk: usize,
    /// Maximum in-flight batches between producer and consumer; `0` means
    /// twice the worker count.
    pub queue_depth: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { batch_traces: 512, read_chunk: DEFAULT_READ_CHUNK, queue_depth: 0 }
    }
}

impl IngestOptions {
    fn effective_queue_depth(&self, workers: usize) -> usize {
        if self.queue_depth == 0 {
            workers * 2
        } else {
            self.queue_depth
        }
    }
}

/// Streams an XES document from `source` into `sink` with bounded memory.
///
/// Equivalent to parsing the whole document with
/// [`parse_bytes`](crate::xes::reader::parse_bytes) into the sink's
/// builder, bit for bit, but the document text is only ever held one
/// window plus `queue_depth` batches at a time. Runs the producer /
/// worker / consumer pipeline on scoped threads when parallel ingestion
/// is enabled (`rayon` feature + [`crate::parallel::set_parallel`]), and
/// a single-threaded loop otherwise — the result is identical either way.
pub fn ingest_stream<R: Read + Send, S: BatchSink>(
    source: R,
    sink: &mut S,
    options: &IngestOptions,
) -> Result<()> {
    let workers = parallel::worker_count();
    if workers <= 1 {
        ingest_serial(source, sink, options)
    } else {
        ingest_parallel(source, sink, options, workers)
    }
}

/// Convenience: stream-parse into a fresh in-memory [`EventLog`].
pub fn parse_reader<R: Read + Send>(source: R, options: &IngestOptions) -> Result<EventLog> {
    let mut builder = LogBuilder::new();
    ingest_stream(source, &mut builder, options)?;
    Ok(builder.build())
}

/// Parses one batch of owned trace chunks into a fragment, shifting error
/// lines to document-absolute positions via each chunk's recorded line.
fn parse_batch(segments: &[OwnedSegment]) -> Result<LogFragment> {
    let mut fragment = LogFragment::new();
    for seg in segments {
        parse_trace_into(&mut fragment, &seg.bytes).map_err(|e| shift_lines(e, seg.line - 1))?;
    }
    Ok(fragment)
}

/// Applies one document-order item to the sink.
fn apply_log_segment<S: BatchSink>(sink: &mut S, seg: &OwnedSegment) -> Result<()> {
    parse_log_segment(sink.builder(), &seg.bytes).map_err(|e| shift_lines(e, seg.line - 1))
}

fn merge_batch<S: BatchSink>(sink: &mut S, fragment: LogFragment) -> Result<()> {
    sink.builder().merge_fragment(fragment)?;
    sink.commit()
}

fn ingest_serial<R: Read, S: BatchSink>(
    source: R,
    sink: &mut S,
    options: &IngestOptions,
) -> Result<()> {
    let mut scanner = StreamScanner::new(source, options.read_chunk);
    let mut batch: Vec<OwnedSegment> = Vec::new();
    while let Some(item) = scanner.next_item()? {
        match item {
            StreamItem::Log(seg) => {
                if !batch.is_empty() {
                    merge_batch(sink, parse_batch(&batch)?)?;
                    batch.clear();
                }
                apply_log_segment(sink, &seg)?;
            }
            StreamItem::Trace(seg) => {
                batch.push(seg);
                if batch.len() >= options.batch_traces.max(1) {
                    merge_batch(sink, parse_batch(&batch)?)?;
                    batch.clear();
                }
            }
        }
    }
    if !batch.is_empty() {
        merge_batch(sink, parse_batch(&batch)?)?;
    }
    Ok(())
}

/// Work items the producer hands to the worker pool, tagged with a
/// document-order sequence number.
enum Work {
    /// A log-level segment: nothing to parse in parallel, forwarded so it
    /// keeps its place in the document order.
    Log(OwnedSegment),
    /// A batch of trace chunks to parse into a fragment.
    Batch(Vec<OwnedSegment>),
    /// The scanner failed; surfaces to the consumer at this point of the
    /// document order.
    Fail(Error),
}

/// What workers hand the consumer.
enum Parsed {
    Log(OwnedSegment),
    Fragment(LogFragment),
}

fn ingest_parallel<R: Read + Send, S: BatchSink>(
    source: R,
    sink: &mut S,
    options: &IngestOptions,
    workers: usize,
) -> Result<()> {
    let queue_depth = options.effective_queue_depth(workers).max(1);
    let batch_traces = options.batch_traces.max(1);
    let (work_tx, work_rx) = sync_channel::<(u64, Work)>(queue_depth);
    let (done_tx, done_rx) = sync_channel::<(u64, Result<Parsed>)>(queue_depth);
    let work_rx = Mutex::new(work_rx);
    std::thread::scope(|scope| {
        let work_rx = &work_rx;

        // Producer: scan the source, batch traces, tag with seq numbers.
        // A send error means the consumer bailed out — just stop.
        let read_chunk = options.read_chunk;
        scope.spawn(move || {
            let mut scanner = StreamScanner::new(source, read_chunk);
            let mut seq = 0u64;
            let mut batch: Vec<OwnedSegment> = Vec::new();
            let send = |work: Work, seq: &mut u64| {
                let ok = work_tx.send((*seq, work)).is_ok();
                *seq += 1;
                ok
            };
            loop {
                match scanner.next_item() {
                    Ok(Some(StreamItem::Trace(seg))) => {
                        batch.push(seg);
                        if batch.len() >= batch_traces
                            && !send(Work::Batch(std::mem::take(&mut batch)), &mut seq)
                        {
                            return;
                        }
                    }
                    Ok(Some(StreamItem::Log(seg))) => {
                        if !batch.is_empty()
                            && !send(Work::Batch(std::mem::take(&mut batch)), &mut seq)
                        {
                            return;
                        }
                        if !send(Work::Log(seg), &mut seq) {
                            return;
                        }
                    }
                    Ok(None) => {
                        if !batch.is_empty() {
                            send(Work::Batch(std::mem::take(&mut batch)), &mut seq);
                        }
                        return;
                    }
                    Err(e) => {
                        send(Work::Fail(e), &mut seq);
                        return;
                    }
                }
            }
        });

        // Workers: parse batches into fragments; forward everything else.
        for _ in 0..workers {
            let done_tx = done_tx.clone();
            scope.spawn(move || loop {
                let next = work_rx.lock().expect("ingest worker poisoned").recv();
                let Ok((seq, work)) = next else { return };
                let parsed = match work {
                    Work::Log(seg) => Ok(Parsed::Log(seg)),
                    Work::Batch(segs) => parse_batch(&segs).map(Parsed::Fragment),
                    Work::Fail(e) => Err(e),
                };
                if done_tx.send((seq, parsed)).is_err() {
                    return; // consumer bailed out
                }
            });
        }
        drop(done_tx);

        // Consumer (this thread): apply results strictly in document
        // order, stashing out-of-order arrivals.
        let mut next_seq = 0u64;
        let mut stash: BTreeMap<u64, Result<Parsed>> = BTreeMap::new();
        while let Ok((seq, parsed)) = done_rx.recv() {
            stash.insert(seq, parsed);
            while let Some(parsed) = stash.remove(&next_seq) {
                next_seq += 1;
                match parsed? {
                    Parsed::Log(seg) => apply_log_segment(sink, &seg)?,
                    Parsed::Fragment(fragment) => merge_batch(sink, fragment)?,
                }
            }
        }
        debug_assert!(stash.is_empty(), "gap in ingest sequence numbers");
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xes::reader::parse_str;

    const DOC: &str = r#"<?xml version="1.0"?>
<log xes.version="1.0">
  <extension name="Concept" prefix="concept" uri="http://x"/>
  <string key="concept:name" value="demo"/>
  <trace>
    <string key="concept:name" value="c1"/>
    <event><string key="concept:name" value="a"/><int key="cost" value="3"/></event>
    <event><string key="concept:name" value="b"/></event>
  </trace>
  <trace>
    <string key="concept:name" value="c2"/>
    <event><string key="concept:name" value="a"/></event>
  </trace>
  <int key="count" value="2"/>
</log>"#;

    #[test]
    fn streamed_log_matches_in_memory_parse() {
        let expect = parse_str(DOC).unwrap();
        for batch_traces in [1, 2, 7] {
            for read_chunk in [3, 64, 1 << 20] {
                let options =
                    IngestOptions { batch_traces, read_chunk, ..IngestOptions::default() };
                let got = parse_reader(DOC.as_bytes(), &options).unwrap();
                assert_eq!(got.traces(), expect.traces());
                assert_eq!(got.attributes(), expect.attributes());
                let a: Vec<_> = got.interner().iter().collect();
                let b: Vec<_> = expect.interner().iter().collect();
                assert_eq!(a, b, "batch {batch_traces} chunk {read_chunk}");
            }
        }
    }

    #[test]
    fn parse_errors_carry_document_absolute_lines() {
        // Malformed event on line 7 of the streamed document.
        let doc = "<?xml version=\"1.0\"?>\n<log>\n<trace>\n<event>\
                   <string key=\"concept:name\" value=\"a\"/></event>\n</trace>\n<trace>\n\
                   <event><string key=\"concept:name\"/></event>\n</trace>\n</log>";
        let expect = parse_str(doc).unwrap_err().to_string();
        let got = parse_reader(
            doc.as_bytes(),
            &IngestOptions { read_chunk: 5, ..IngestOptions::default() },
        )
        .unwrap_err()
        .to_string();
        assert_eq!(got, expect);
        assert!(got.contains("line 7"), "got: {got}");
    }
}
