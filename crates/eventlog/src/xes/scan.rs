//! Byte-level document scanner: stage one of the chunked XES pipeline.
//!
//! [`scan_document`] splits an XES document into *segments* without
//! building a single string: byte ranges of log-level content (attributes,
//! extensions, `gecco:classattr` wrappers, …) interleaved, in document
//! order, with byte ranges that each cover one complete
//! `<trace>…</trace>` subtree. Trace segments can then be parsed into
//! [`crate::log::LogFragment`]s independently — and in parallel — while the
//! (tiny) log-level segments are parsed serially, and everything is merged
//! back in document order so the result is identical to a single serial
//! pass.
//!
//! The scanner is a deliberately shallow tokenizer: it only understands
//! enough XML to find tag boundaries — quoted attribute values (a `>`
//! inside quotes does not end a tag), comments, CDATA sections, processing
//! instructions and DOCTYPE declarations (a `</trace>` inside any of those
//! is not a real end tag). Everything else — attribute decoding, name
//! validation, well-formedness *within* a chunk — is left to the real
//! parser in stage two.

use crate::error::{Error, Result};
use crate::xes::xml::{line_at, skip_markup_decl, skip_past, take_name_bytes};
use std::ops::Range;

/// One document-order piece of the `<log>` body.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Log-level content between traces: typed attributes, extensions,
    /// classifiers, `gecco:classattr` wrappers. Parsed serially.
    Log(Range<usize>),
    /// One complete `<trace …>…</trace>` (or self-closing `<trace/>`)
    /// subtree. Parsed independently per chunk.
    Trace(Range<usize>),
}

/// The result of [`scan_document`]: the log body split into segments.
#[derive(Debug, Clone, Default)]
pub struct ScannedDocument {
    /// Segments of the `<log>` body in document order.
    pub segments: Vec<Segment>,
}

/// What the shallow tokenizer saw at one `<…>` construct.
pub(crate) enum RawTag<'a> {
    Start { name: &'a [u8], self_closing: bool },
    End { name: &'a [u8] },
}

/// Outcome of one tokenizer step over a window that may be a prefix of the
/// document: either the construct completed inside the window, or the
/// window ended first and the caller must refill and rescan.
///
/// When [`Scanner::at_eof`] is `true` (the whole-document mode used by
/// [`scan_document`]), `Incomplete` is never produced — every truncated
/// construct is a hard error instead, exactly as before the streaming
/// refactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step<T> {
    Done(T),
    /// The window ended before the construct did — refill and rescan.
    Incomplete,
}

/// Propagates [`Step::Incomplete`] out of a `Result<Step<_>>`-returning
/// function, unwrapping the `Done` payload otherwise.
macro_rules! step {
    ($e:expr) => {
        match $e? {
            Step::Done(v) => v,
            Step::Incomplete => return Ok(Step::Incomplete),
        }
    };
}

pub(crate) struct Scanner<'a> {
    pub(crate) input: &'a [u8],
    pub(crate) pos: usize,
    /// Whether `input` ends at the true end of the document. When `false`
    /// the scanner is looking at a streaming window and reports truncated
    /// constructs as [`Step::Incomplete`] instead of erroring.
    pub(crate) at_eof: bool,
}

impl<'a> Scanner<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Xml { line: line_at(self.input, self.pos), message: message.into() }
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    /// Unwraps a step produced in whole-document mode, where `Incomplete`
    /// is unreachable.
    fn complete<T>(step: Step<T>) -> T {
        match step {
            Step::Done(v) => v,
            Step::Incomplete => unreachable!("Step::Incomplete with at_eof"),
        }
    }

    /// Advances to (and over) the byte sequence `until`; shares
    /// [`skip_past`] with the real parser so both stages skip comments,
    /// PIs and CDATA identically.
    fn skip_until(&mut self, until: &[u8]) -> Result<Step<()>> {
        if skip_past(self.input, &mut self.pos, until) {
            return Ok(Step::Done(()));
        }
        if !self.at_eof {
            return Ok(Step::Incomplete);
        }
        Err(self
            .err(format!("unterminated construct; expected `{}`", String::from_utf8_lossy(until))))
    }

    /// Reads the name bytes at the current position (same accepted set as
    /// the real parser via [`take_name_bytes`]; validation happens in
    /// stage two).
    fn read_name_bytes(&mut self) -> &'a [u8] {
        take_name_bytes(self.input, &mut self.pos)
    }

    /// Advances to the next element tag, skipping text, comments, CDATA,
    /// processing instructions and DOCTYPE. Returns the tag and the byte
    /// offset of its opening `<`, or `None` at end of input.
    pub(crate) fn next_tag(&mut self) -> Result<Step<Option<(usize, RawTag<'a>)>>> {
        loop {
            match self.input[self.pos..].iter().position(|&b| b == b'<') {
                Some(i) => self.pos += i,
                None => {
                    self.pos = self.input.len();
                    if !self.at_eof {
                        return Ok(Step::Incomplete);
                    }
                    return Ok(Step::Done(None));
                }
            }
            let tag_start = self.pos;
            // The dispatch below looks at up to `<![CDATA[`.len() bytes;
            // with fewer left in a partial window it could misclassify a
            // construct split across the window edge.
            if !self.at_eof && self.input.len() - self.pos < b"<![CDATA[".len() {
                return Ok(Step::Incomplete);
            }
            if self.starts_with(b"<?") {
                step!(self.skip_until(b"?>"));
                continue;
            }
            if self.starts_with(b"<!--") {
                step!(self.skip_until(b"-->"));
                continue;
            }
            if self.starts_with(b"<![CDATA[") {
                step!(self.skip_until(b"]]>"));
                continue;
            }
            if self.starts_with(b"<!") {
                // DOCTYPE etc.; shares [`skip_markup_decl`] with the real
                // parser so internal subsets containing `>` skip to the
                // same byte in both stages.
                if !skip_markup_decl(self.input, &mut self.pos) {
                    if !self.at_eof {
                        return Ok(Step::Incomplete);
                    }
                    return Err(self.err("unterminated markup declaration"));
                }
                continue;
            }
            if self.starts_with(b"</") {
                self.pos += 2;
                let name = self.read_name_bytes();
                step!(self.skip_until(b">"));
                return Ok(Step::Done(Some((tag_start, RawTag::End { name }))));
            }
            // Start tag: scan to `>`/`/>`, honoring quoted attribute values.
            self.pos += 1;
            let name = self.read_name_bytes();
            let mut self_closing = false;
            loop {
                match self.input.get(self.pos) {
                    Some(b'"') | Some(b'\'') => {
                        let quote = self.input[self.pos];
                        self.pos += 1;
                        match self.input[self.pos..].iter().position(|&b| b == quote) {
                            Some(i) => self.pos += i + 1,
                            None => {
                                self.pos = self.input.len();
                                if !self.at_eof {
                                    return Ok(Step::Incomplete);
                                }
                                return Err(self.err("unterminated attribute value"));
                            }
                        }
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        break;
                    }
                    Some(b'/') if self.input.get(self.pos + 1) == Some(&b'>') => {
                        self.pos += 2;
                        self_closing = true;
                        break;
                    }
                    Some(_) => self.pos += 1,
                    None => {
                        if !self.at_eof {
                            return Ok(Step::Incomplete);
                        }
                        return Err(self.err("unterminated start tag"));
                    }
                }
            }
            return Ok(Step::Done(Some((tag_start, RawTag::Start { name, self_closing }))));
        }
    }

    /// Skips the remainder of a subtree whose start tag was just consumed.
    pub(crate) fn skip_subtree(&mut self) -> Result<Step<()>> {
        let mut depth = 1usize;
        while depth > 0 {
            match step!(self.next_tag()) {
                Some((_, RawTag::Start { self_closing, .. })) => {
                    if !self_closing {
                        depth += 1;
                    }
                }
                Some((_, RawTag::End { .. })) => depth -= 1,
                None => return Err(self.err("unexpected end of input while skipping element")),
            }
        }
        Ok(Step::Done(()))
    }
}

/// Scans a document into log-level segments and per-trace chunks.
///
/// Errors mirror the serial parser: a missing `<log>` root is an XES error,
/// unterminated constructs are XML errors. Structural problems *inside* a
/// chunk (mismatched tags, bad attributes) are intentionally not detected
/// here — stage two reports them with document-accurate line numbers.
pub fn scan_document(input: &[u8]) -> Result<ScannedDocument> {
    let mut scanner = Scanner { input, pos: 0, at_eof: true };
    // Find the root <log>, skipping any other top-level subtrees (the
    // serial parser accepted and ignored them).
    loop {
        match Scanner::complete(scanner.next_tag()?) {
            Some((_, RawTag::Start { name: b"log", self_closing })) => {
                if self_closing {
                    return Ok(ScannedDocument::default());
                }
                break;
            }
            Some((_, RawTag::Start { self_closing, .. })) => {
                if !self_closing {
                    Scanner::complete(scanner.skip_subtree()?);
                }
            }
            Some((_, RawTag::End { .. })) => {
                return Err(Error::Xes {
                    line: line_at(input, scanner.pos),
                    message: "no <log> element found".into(),
                })
            }
            None => {
                return Err(Error::Xes {
                    line: line_at(input, scanner.pos),
                    message: "no <log> element found".into(),
                })
            }
        }
    }
    let mut segments = Vec::new();
    let mut log_seg_start = scanner.pos;
    // Pushes the pending log-level range [log_seg_start, end) unless it is
    // pure inter-element whitespace.
    let push_log_segment = |segments: &mut Vec<Segment>, start: usize, end: usize| {
        if input[start..end].iter().any(|b| !matches!(b, b' ' | b'\t' | b'\r' | b'\n')) {
            segments.push(Segment::Log(start..end));
        }
    };
    let mut depth = 1usize; // inside <log>
    loop {
        match Scanner::complete(scanner.next_tag()?) {
            Some((tag_start, RawTag::Start { name, self_closing })) => {
                if depth == 1 && name == b"trace" {
                    push_log_segment(&mut segments, log_seg_start, tag_start);
                    if !self_closing {
                        Scanner::complete(scanner.skip_subtree()?);
                    }
                    segments.push(Segment::Trace(tag_start..scanner.pos));
                    log_seg_start = scanner.pos;
                } else if !self_closing {
                    depth += 1;
                }
            }
            Some((tag_start, RawTag::End { name })) => {
                depth -= 1;
                if depth == 0 {
                    if name != b"log" {
                        return Err(Error::Xml {
                            line: line_at(input, tag_start),
                            message: format!(
                                "mismatched `</{}>`; expected `</log>`",
                                String::from_utf8_lossy(name)
                            ),
                        });
                    }
                    push_log_segment(&mut segments, log_seg_start, tag_start);
                    return Ok(ScannedDocument { segments });
                }
            }
            None => {
                return Err(Error::Xml {
                    line: line_at(input, scanner.pos),
                    message: "unexpected end of input; `<log>` not closed".into(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(doc: &str) -> Vec<Segment> {
        scan_document(doc.as_bytes()).unwrap().segments
    }

    #[test]
    fn splits_prologue_traces_and_trailing() {
        let doc = r#"<log><string key="a" value="1"/><trace><event/></trace><trace/><int key="b" value="2"/></log>"#;
        let s = segs(doc);
        assert_eq!(s.len(), 4);
        assert!(matches!(&s[0], Segment::Log(_)));
        match &s[1] {
            Segment::Trace(r) => assert_eq!(&doc[r.clone()], "<trace><event/></trace>"),
            other => panic!("unexpected {other:?}"),
        }
        match &s[2] {
            Segment::Trace(r) => assert_eq!(&doc[r.clone()], "<trace/>"),
            other => panic!("unexpected {other:?}"),
        }
        match &s[3] {
            Segment::Log(r) => assert_eq!(&doc[r.clone()], r#"<int key="b" value="2"/>"#),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_gaps_produce_no_segments() {
        let s = segs("<log>\n  <trace/>\n  <trace/>\n</log>");
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|s| matches!(s, Segment::Trace(_))));
    }

    #[test]
    fn tricky_content_does_not_end_a_trace() {
        let doc = "<log><trace><!-- </trace> --><event a=\"</trace>\"/>\
                   <![CDATA[</trace>]]></trace></log>";
        let s = segs(doc);
        assert_eq!(s.len(), 1);
        match &s[0] {
            Segment::Trace(r) => assert!(doc[r.clone()].ends_with("]]></trace>")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_elements_inside_traces_are_tracked() {
        let doc = "<log><trace><event><string key=\"k\" value=\"v\"/></event></trace></log>";
        assert_eq!(segs(doc).len(), 1);
    }

    #[test]
    fn classattr_wrappers_stay_in_log_segments() {
        let doc = "<log><string key=\"gecco:classattr\" value=\"A\">\
                   <string key=\"s\" value=\"x\"/></string><trace/></log>";
        let s = segs(doc);
        assert_eq!(s.len(), 2);
        assert!(matches!(&s[0], Segment::Log(_)));
        assert!(matches!(&s[1], Segment::Trace(_)));
    }

    #[test]
    fn self_closing_log_is_empty() {
        assert_eq!(scan_document(b"<log/>").unwrap().segments.len(), 0);
        assert_eq!(scan_document(b"<?xml version=\"1.0\"?><log></log>").unwrap().segments.len(), 0);
    }

    #[test]
    fn missing_log_is_an_error() {
        assert!(scan_document(b"<notalog/>").is_err());
        assert!(scan_document(b"plain text").is_err());
    }

    #[test]
    fn unterminated_log_is_an_error() {
        assert!(scan_document(b"<log><trace>").is_err());
        assert!(scan_document(b"<log>").is_err());
    }

    #[test]
    fn non_log_top_level_subtrees_are_skipped() {
        let s = segs("<meta><x/></meta><log><trace/></log>");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn doctype_internal_subset_does_not_leak_into_segments() {
        // The old skip-to-`>` stopped inside the subset, so the leftover
        // `]>` bytes (or worse, a fake `<trace>` inside an entity value)
        // leaked into the scan. Both tokenizer stages now share
        // `skip_markup_decl`, so the prologue is skipped identically.
        for prolog in [
            "<!DOCTYPE log [ <!ENTITY auth \"Bob\"> ]>",
            // An entity value with a `>` followed by a fake `<log>`: the
            // pre-fix scanner took the leaked `<log>` as the root and
            // segmented the entity's own `<trace/>`.
            "<!DOCTYPE log [ <!ENTITY l \"x > <log><trace/></log>\"> ]>",
            // A leaked end tag aborted the pre-fix scan outright.
            "<!DOCTYPE log [ <!-- > --> <!ENTITY e \"v > </trace>\"> ]>",
        ] {
            let doc = format!("{prolog}<log><trace><event/></trace></log>");
            let s = segs(&doc);
            assert_eq!(s.len(), 1, "subset leaked for {prolog:?}: {s:?}");
            match &s[0] {
                Segment::Trace(r) => {
                    assert_eq!(&doc[r.clone()], "<trace><event/></trace>")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unterminated_doctype_is_an_error() {
        assert!(scan_document(b"<!DOCTYPE log [ <log><trace/></log>").is_err());
    }
}
