//! The event log and its builder.

use crate::classes::{ClassId, ClassRegistry, ClassSet};
use crate::error::Result;
use crate::event::Event;
use crate::interner::{Interner, Symbol};
use crate::trace::Trace;
use crate::value::AttributeValue;

/// Standard XES attribute keys, interned eagerly into every log.
#[derive(Debug, Clone, Copy)]
pub struct StdKeys {
    /// `concept:name` — activity / case name.
    pub concept_name: Symbol,
    /// `time:timestamp` — event completion time.
    pub timestamp: Symbol,
    /// `org:role` — executing role.
    pub role: Symbol,
    /// `org:resource` — executing resource.
    pub resource: Symbol,
    /// `lifecycle:transition` — start/complete marker.
    pub lifecycle: Symbol,
}

/// An event log `L` (§III-A): a collection of traces over a shared class
/// registry and interner. Immutable once built; construct via [`LogBuilder`].
#[derive(Debug, Clone)]
pub struct EventLog {
    interner: Interner,
    classes: ClassRegistry,
    traces: Vec<Trace>,
    trace_class_sets: Vec<ClassSet>,
    attributes: Vec<(Symbol, AttributeValue)>,
    std_keys: StdKeys,
}

impl EventLog {
    /// The per-log string interner.
    #[inline]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolves an interned symbol.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The class registry (`C_L` plus metadata).
    #[inline]
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Number of distinct event classes, `|C_L|`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The traces of the log.
    #[inline]
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Cached per-trace class sets (used by co-occurrence pruning).
    #[inline]
    pub fn trace_class_sets(&self) -> &[ClassSet] {
        &self.trace_class_sets
    }

    /// Log-level attributes.
    pub fn attributes(&self) -> &[(Symbol, AttributeValue)] {
        &self.attributes
    }

    /// Symbols of the standard XES keys.
    #[inline]
    pub fn std_keys(&self) -> StdKeys {
        self.std_keys
    }

    /// Looks up an attribute key by name without interning.
    pub fn key(&self, name: &str) -> Option<Symbol> {
        self.interner.get(name)
    }

    /// The name of an event class.
    pub fn class_name(&self, id: ClassId) -> &str {
        self.interner.resolve(self.classes.info(id).name)
    }

    /// Looks up a class id by its name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.interner.get(name).and_then(|sym| self.classes.get(sym))
    }

    /// Total number of events, `Σ_σ |σ|`.
    pub fn num_events(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// Whether at least one trace contains every class of `group`
    /// (`occurs(g, L)`, Algorithm 1 line 13), by scanning every trace's
    /// class bitmap. Hot paths with an index at hand use the
    /// postings-intersection [`crate::LogIndex::occurs`] instead; this scan
    /// stays as its oracle.
    pub fn occurs(&self, group: &ClassSet) -> bool {
        self.trace_class_sets.iter().any(|cs| group.is_subset(cs))
    }

    /// Renders a trace's class sequence for debugging and examples.
    pub fn format_trace(&self, trace: &Trace) -> String {
        let names: Vec<&str> = trace.events().iter().map(|e| self.class_name(e.class())).collect();
        format!("⟨{}⟩", names.join(", "))
    }

    /// Renders a group as `{a, b, c}` using class names.
    pub fn format_group(&self, group: &ClassSet) -> String {
        let mut names: Vec<&str> = group.iter().map(|c| self.class_name(c)).collect();
        names.sort_unstable();
        format!("{{{}}}", names.join(", "))
    }
}

/// Builder for [`EventLog`]. Interns all strings and assigns dense class ids.
#[derive(Debug)]
pub struct LogBuilder {
    interner: Interner,
    classes: ClassRegistry,
    traces: Vec<Trace>,
    attributes: Vec<(Symbol, AttributeValue)>,
    std_keys: StdKeys,
}

impl Default for LogBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LogBuilder {
    /// Creates an empty builder with the standard XES keys pre-interned.
    pub fn new() -> Self {
        let mut interner = Interner::new();
        let std_keys = StdKeys {
            concept_name: interner.intern("concept:name"),
            timestamp: interner.intern("time:timestamp"),
            role: interner.intern("org:role"),
            resource: interner.intern("org:resource"),
            lifecycle: interner.intern("lifecycle:transition"),
        };
        LogBuilder {
            interner,
            classes: ClassRegistry::new(),
            traces: Vec::new(),
            attributes: Vec::new(),
            std_keys,
        }
    }

    /// Interns a string (exposed for writers that need symbols up front).
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Adds a log-level string attribute.
    pub fn log_attr_str(&mut self, key: &str, value: &str) -> &mut Self {
        let k = self.interner.intern(key);
        let v = AttributeValue::Str(self.interner.intern(value));
        self.attributes.push((k, v));
        self
    }

    /// Adds a log-level attribute with an already-typed value.
    pub fn log_attr(&mut self, key: &str, value: AttributeValue) -> &mut Self {
        let k = self.interner.intern(key);
        self.attributes.push((k, value));
        self
    }

    /// Registers (or fetches) the class named `name`.
    pub fn class(&mut self, name: &str) -> Result<ClassId> {
        let sym = self.interner.intern(name);
        self.classes.get_or_insert(sym)
    }

    /// Attaches a class-level string attribute (e.g. the originating system
    /// of the paper's case study) to class `name`.
    pub fn class_attr_str(&mut self, class: &str, key: &str, value: &str) -> Result<&mut Self> {
        let id = self.class(class)?;
        let k = self.interner.intern(key);
        let v = AttributeValue::Str(self.interner.intern(value));
        let info = self.classes.info_mut(id);
        if let Some(slot) = info.attributes.iter_mut().find(|(ek, _)| *ek == k) {
            slot.1 = v;
        } else {
            info.attributes.push((k, v));
        }
        Ok(self)
    }

    /// Starts a new trace with the given case id (stored as `concept:name`).
    pub fn trace(&mut self, case_id: &str) -> TraceBuilder<'_> {
        let key = self.std_keys.concept_name;
        let val = AttributeValue::Str(self.interner.intern(case_id));
        TraceBuilder { log: self, attributes: vec![(key, val)], events: Vec::new() }
    }

    /// Starts a new trace with no pre-set attributes (used by the XES
    /// reader, which parses the case id like any other attribute).
    pub fn trace_raw(&mut self) -> TraceBuilder<'_> {
        TraceBuilder { log: self, attributes: Vec::new(), events: Vec::new() }
    }

    /// Appends a trace already expressed in **this builder's interner**:
    /// case attributes plus events given as `(class-name symbol, attrs)`.
    /// Classes are registered (or fetched) in event order. This is the
    /// low-level sink shared by [`LogBuilder::merge_fragment`] and the
    /// chunked CSV importer.
    pub fn push_trace_symbols(
        &mut self,
        attributes: Vec<(Symbol, AttributeValue)>,
        events: Vec<(Symbol, Vec<(Symbol, AttributeValue)>)>,
    ) -> Result<()> {
        let mut out = Vec::with_capacity(events.len());
        for (class_name, attrs) in events {
            let class = self.classes.get_or_insert(class_name)?;
            out.push(Event::new(class, attrs));
        }
        self.traces.push(Trace::new(attributes, out));
        Ok(())
    }

    /// Interns every string of `other` into this builder's interner (in
    /// `other`'s symbol order) and returns the remap table; see
    /// [`Interner::merge_from`].
    pub fn merge_interner(&mut self, other: &Interner) -> Vec<Symbol> {
        self.interner.merge_from(other)
    }

    /// Merges a chunk-parsed [`LogFragment`] into this builder: the
    /// fragment's thread-local interner is folded into the builder's (one
    /// intern per *distinct* string), every symbol is remapped through the
    /// resulting table, and the fragment's traces are appended in order.
    ///
    /// Merging fragments in document order reproduces, bit for bit, the
    /// symbol numbering and class-id assignment of a serial document-order
    /// parse — regardless of how the document was chunked or how many
    /// workers parsed the chunks.
    pub fn merge_fragment(&mut self, fragment: LogFragment) -> Result<()> {
        let map = self.merge_interner(&fragment.interner);
        for trace in fragment.traces {
            let attributes =
                trace.attributes.into_iter().map(|(k, v)| remap_attr(&map, k, v)).collect();
            let events = trace
                .events
                .into_iter()
                .map(|(class, attrs)| {
                    let attrs = attrs.into_iter().map(|(k, v)| remap_attr(&map, k, v)).collect();
                    (map[class.index()], attrs)
                })
                .collect();
            self.push_trace_symbols(attributes, events)?;
        }
        Ok(())
    }

    /// Takes the traces accumulated so far out of the builder, leaving the
    /// interner, class registry and log attributes in place.
    ///
    /// This is the spill primitive of the streaming store: the store
    /// writer merges fragments into a real builder (so symbol numbering
    /// and class-id assignment stay bit-identical to the in-memory route)
    /// and drains the materialized traces to disk after every batch,
    /// keeping the builder's memory bounded by one batch.
    pub fn drain_traces(&mut self) -> Vec<Trace> {
        std::mem::take(&mut self.traces)
    }

    /// Number of traces currently buffered in the builder.
    pub fn num_buffered_traces(&self) -> usize {
        self.traces.len()
    }

    /// Read access to the builder's interner (the store writer persists
    /// the string table in symbol order from here).
    pub(crate) fn interner_ref(&self) -> &Interner {
        &self.interner
    }

    /// Read access to the registered classes.
    pub(crate) fn classes_ref(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Read access to the log-level attributes.
    pub(crate) fn attributes_ref(&self) -> &[(Symbol, AttributeValue)] {
        &self.attributes
    }

    /// Mutable access to the class registry (the store loader re-registers
    /// classes in stored id order).
    pub(crate) fn classes_mut(&mut self) -> &mut ClassRegistry {
        &mut self.classes
    }

    /// Appends a log-level attribute whose symbols already live in this
    /// builder's interner.
    pub(crate) fn push_log_attr_raw(&mut self, key: Symbol, value: AttributeValue) {
        self.attributes.push((key, value));
    }

    /// Appends an already-constructed trace whose symbols and class ids
    /// belong to this builder.
    pub(crate) fn push_raw_trace(&mut self, trace: Trace) {
        self.traces.push(trace);
    }

    /// Finishes the log.
    pub fn build(self) -> EventLog {
        let trace_class_sets = self.traces.iter().map(Trace::class_set).collect();
        self.build_inner(trace_class_sets)
    }

    /// Builds the log with caller-supplied per-trace class bitmaps instead
    /// of rescanning every event. The caller guarantees `sets[i]` equals
    /// `traces[i].class_set()` — Step-3 abstraction maintains the bitmaps
    /// during the index splice (see
    /// [`crate::IndexSplicer::finish_parts`]), so the rewritten log's
    /// metadata comes for free. Debug builds verify the claim against the
    /// scan.
    ///
    /// # Panics
    /// If `sets.len()` differs from the number of traces.
    pub fn build_with_trace_class_sets(self, sets: Vec<ClassSet>) -> EventLog {
        assert_eq!(sets.len(), self.traces.len(), "one class set per trace required");
        debug_assert!(
            self.traces.iter().zip(&sets).all(|(t, s)| t.class_set() == *s),
            "supplied trace class sets diverge from the traces"
        );
        self.build_inner(sets)
    }

    fn build_inner(self, trace_class_sets: Vec<ClassSet>) -> EventLog {
        EventLog {
            interner: self.interner,
            classes: self.classes,
            traces: self.traces,
            trace_class_sets,
            attributes: self.attributes,
            std_keys: self.std_keys,
        }
    }
}

/// Remaps one `(key, value)` attribute pair from a fragment's local symbol
/// space through `map` into the merged builder's symbol space.
pub fn remap_attr(map: &[Symbol], key: Symbol, value: AttributeValue) -> (Symbol, AttributeValue) {
    let value = match value {
        AttributeValue::Str(s) => AttributeValue::Str(map[s.index()]),
        other => other,
    };
    (map[key.index()], value)
}

/// One chunk of parsed log content, expressed against its own thread-local
/// [`Interner`]. Chunk workers (XES trace chunks, CSV row chunks) fill a
/// fragment each; [`LogBuilder::merge_fragment`] folds them into the final
/// log in deterministic document order.
#[derive(Debug, Default)]
pub struct LogFragment {
    interner: Interner,
    traces: Vec<FragmentTrace>,
}

/// One trace inside a [`LogFragment`], in fragment-local symbols.
#[derive(Debug)]
pub struct FragmentTrace {
    /// Case-level attributes in document order.
    pub attributes: Vec<(Symbol, AttributeValue)>,
    /// Events as `(class-name symbol, attributes)` in document order.
    pub events: Vec<(Symbol, Vec<(Symbol, AttributeValue)>)>,
}

impl LogFragment {
    /// Creates an empty fragment with a fresh local interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string in the fragment's local interner.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Appends a trace to the fragment.
    pub fn push_trace(&mut self, trace: FragmentTrace) {
        self.traces.push(trace);
    }
}

/// Builder for one trace; finish with [`TraceBuilder::done`].
#[derive(Debug)]
pub struct TraceBuilder<'a> {
    log: &'a mut LogBuilder,
    attributes: Vec<(Symbol, AttributeValue)>,
    events: Vec<Event>,
}

impl TraceBuilder<'_> {
    /// Adds a case-level string attribute.
    pub fn attr_str(mut self, key: &str, value: &str) -> Self {
        let k = self.log.interner.intern(key);
        let v = AttributeValue::Str(self.log.interner.intern(value));
        self.attributes.push((k, v));
        self
    }

    /// Adds a case-level attribute with a pre-typed value. Any `Str` symbol
    /// must come from this builder's interner (see [`TraceBuilder::intern`]).
    pub fn attr(mut self, key: &str, value: AttributeValue) -> Self {
        let k = self.log.interner.intern(key);
        self.attributes.push((k, value));
        self
    }

    /// Interns a string in the owning log's interner.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.log.interner.intern(s)
    }

    /// Registers (or fetches) the class named `name` in the owning log,
    /// returning the id a subsequent [`TraceBuilder::event_with`] for that
    /// name will use. Incremental index maintenance needs the id *while*
    /// emitting events (see [`crate::IndexSplicer`]); registration order —
    /// and therefore id assignment — is unchanged, because the event
    /// emitted right after registers the same class anyway.
    pub fn class(&mut self, name: &str) -> Result<ClassId> {
        self.log.class(name)
    }

    /// Appends an event of class `class` with no attributes.
    pub fn event(self, class: &str) -> Result<Self> {
        self.event_with(class, |_| {})
    }

    /// Appends an event of class `class`, configuring attributes in `f`.
    pub fn event_with(
        mut self,
        class: &str,
        f: impl FnOnce(&mut AttrsBuilder<'_>),
    ) -> Result<Self> {
        let id = self.log.class(class)?;
        let mut attrs = AttrsBuilder { interner: &mut self.log.interner, out: Vec::new() };
        f(&mut attrs);
        self.events.push(Event::new(id, attrs.out));
        Ok(self)
    }

    /// Appends an already-constructed event (classes/symbols must belong to
    /// this builder's interner).
    pub fn push_event(mut self, event: Event) -> Self {
        self.events.push(event);
        self
    }

    /// Commits the trace to the log.
    pub fn done(self) {
        self.log.traces.push(Trace::new(self.attributes, self.events));
    }
}

/// Typed attribute construction for one event.
#[derive(Debug)]
pub struct AttrsBuilder<'a> {
    interner: &'a mut Interner,
    out: Vec<(Symbol, AttributeValue)>,
}

impl AttrsBuilder<'_> {
    /// String attribute.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let k = self.interner.intern(key);
        let v = AttributeValue::Str(self.interner.intern(value));
        self.out.push((k, v));
        self
    }

    /// Integer attribute.
    pub fn int(&mut self, key: &str, value: i64) -> &mut Self {
        let k = self.interner.intern(key);
        self.out.push((k, AttributeValue::Int(value)));
        self
    }

    /// Float attribute.
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        let k = self.interner.intern(key);
        self.out.push((k, AttributeValue::Float(value)));
        self
    }

    /// Boolean attribute.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        let k = self.interner.intern(key);
        self.out.push((k, AttributeValue::Bool(value)));
        self
    }

    /// Timestamp attribute (epoch milliseconds).
    pub fn timestamp(&mut self, key: &str, millis: i64) -> &mut Self {
        let k = self.interner.intern(key);
        self.out.push((k, AttributeValue::Timestamp(millis)));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_log() -> EventLog {
        let mut b = LogBuilder::new();
        b.log_attr_str("concept:name", "toy");
        b.trace("c1")
            .event_with("a", |e| {
                e.str("org:role", "clerk").int("cost", 5);
            })
            .unwrap()
            .event("b")
            .unwrap()
            .done();
        b.trace("c2").event("a").unwrap().event("c").unwrap().done();
        b.build()
    }

    #[test]
    fn builder_produces_consistent_log() {
        let log = toy_log();
        assert_eq!(log.num_classes(), 3);
        assert_eq!(log.traces().len(), 2);
        assert_eq!(log.num_events(), 4);
        let a = log.class_by_name("a").unwrap();
        assert_eq!(log.class_name(a), "a");
        assert!(log.class_by_name("zzz").is_none());
    }

    #[test]
    fn occurs_checks_co_occurrence() {
        let log = toy_log();
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        let c = log.class_by_name("c").unwrap();
        let ab: ClassSet = [a, b].into_iter().collect();
        let bc: ClassSet = [b, c].into_iter().collect();
        assert!(log.occurs(&ab));
        assert!(!log.occurs(&bc), "b and c never co-occur in one trace");
    }

    #[test]
    fn event_attributes_are_interned() {
        let log = toy_log();
        let role_key = log.std_keys().role;
        let first = &log.traces()[0].events()[0];
        let role = first.attribute(role_key).unwrap().as_symbol().unwrap();
        assert_eq!(log.resolve(role), "clerk");
        let cost_key = log.key("cost").unwrap();
        assert_eq!(first.attribute(cost_key), Some(&AttributeValue::Int(5)));
    }

    #[test]
    fn format_helpers() {
        let log = toy_log();
        let t = &log.traces()[0];
        assert_eq!(log.format_trace(t), "⟨a, b⟩");
        let g: ClassSet = [log.class_by_name("b").unwrap(), log.class_by_name("a").unwrap()]
            .into_iter()
            .collect();
        assert_eq!(log.format_group(&g), "{a, b}");
    }

    #[test]
    fn merge_fragment_matches_direct_building() {
        // Build the same two-trace log once directly and once via a
        // fragment; symbol numbering and class ids must be identical.
        let build_direct = || {
            let mut b = LogBuilder::new();
            b.trace("c1")
                .event_with("a", |e| {
                    e.str("org:role", "clerk").int("cost", 5);
                })
                .unwrap()
                .event("b")
                .unwrap()
                .done();
            b.trace("c2").event("a").unwrap().done();
            b.build()
        };
        let direct = build_direct();

        let mut frag = LogFragment::new();
        let concept = frag.intern("concept:name");
        let c1 = frag.intern("c1");
        let a = frag.intern("a");
        let role_k = frag.intern("org:role");
        let clerk = frag.intern("clerk");
        let cost_k = frag.intern("cost");
        let b_cls = frag.intern("b");
        let c2 = frag.intern("c2");
        frag.push_trace(FragmentTrace {
            attributes: vec![(concept, AttributeValue::Str(c1))],
            events: vec![
                (a, vec![(role_k, AttributeValue::Str(clerk)), (cost_k, AttributeValue::Int(5))]),
                (b_cls, vec![]),
            ],
        });
        frag.push_trace(FragmentTrace {
            attributes: vec![(concept, AttributeValue::Str(c2))],
            events: vec![(a, vec![])],
        });
        let mut builder = LogBuilder::new();
        builder.merge_fragment(frag).unwrap();
        let merged = builder.build();

        assert_eq!(merged.traces(), direct.traces());
        assert_eq!(merged.num_classes(), direct.num_classes());
        let merged_syms: Vec<_> =
            merged.interner().iter().map(|(s, w)| (s, w.to_string())).collect();
        let direct_syms: Vec<_> =
            direct.interner().iter().map(|(s, w)| (s, w.to_string())).collect();
        assert_eq!(merged_syms, direct_syms);
    }

    #[test]
    fn class_attr_overwrites() {
        let mut b = LogBuilder::new();
        b.class_attr_str("a", "system", "X").unwrap();
        b.class_attr_str("a", "system", "Y").unwrap();
        let log = b.build();
        let a = log.class_by_name("a").unwrap();
        let key = log.key("system").unwrap();
        let v = log.classes().info(a).attribute(key).unwrap();
        assert_eq!(log.resolve(v.as_symbol().unwrap()), "Y");
    }
}
