//! Trace variants: distinct class sequences and their frequencies.

use crate::classes::ClassId;
use crate::log::EventLog;
use std::collections::HashMap;

/// The variants of a log: each distinct event-class sequence together with
/// the indices of traces exhibiting it. Sorted by descending frequency.
#[derive(Debug, Clone)]
pub struct Variants {
    variants: Vec<(Vec<ClassId>, Vec<usize>)>,
}

impl Variants {
    /// Computes the variants of `log`.
    pub fn from_log(log: &EventLog) -> Variants {
        let mut map: HashMap<Vec<ClassId>, Vec<usize>> = HashMap::new();
        for (i, trace) in log.traces().iter().enumerate() {
            map.entry(trace.class_sequence()).or_default().push(i);
        }
        // gecco-lint: allow(nondet-iter) — sorted by frequency then sequence on the next line
        let mut variants: Vec<_> = map.into_iter().collect();
        variants.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));
        Variants { variants }
    }

    /// Number of distinct variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the log had no traces.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Iterates `(class sequence, trace indices)` by descending frequency.
    pub fn iter(&self) -> impl Iterator<Item = (&[ClassId], &[usize])> {
        self.variants.iter().map(|(seq, idx)| (seq.as_slice(), idx.as_slice()))
    }

    /// Frequency of the `i`-th most frequent variant.
    pub fn frequency(&self, i: usize) -> usize {
        self.variants[i].1.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogBuilder;

    #[test]
    fn variants_group_identical_sequences() {
        let mut b = LogBuilder::new();
        for (i, seq) in [["a", "b"], ["a", "b"], ["a", "c"]].iter().enumerate() {
            let mut tb = b.trace(&format!("c{i}"));
            for cls in seq {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        let log = b.build();
        let v = Variants::from_log(&log);
        assert_eq!(v.len(), 2);
        assert_eq!(v.frequency(0), 2);
        assert_eq!(v.frequency(1), 1);
        let (seq, idx) = v.iter().next().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(idx, &[0, 1]);
    }

    #[test]
    fn empty_log_has_no_variants() {
        let log = LogBuilder::new().build();
        let v = Variants::from_log(&log);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn single_trace_single_variant() {
        let mut b = LogBuilder::new();
        b.trace("c").event("x").unwrap().done();
        let v = Variants::from_log(&b.build());
        assert_eq!(v.len(), 1);
        assert_eq!(v.frequency(0), 1);
    }
}
