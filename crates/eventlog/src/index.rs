//! Indexed instance materialization: [`LogIndex`], [`EvalContext`] and
//! [`InstanceCache`].
//!
//! GECCO's Step-1 search checks thousands of candidate groups against the
//! log, and the naive [`crate::instances()`] scan walks every event of every
//! trace per check — even when none of the group's classes occurs in a
//! trace. The [`LogIndex`] precomputes **per-class postings**: for every
//! event class, the sorted `(trace, position)` occurrences, stored as one
//! run per trace slicing into a flat position array. Instance
//! materialization then becomes a k-way merge over the postings of the
//! group's classes, so its cost is proportional to the group's own
//! occurrences rather than to the log size, and traces containing no group
//! class are never touched.
//!
//! The merge is **bit-identical** to the scan: it yields the same events in
//! the same order, and the shared segmentation logic produces exactly the
//! same [`GroupInstance`]s (asserted by the `index_equivalence` proptest
//! suite in `gecco-core`, which also covers the `rayon` feature).
//!
//! [`EvalContext`] bundles the log, its index, reusable scratch buffers and
//! an optional shared [`InstanceCache`] — the unit that constraint
//! evaluation and candidate computation thread through the stack. Contexts
//! are cheap to create; parallel workers build one each from
//! [`EvalContext::parts`] so every thread gets its own scratch.

use crate::classes::{ClassId, ClassSet};
use crate::instances::{GroupInstance, Segmenter};
use crate::log::EventLog;
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// One run of a class's postings: all its occurrences in one trace,
/// slicing `start .. start + len` of the flat position array.
#[derive(Debug, Clone, Copy)]
struct Run {
    trace: u32,
    start: u32,
    len: u32,
}

/// Per-class occurrence index over one [`EventLog`].
///
/// Built once per log (one pass over all events) and shared read-only by
/// any number of [`EvalContext`]s. For every class it stores the postings
/// runs (one per trace the class occurs in, ascending by trace id), the
/// total occurrence count, and — mirroring [`EventLog::trace_class_sets`] —
/// the per-trace class bitmaps used for cheap intersection tests.
#[derive(Debug, Clone)]
pub struct LogIndex {
    class_runs: Vec<Vec<Run>>,
    positions: Vec<u32>,
    class_counts: Vec<u32>,
    num_traces: usize,
}

impl LogIndex {
    /// Builds the index with one pass over the log's events.
    pub fn build(log: &EventLog) -> LogIndex {
        let num_classes = log.num_classes();
        let mut per_class_pos: Vec<Vec<u32>> = vec![Vec::new(); num_classes];
        let mut per_class_runs: Vec<Vec<Run>> = vec![Vec::new(); num_classes];
        for (ti, trace) in log.traces().iter().enumerate() {
            for (pos, event) in trace.events().iter().enumerate() {
                let c = event.class().index();
                let plist = &mut per_class_pos[c];
                match per_class_runs[c].last_mut() {
                    Some(run) if run.trace == ti as u32 => run.len += 1,
                    _ => per_class_runs[c].push(Run {
                        trace: ti as u32,
                        start: plist.len() as u32,
                        len: 1,
                    }),
                }
                plist.push(pos as u32);
            }
        }
        // Flatten the per-class position lists into one array; the runs'
        // start offsets shift by the class's base.
        let mut positions = Vec::with_capacity(log.num_events());
        let mut class_runs = Vec::with_capacity(num_classes);
        let mut class_counts = Vec::with_capacity(num_classes);
        for (plist, mut runs) in per_class_pos.into_iter().zip(per_class_runs) {
            let base = positions.len() as u32;
            for run in &mut runs {
                run.start += base;
            }
            class_counts.push(plist.len() as u32);
            positions.extend_from_slice(&plist);
            class_runs.push(runs);
        }
        LogIndex { class_runs, positions, class_counts, num_traces: log.traces().len() }
    }

    /// Total number of events of class `c`, `Σ_σ |σ↓{c}|`.
    #[inline]
    pub fn class_occurrences(&self, c: ClassId) -> usize {
        self.class_counts[c.index()] as usize
    }

    /// Number of traces class `c` occurs in.
    #[inline]
    pub fn trace_count(&self, c: ClassId) -> usize {
        self.class_runs[c.index()].len()
    }

    /// Number of traces of the log this index was built from. Per-trace
    /// class bitmaps are *not* duplicated here — read them from
    /// [`EventLog::trace_class_sets`].
    #[inline]
    pub fn num_traces(&self) -> usize {
        self.num_traces
    }

    /// Ascending ids of the traces containing at least one class of
    /// `group` — the traces the scan path would not skip.
    pub fn group_traces(&self, group: &ClassSet) -> Vec<u32> {
        let classes: Vec<ClassId> = group.iter().filter(|c| !self.runs(*c).is_empty()).collect();
        let mut cursors = vec![0u32; classes.len()];
        let mut out = Vec::new();
        while let Some(trace) = self.next_merged_trace(&classes, &mut cursors, |_, _| {}) {
            out.push(trace);
        }
        out
    }

    /// One step of the k-way trace merge shared by [`Self::group_traces`]
    /// and [`EvalContext::visit_instances`]: finds the smallest trace id
    /// under the cursors (cursor `i` indexes class `i`'s run list),
    /// advances every cursor sitting on that trace, and reports each
    /// advanced run. `None` once all cursors are exhausted. One
    /// implementation keeps the two callers' traversal orders identical by
    /// construction.
    fn next_merged_trace(
        &self,
        classes: &[ClassId],
        cursors: &mut [u32],
        mut on_run: impl FnMut(Run, ClassId),
    ) -> Option<u32> {
        // k = |g ∩ C_L| is small, so a linear scan beats a heap.
        let mut t_min = u32::MAX;
        for (i, &c) in classes.iter().enumerate() {
            let runs = self.runs(c);
            if (cursors[i] as usize) < runs.len() {
                t_min = t_min.min(runs[cursors[i] as usize].trace);
            }
        }
        if t_min == u32::MAX {
            return None;
        }
        for (i, &c) in classes.iter().enumerate() {
            let runs = self.runs(c);
            if (cursors[i] as usize) < runs.len() && runs[cursors[i] as usize].trace == t_min {
                on_run(runs[cursors[i] as usize], c);
                cursors[i] += 1;
            }
        }
        Some(t_min)
    }

    #[inline]
    fn runs(&self, c: ClassId) -> &[Run] {
        &self.class_runs[c.index()]
    }
}

/// Scratch buffers reused across instance materializations; plain data so
/// one context can serve any number of candidate checks without
/// re-allocating.
#[derive(Debug, Default)]
struct Scratch {
    /// Run cursor per group class (parallel to `classes`).
    cursors: Vec<u32>,
    /// The group's classes that occur in the log at all.
    classes: Vec<ClassId>,
    /// Active merge sources of the current trace: `(cur, end)` into the
    /// index's flat position array, plus the source class.
    active: Vec<(u32, u32, u16)>,
    /// The merged `(position, class)` projection of the current trace.
    merged: Vec<(u32, u16)>,
}

/// Borrowed, `Copy` view of a context's shared parts. `Send + Sync`, so
/// parallel workers can each rebuild a private [`EvalContext`] (with its
/// own scratch) from one of these.
#[derive(Debug, Clone, Copy)]
pub struct ContextParts<'a> {
    log: &'a EventLog,
    index: &'a LogIndex,
    cache: Option<&'a InstanceCache>,
}

impl<'a> ContextParts<'a> {
    /// Builds a fresh context (new scratch) over the shared parts.
    pub fn context(&self) -> EvalContext<'a> {
        EvalContext {
            log: self.log,
            index: self.index,
            cache: self.cache,
            scratch: RefCell::default(),
        }
    }
}

/// Everything constraint evaluation needs for one log: the log itself, its
/// [`LogIndex`], per-context scratch buffers, and an optional shared
/// [`InstanceCache`].
///
/// Not `Sync` (the scratch is a [`RefCell`]); parallel code clones
/// [`EvalContext::parts`] across threads and builds one context per worker.
#[derive(Debug)]
pub struct EvalContext<'a> {
    log: &'a EventLog,
    index: &'a LogIndex,
    cache: Option<&'a InstanceCache>,
    scratch: RefCell<Scratch>,
}

impl<'a> EvalContext<'a> {
    /// Creates a context without a shared cache.
    ///
    /// # Panics
    /// In debug builds, panics if `index` was built from a log with a
    /// different trace count — a stale index (e.g. one built before
    /// abstraction rewrote the log) would otherwise evaluate constraints
    /// against the wrong traces.
    pub fn new(log: &'a EventLog, index: &'a LogIndex) -> EvalContext<'a> {
        debug_assert_eq!(
            index.num_traces(),
            log.traces().len(),
            "EvalContext: index was built from a different log"
        );
        EvalContext { log, index, cache: None, scratch: RefCell::default() }
    }

    /// Creates a context sharing `cache` across candidates (and, via the
    /// constraint-set tokens, across constraint sets). The cache must only
    /// ever be shared between contexts over the *same* log — its keys
    /// carry no log identity.
    pub fn with_cache(
        log: &'a EventLog,
        index: &'a LogIndex,
        cache: &'a InstanceCache,
    ) -> EvalContext<'a> {
        debug_assert_eq!(
            index.num_traces(),
            log.traces().len(),
            "EvalContext: index was built from a different log"
        );
        EvalContext { log, index, cache: Some(cache), scratch: RefCell::default() }
    }

    /// The underlying log.
    #[inline]
    pub fn log(&self) -> &'a EventLog {
        self.log
    }

    /// The log's index.
    #[inline]
    pub fn index(&self) -> &'a LogIndex {
        self.index
    }

    /// The shared cache, if one is attached.
    #[inline]
    pub fn cache(&self) -> Option<&'a InstanceCache> {
        self.cache
    }

    /// The shared (thread-safe) parts, for fanning work out over threads.
    #[inline]
    pub fn parts(&self) -> ContextParts<'a> {
        ContextParts { log: self.log, index: self.index, cache: self.cache }
    }

    /// Visits `inst(L, g)` — every `(trace index, instance)` pair, in
    /// exactly the order [`crate::log_instances`] yields them — using the
    /// postings merge, so traces without any group class are skipped
    /// entirely. `f` may stop the traversal early by returning
    /// [`ControlFlow::Break`]; the break value is returned.
    ///
    /// **Not reentrant**: the context's scratch buffers stay borrowed
    /// while `f` runs, so `f` must not call this context's instance APIs
    /// (`visit_instances`, `instances_in`, `log_instances`) — doing so
    /// panics. Use a second context from [`Self::parts`] for nested
    /// materialization.
    pub fn visit_instances<B>(
        &self,
        group: &ClassSet,
        segmenter: Segmenter,
        mut f: impl FnMut(usize, GroupInstance) -> ControlFlow<B>,
    ) -> Option<B> {
        let index = self.index;
        let mut scratch = self.scratch.borrow_mut();
        let Scratch { cursors, classes, active, merged } = &mut *scratch;
        classes.clear();
        classes.extend(group.iter().filter(|c| !index.runs(*c).is_empty()));
        cursors.clear();
        cursors.resize(classes.len(), 0);
        loop {
            active.clear();
            let trace = index.next_merged_trace(classes, cursors, |run, class| {
                active.push((run.start, run.start + run.len, class.0));
            })?;
            merge_runs(&index.positions, active, merged);
            if let ControlFlow::Break(b) =
                segment_merged(merged, segmenter, |inst| f(trace as usize, inst))
            {
                return Some(b);
            }
        }
    }

    /// `inst(σ_ti, g)` via the index: identical to
    /// [`crate::instances()`]`(&log.traces()[ti], group, segmenter)` but only
    /// touching the group's own occurrences in that trace.
    pub fn instances_in(
        &self,
        ti: usize,
        group: &ClassSet,
        segmenter: Segmenter,
    ) -> Vec<GroupInstance> {
        let index = self.index;
        if !self.log.trace_class_sets()[ti].intersects(group) {
            return Vec::new();
        }
        let mut scratch = self.scratch.borrow_mut();
        let Scratch { active, merged, .. } = &mut *scratch;
        active.clear();
        for c in group.iter() {
            let runs = index.runs(c);
            if let Ok(ri) = runs.binary_search_by_key(&(ti as u32), |r| r.trace) {
                let run = runs[ri];
                active.push((run.start, run.start + run.len, c.0));
            }
        }
        merge_runs(&index.positions, active, merged);
        let mut out = Vec::new();
        let _: ControlFlow<()> = segment_merged(merged, segmenter, |inst| {
            out.push(inst);
            ControlFlow::Continue(())
        });
        out
    }

    /// Collects `inst(L, g)` as `(trace index, instance)` pairs — the
    /// indexed equivalent of [`crate::log_instances`].
    pub fn log_instances(
        &self,
        group: &ClassSet,
        segmenter: Segmenter,
    ) -> Vec<(usize, GroupInstance)> {
        let mut out = Vec::new();
        let _: Option<()> = self.visit_instances(group, segmenter, |ti, inst| {
            out.push((ti, inst));
            ControlFlow::Continue(())
        });
        out
    }
}

/// Merges the active postings runs (each sorted, pairwise disjoint) into
/// `merged`, ascending by position. Exactly the subsequence of the trace's
/// events whose class belongs to the group.
fn merge_runs(positions: &[u32], active: &mut Vec<(u32, u32, u16)>, merged: &mut Vec<(u32, u16)>) {
    merged.clear();
    if let [(cur, end, class)] = active[..] {
        // Single-class fast path: the run is already the projection.
        merged.extend(positions[cur as usize..end as usize].iter().map(|&p| (p, class)));
        return;
    }
    while !active.is_empty() {
        let mut best = 0;
        for i in 1..active.len() {
            if positions[active[i].0 as usize] < positions[active[best].0 as usize] {
                best = i;
            }
        }
        let (cur, end, class) = &mut active[best];
        merged.push((positions[*cur as usize], *class));
        *cur += 1;
        if cur == end {
            active.swap_remove(best);
        }
    }
}

/// Runs the segmentation of [`crate::instances`] over a merged projection,
/// emitting each finished [`GroupInstance`]. Shared by every indexed path
/// so indexed and scan materialization cannot diverge.
fn segment_merged<B>(
    merged: &[(u32, u16)],
    segmenter: Segmenter,
    mut emit: impl FnMut(GroupInstance) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let mut current_positions: Vec<u32> = Vec::new();
    let mut current_classes = ClassSet::new();
    for &(pos, class) in merged {
        let class = ClassId(class);
        if segmenter == Segmenter::RepeatSplit && current_classes.contains(class) {
            let inst = GroupInstance::from_parts(
                std::mem::take(&mut current_positions),
                current_classes.len() as u16,
            );
            current_classes = ClassSet::new();
            emit(inst)?;
        }
        current_positions.push(pos);
        current_classes.insert(class);
    }
    if !current_positions.is_empty() {
        let distinct = current_classes.len() as u16;
        emit(GroupInstance::from_parts(current_positions, distinct))?;
    }
    ControlFlow::Continue(())
}

/// Materialized instances of one group: `(trace index, instance)` pairs in
/// scan order.
pub type CachedInstances = Arc<Vec<(u32, GroupInstance)>>;

/// Cross-candidate, cross-constraint-set evaluation cache keyed by
/// [`ClassSet`].
///
/// Two tiers:
///
/// * **instances** — `inst(L, g)` depends only on the group and the
///   segmenter, so materialized instances are shared across *all*
///   constraint sets evaluated over the same log;
/// * **verdicts** — boolean `holds` results are only valid for one
///   compiled constraint set, so they are additionally keyed by the
///   caller-supplied token (see `CompiledConstraintSet` in
///   `gecco-constraints`, which derives a unique token per compilation).
///
/// Thread-safe (`RwLock` + atomic hit counters): one cache may serve
/// parallel candidate-check workers and successive pipeline runs alike.
#[derive(Debug, Default)]
pub struct InstanceCache {
    instances: RwLock<HashMap<(ClassSet, Segmenter), CachedInstances>>,
    verdicts: RwLock<HashMap<(u64, ClassSet), bool>>,
    /// Structural signature → verdict-token assignment. Two compilations
    /// of the *same* constraint set resolve to the same token, so verdicts
    /// stay hittable across pipeline runs that re-compile their DSL.
    tokens: RwLock<HashMap<String, u64>>,
    instance_hits: AtomicUsize,
    instance_misses: AtomicUsize,
    verdict_hits: AtomicUsize,
    verdict_misses: AtomicUsize,
}

/// Point-in-time usage counters of an [`InstanceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Materialized instance entries.
    pub instance_entries: usize,
    /// Stored verdicts.
    pub verdict_entries: usize,
    /// Instance lookups answered from the cache.
    pub instance_hits: usize,
    /// Instance lookups that had to materialize.
    pub instance_misses: usize,
    /// Verdict lookups answered from the cache.
    pub verdict_hits: usize,
    /// Verdict lookups that had to evaluate.
    pub verdict_misses: usize,
}

impl InstanceCache {
    /// Creates an empty cache.
    pub fn new() -> InstanceCache {
        InstanceCache::default()
    }

    /// The materialized instances of `(group, segmenter)`, if cached.
    pub fn instances(&self, group: &ClassSet, segmenter: Segmenter) -> Option<CachedInstances> {
        let hit = self
            .instances
            .read()
            .expect("instance cache lock poisoned")
            .get(&(*group, segmenter))
            .cloned();
        match hit {
            Some(v) => {
                self.instance_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.instance_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns the cached instances of `(group, segmenter)`, materializing
    /// via `build` on a miss. Concurrent misses may build twice; the result
    /// is identical either way and one copy wins.
    pub fn get_or_insert_instances(
        &self,
        group: &ClassSet,
        segmenter: Segmenter,
        build: impl FnOnce() -> Vec<(u32, GroupInstance)>,
    ) -> CachedInstances {
        if let Some(hit) = self.instances(group, segmenter) {
            return hit;
        }
        let built: CachedInstances = Arc::new(build());
        let mut map = self.instances.write().expect("instance cache lock poisoned");
        map.entry((*group, segmenter)).or_insert(built).clone()
    }

    /// Resolves a caller-supplied structural signature (e.g. a rendered
    /// constraint set plus its segmenter) to a stable token for
    /// [`Self::verdict`]/[`Self::store_verdict`]. Equal signatures always
    /// resolve to the same token within one cache, so verdicts survive
    /// re-compilation of an identical specification.
    pub fn token_for(&self, signature: &str) -> u64 {
        if let Some(&t) = self.tokens.read().expect("token map lock poisoned").get(signature) {
            return t;
        }
        let mut map = self.tokens.write().expect("token map lock poisoned");
        let next = map.len() as u64;
        *map.entry(signature.to_string()).or_insert(next)
    }

    /// The stored verdict for `(token, group)`, if any.
    pub fn verdict(&self, token: u64, group: &ClassSet) -> Option<bool> {
        let hit = self
            .verdicts
            .read()
            .expect("verdict cache lock poisoned")
            .get(&(token, *group))
            .copied();
        match hit {
            Some(v) => {
                self.verdict_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.verdict_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a verdict for `(token, group)`.
    pub fn store_verdict(&self, token: u64, group: &ClassSet, verdict: bool) {
        self.verdicts
            .write()
            .expect("verdict cache lock poisoned")
            .insert((token, *group), verdict);
    }

    /// Current usage counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            instance_entries: self.instances.read().expect("lock poisoned").len(),
            verdict_entries: self.verdicts.read().expect("lock poisoned").len(),
            instance_hits: self.instance_hits.load(Ordering::Relaxed),
            instance_misses: self.instance_misses.load(Ordering::Relaxed),
            verdict_hits: self.verdict_hits.load(Ordering::Relaxed),
            verdict_misses: self.verdict_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{instances, log_instances};
    use crate::log::LogBuilder;

    fn log_from(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("c{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn postings_count_occurrences_and_traces() {
        let log = log_from(&[&["a", "b", "a"], &["b"], &["c"]]);
        let index = LogIndex::build(&log);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        let c = log.class_by_name("c").unwrap();
        assert_eq!(index.class_occurrences(a), 2);
        assert_eq!(index.trace_count(a), 1);
        assert_eq!(index.class_occurrences(b), 2);
        assert_eq!(index.trace_count(b), 2);
        assert_eq!(index.trace_count(c), 1);
        assert_eq!(index.num_traces(), log.traces().len());
    }

    #[test]
    fn group_traces_skips_foreign_traces() {
        let log = log_from(&[&["a"], &["x"], &["b", "a"], &["x", "y"], &["b"]]);
        let index = LogIndex::build(&log);
        let g = group(&log, &["a", "b"]);
        assert_eq!(index.group_traces(&g), vec![0, 2, 4]);
        assert_eq!(index.group_traces(&ClassSet::EMPTY), Vec::<u32>::new());
    }

    #[test]
    fn indexed_instances_match_scan_on_paper_example() {
        let log = log_from(&[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let g = group(&log, &["rcp", "ckc", "ckt"]);
        for seg in [Segmenter::RepeatSplit, Segmenter::NoSplit] {
            for (ti, trace) in log.traces().iter().enumerate() {
                assert_eq!(ctx.instances_in(ti, &g, seg), instances(trace, &g, seg));
            }
            let scan: Vec<_> = log_instances(&log, &g, seg).collect();
            assert_eq!(ctx.log_instances(&g, seg), scan);
        }
    }

    #[test]
    fn visit_instances_breaks_early() {
        let log = log_from(&[&["a"], &["a"], &["a"]]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let g = group(&log, &["a"]);
        let mut seen = 0;
        let out = ctx.visit_instances(&g, Segmenter::RepeatSplit, |ti, _| {
            seen += 1;
            if ti == 1 {
                ControlFlow::Break("stop")
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(out, Some("stop"));
        assert_eq!(seen, 2);
    }

    #[test]
    fn scratch_is_reusable_across_groups() {
        let log = log_from(&[&["a", "b", "c", "a"], &["c", "b"], &["a"]]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        for names in [&["a"][..], &["a", "b"], &["b", "c"], &["a", "b", "c"]] {
            let g = group(&log, names);
            let scan: Vec<_> = log_instances(&log, &g, Segmenter::RepeatSplit).collect();
            assert_eq!(ctx.log_instances(&g, Segmenter::RepeatSplit), scan);
        }
    }

    #[test]
    fn cache_shares_instances_and_verdicts() {
        let log = log_from(&[&["a", "b"], &["b"]]);
        let index = LogIndex::build(&log);
        let cache = InstanceCache::new();
        let ctx = EvalContext::with_cache(&log, &index, &cache);
        let g = group(&log, &["a", "b"]);
        let build = || {
            ctx.log_instances(&g, Segmenter::RepeatSplit)
                .into_iter()
                .map(|(ti, inst)| (ti as u32, inst))
                .collect::<Vec<_>>()
        };
        let first = cache.get_or_insert_instances(&g, Segmenter::RepeatSplit, build);
        let second = cache.get_or_insert_instances(&g, Segmenter::RepeatSplit, || {
            panic!("second lookup must hit the cache")
        });
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.verdict(7, &g), None);
        cache.store_verdict(7, &g, true);
        assert_eq!(cache.verdict(7, &g), Some(true));
        assert_eq!(cache.verdict(8, &g), None, "tokens separate constraint sets");
        let stats = cache.stats();
        assert_eq!(stats.instance_entries, 1);
        assert_eq!(stats.verdict_entries, 1);
        assert!(stats.instance_hits >= 1 && stats.instance_misses >= 1);
        assert!(stats.verdict_hits >= 1 && stats.verdict_misses >= 2);
    }

    #[test]
    fn parts_rebuild_equivalent_contexts() {
        let log = log_from(&[&["a", "b", "a"]]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let forked = ctx.parts().context();
        let g = group(&log, &["a", "b"]);
        assert_eq!(
            ctx.log_instances(&g, Segmenter::RepeatSplit),
            forked.log_instances(&g, Segmenter::RepeatSplit)
        );
        assert!(forked.cache().is_none());
    }
}
