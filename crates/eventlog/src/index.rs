//! Indexed instance materialization: [`LogIndex`], [`EvalContext`] and
//! [`InstanceCache`].
//!
//! GECCO's Step-1 search checks thousands of candidate groups against the
//! log, and the naive [`crate::instances()`] scan walks every event of every
//! trace per check — even when none of the group's classes occurs in a
//! trace. The [`LogIndex`] precomputes **per-class postings**: for every
//! event class, the sorted `(trace, position)` occurrences, stored as one
//! run per trace slicing into a flat position array. Instance
//! materialization then becomes a k-way merge over the postings of the
//! group's classes, so its cost is proportional to the group's own
//! occurrences rather than to the log size, and traces containing no group
//! class are never touched.
//!
//! The merge is **bit-identical** to the scan: it yields the same events in
//! the same order, and the shared segmentation logic produces exactly the
//! same [`GroupInstance`]s (asserted by the `index_equivalence` proptest
//! suite in `gecco-core`, which also covers the `rayon` feature).
//!
//! [`EvalContext`] bundles the log, its index, reusable scratch buffers and
//! an optional shared [`InstanceCache`] — the unit that constraint
//! evaluation and candidate computation thread through the stack. Contexts
//! are cheap to create; parallel workers build one each from
//! [`EvalContext::parts`] so every thread gets its own scratch.
//!
//! Two further consumers of the postings live here: [`LogIndex::occurs`]
//! answers the `occurs(g, L)` co-occurrence test of Algorithms 1/2 by
//! intersecting per-class trace-id runs instead of scanning all trace
//! bitmaps, and [`IndexSplicer`] maintains the index *incrementally* while
//! Step-3 abstraction rewrites the log, so re-abstraction never pays a
//! from-scratch [`LogIndex::build`] per pass.

// gecco-lint: allow-file(lossy-cast) — trace ids, event positions and per-class counts are
// u32 by design throughout the postings; the store format rejects anything past u32 at the
// encoding boundary (format::u32_len), so these narrowings cannot wrap
use crate::classes::{ClassId, ClassSet, MAX_CLASSES};
use crate::instances::{GroupInstance, Segmenter};
use crate::log::EventLog;
use crate::trace::Trace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// One run of a class's postings: all its occurrences in one trace,
/// slicing `start .. start + len` of the flat position array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    trace: u32,
    start: u32,
    len: u32,
}

/// Per-class occurrence index over one [`EventLog`].
///
/// Built once per log (one pass over all events) and shared read-only by
/// any number of [`EvalContext`]s. For every class it stores the postings
/// runs (one per trace the class occurs in, ascending by trace id), the
/// total occurrence count, and — mirroring [`EventLog::trace_class_sets`] —
/// the per-trace class bitmaps used for cheap intersection tests.
/// Equality is structural and therefore *bit-exact*: two indexes compare
/// equal iff they hold identical runs, positions and counts — the property
/// the incremental-maintenance proptests assert between a spliced index
/// (see [`IndexSplicer`]) and a fresh [`LogIndex::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogIndex {
    class_runs: Vec<Vec<Run>>,
    positions: Vec<u32>,
    class_counts: Vec<u32>,
    num_traces: usize,
}

impl LogIndex {
    /// Builds the index with one pass over the log's events.
    pub fn build(log: &EventLog) -> LogIndex {
        let num_classes = log.num_classes();
        let mut per_class_pos: Vec<Vec<u32>> = vec![Vec::new(); num_classes];
        let mut per_class_runs: Vec<Vec<Run>> = vec![Vec::new(); num_classes];
        for (ti, trace) in log.traces().iter().enumerate() {
            for (pos, event) in trace.events().iter().enumerate() {
                let c = event.class().index();
                let plist = &mut per_class_pos[c];
                match per_class_runs[c].last_mut() {
                    Some(run) if run.trace == ti as u32 => run.len += 1,
                    _ => per_class_runs[c].push(Run {
                        trace: ti as u32,
                        start: plist.len() as u32,
                        len: 1,
                    }),
                }
                plist.push(pos as u32);
            }
        }
        flatten(per_class_pos, per_class_runs, log.traces().len())
    }

    /// Builds the index from trace batches without a finished
    /// [`EventLog`] — bit-identical to [`LogIndex::build`] on the log
    /// assembled from the same traces in the same order.
    ///
    /// `num_classes` is the final class-registry size: classes that never
    /// occur in any event still get (empty) postings rows, exactly as
    /// [`LogIndex::build`] allocates them from `log.num_classes()`. The
    /// streaming store feeds its batches through here so index
    /// construction never needs all traces in memory at once.
    pub fn build_from_traces<'a>(
        num_classes: usize,
        traces: impl IntoIterator<Item = &'a Trace>,
    ) -> LogIndex {
        let mut per_class_pos: Vec<Vec<u32>> = vec![Vec::new(); num_classes];
        let mut per_class_runs: Vec<Vec<Run>> = vec![Vec::new(); num_classes];
        let mut num_traces = 0usize;
        for trace in traces {
            let ti = num_traces;
            num_traces += 1;
            for (pos, event) in trace.events().iter().enumerate() {
                let c = event.class().index();
                let plist = &mut per_class_pos[c];
                match per_class_runs[c].last_mut() {
                    Some(run) if run.trace == ti as u32 => run.len += 1,
                    _ => per_class_runs[c].push(Run {
                        trace: ti as u32,
                        start: plist.len() as u32,
                        len: 1,
                    }),
                }
                plist.push(pos as u32);
            }
        }
        flatten(per_class_pos, per_class_runs, num_traces)
    }

    /// Total number of events of class `c`, `Σ_σ |σ↓{c}|`.
    #[inline]
    pub fn class_occurrences(&self, c: ClassId) -> usize {
        self.class_counts[c.index()] as usize
    }

    /// Number of traces class `c` occurs in.
    #[inline]
    pub fn trace_count(&self, c: ClassId) -> usize {
        self.class_runs[c.index()].len()
    }

    /// Number of traces of the log this index was built from. Per-trace
    /// class bitmaps are *not* duplicated here — read them from
    /// [`EventLog::trace_class_sets`].
    #[inline]
    pub fn num_traces(&self) -> usize {
        self.num_traces
    }

    /// The postings of class `c`: one `(trace id, positions)` pair per trace
    /// the class occurs in, ascending by trace id, with the positions sorted
    /// ascending within the trace. This is the raw per-class occurrence data
    /// the index stores; [`crate::Dfg::from_index`] rebuilds the
    /// directly-follows relation from it without touching any event struct.
    pub fn postings(&self, c: ClassId) -> impl Iterator<Item = (u32, &[u32])> + '_ {
        // A spliced index may store fewer run lists than the log has
        // classes when the highest class ids never occur.
        let runs = self.class_runs.get(c.index()).map(Vec::as_slice).unwrap_or(&[]);
        runs.iter().map(move |run| {
            let start = run.start as usize;
            (run.trace, &self.positions[start..start + run.len as usize])
        })
    }

    /// Indexed `occurs(g, L)` (Algorithm 1 line 13): whether at least one
    /// trace contains *every* class of `group`.
    ///
    /// Equivalent to [`EventLog::occurs`], but instead of testing every
    /// trace's class bitmap it intersects the per-class trace-id run lists
    /// with galloping cursors, so the cost depends on the group's own
    /// occurrence structure — never on the log's trace count. Candidate
    /// expansion reaches this through the adaptive [`EvalContext::occurs`],
    /// which falls back to the bitmap scan on small logs where the scan's
    /// early exit wins.
    pub fn occurs(&self, group: &ClassSet) -> bool {
        // Fixed-size scratch on the stack: this runs once per expansion
        // product on the candidate hot path, so no per-call allocation.
        let mut classes = [ClassId(0); MAX_CLASSES];
        let mut k = 0usize;
        // Any class with no occurrences makes the group non-occurring.
        for c in group.iter() {
            if self.runs(c).is_empty() {
                return false;
            }
            classes[k] = c;
            k += 1;
        }
        if k == 0 {
            // ∅ ⊆ cs for every trace class set: matches the scan semantics.
            return self.num_traces > 0;
        }
        // Existence check on the k-way intersection, by galloping cursor
        // alignment: keep a target trace id (the largest under any cursor)
        // and advance every other cursor to it with exponential + binary
        // search. Co-occurring groups stop at the first common trace;
        // block-disjoint classes (e.g. different tenants of a multi-process
        // store) resolve in O(k log runs) instead of walking either list.
        let mut cursors = [0u32; MAX_CLASSES];
        let mut target = self.runs(classes[0])[0].trace;
        let mut aligned = 1; // how many consecutive lists currently sit on `target`
        let mut i = 1 % k;
        while aligned < k {
            let runs = self.runs(classes[i]);
            let cur = gallop_to(runs, cursors[i] as usize, target);
            cursors[i] = cur as u32;
            match runs.get(cur) {
                None => return false,
                Some(run) if run.trace == target => aligned += 1,
                Some(run) => {
                    target = run.trace;
                    aligned = 1;
                }
            }
            i = (i + 1) % k;
        }
        true
    }

    /// Checks every structural invariant of the index against `log`:
    /// matching trace/class counts, runs strictly ascending by trace,
    /// postings sorted, in-bounds and pointing at events of the right
    /// class. `Err` carries a description of the first violation.
    ///
    /// This is the oracle behind the [`EvalContext`] debug assertion: a
    /// stale index (e.g. one built before abstraction rewrote the log, or a
    /// botched splice) is rejected before it can evaluate constraints
    /// against the wrong events. O(number of events) — debug builds only on
    /// the context path; call it directly in tests.
    pub fn validate(&self, log: &EventLog) -> Result<(), String> {
        if self.num_traces != log.traces().len() {
            return Err(format!(
                "index covers {} traces, log has {}",
                self.num_traces,
                log.traces().len()
            ));
        }
        if self.class_runs.len() != log.num_classes() {
            return Err(format!(
                "index covers {} classes, log has {}",
                self.class_runs.len(),
                log.num_classes()
            ));
        }
        let mut total = 0usize;
        for (ci, runs) in self.class_runs.iter().enumerate() {
            let mut count = 0u32;
            let mut prev_trace: Option<u32> = None;
            for run in runs {
                if prev_trace.is_some_and(|p| p >= run.trace) {
                    return Err(format!("class {ci}: runs not strictly ascending by trace"));
                }
                prev_trace = Some(run.trace);
                if run.len == 0 {
                    return Err(format!("class {ci}: empty run for trace {}", run.trace));
                }
                let (start, end) = (run.start as usize, (run.start + run.len) as usize);
                if end > self.positions.len() {
                    return Err(format!("class {ci}: run exceeds the position array"));
                }
                let trace = log.traces().get(run.trace as usize).ok_or_else(|| {
                    format!("class {ci}: run for nonexistent trace {}", run.trace)
                })?;
                let mut prev_pos: Option<u32> = None;
                for &pos in &self.positions[start..end] {
                    if prev_pos.is_some_and(|p| p >= pos) {
                        return Err(format!(
                            "class {ci}, trace {}: postings not strictly ascending",
                            run.trace
                        ));
                    }
                    prev_pos = Some(pos);
                    let event = trace.events().get(pos as usize).ok_or_else(|| {
                        format!(
                            "class {ci}, trace {}: position {pos} out of bounds (len {})",
                            run.trace,
                            trace.len()
                        )
                    })?;
                    if event.class().index() != ci {
                        return Err(format!(
                            "class {ci}, trace {}: position {pos} holds class {}",
                            run.trace,
                            event.class().index()
                        ));
                    }
                }
                count += run.len;
            }
            if count != self.class_counts[ci] {
                return Err(format!(
                    "class {ci}: runs cover {count} events, count says {}",
                    self.class_counts[ci]
                ));
            }
            total += count as usize;
        }
        if total != log.num_events() {
            return Err(format!("index covers {total} events, log has {}", log.num_events()));
        }
        Ok(())
    }

    /// Ascending ids of the traces containing at least one class of
    /// `group` — the traces the scan path would not skip.
    pub fn group_traces(&self, group: &ClassSet) -> Vec<u32> {
        let classes: Vec<ClassId> = group.iter().filter(|c| !self.runs(*c).is_empty()).collect();
        let mut cursors = vec![0u32; classes.len()];
        let mut out = Vec::new();
        while let Some(trace) = self.next_merged_trace(&classes, &mut cursors, |_, _| {}) {
            out.push(trace);
        }
        out
    }

    /// One step of the k-way trace merge shared by [`Self::group_traces`]
    /// and [`EvalContext::visit_instances`]: finds the smallest trace id
    /// under the cursors (cursor `i` indexes class `i`'s run list),
    /// advances every cursor sitting on that trace, and reports each
    /// advanced run. `None` once all cursors are exhausted. One
    /// implementation keeps the two callers' traversal orders identical by
    /// construction.
    fn next_merged_trace(
        &self,
        classes: &[ClassId],
        cursors: &mut [u32],
        mut on_run: impl FnMut(Run, ClassId),
    ) -> Option<u32> {
        // k = |g ∩ C_L| is small, so a linear scan beats a heap.
        let mut t_min = u32::MAX;
        for (i, &c) in classes.iter().enumerate() {
            let runs = self.runs(c);
            if (cursors[i] as usize) < runs.len() {
                t_min = t_min.min(runs[cursors[i] as usize].trace);
            }
        }
        if t_min == u32::MAX {
            return None;
        }
        for (i, &c) in classes.iter().enumerate() {
            let runs = self.runs(c);
            if (cursors[i] as usize) < runs.len() && runs[cursors[i] as usize].trace == t_min {
                on_run(runs[cursors[i] as usize], c);
                cursors[i] += 1;
            }
        }
        Some(t_min)
    }

    #[inline]
    fn runs(&self, c: ClassId) -> &[Run] {
        &self.class_runs[c.index()]
    }
}

/// First index `>= from` whose run's trace id is `>= target`, by galloping
/// (exponential probe, then binary search within the bracketed window).
/// Cheap when the answer is near `from`, logarithmic when it is far.
fn gallop_to(runs: &[Run], from: usize, target: u32) -> usize {
    if from >= runs.len() || runs[from].trace >= target {
        return from;
    }
    let mut step = 1usize;
    let mut lo = from;
    let mut hi = from + step;
    while hi < runs.len() && runs[hi].trace < target {
        lo = hi;
        step *= 2;
        hi = from + step;
    }
    let hi = hi.min(runs.len());
    lo + runs[lo..hi].partition_point(|r| r.trace < target)
}

/// Flattens per-class position lists into the packed [`LogIndex`] layout;
/// the runs' start offsets shift by the class's base. One implementation
/// shared by [`LogIndex::build`] and [`IndexSplicer::finish`] keeps the two
/// construction paths bit-identical by construction.
fn flatten(
    per_class_pos: Vec<Vec<u32>>,
    per_class_runs: Vec<Vec<Run>>,
    num_traces: usize,
) -> LogIndex {
    let num_events = per_class_pos.iter().map(Vec::len).sum();
    let mut positions = Vec::with_capacity(num_events);
    let mut class_runs = Vec::with_capacity(per_class_runs.len());
    let mut class_counts = Vec::with_capacity(per_class_pos.len());
    for (plist, mut runs) in per_class_pos.into_iter().zip(per_class_runs) {
        let base = positions.len() as u32;
        for run in &mut runs {
            run.start += base;
        }
        class_counts.push(plist.len() as u32);
        positions.extend_from_slice(&plist);
        class_runs.push(runs);
    }
    LogIndex { class_runs, positions, class_counts, num_traces }
}

/// Incremental [`LogIndex`] maintenance for a log that is being *rewritten*
/// trace by trace (Step-3 abstraction).
///
/// `abstract_log` replaces each activity-instance span with a single
/// high-level event; instead of throwing the old index away and paying a
/// full [`LogIndex::build`] pass over the rewritten log, the rewriter
/// reports each new trace and each emitted event as it goes, and the
/// splicer patches the postings directly: a replaced span collapses into
/// one posting appended to the abstracted class's current run, untouched
/// runs stay as-is, and occurrence counts grow with the pushes rather than
/// being recounted. [`IndexSplicer::finish`] packs the runs through the
/// same flattening as [`LogIndex::build`], so the result is **bit-identical**
/// to a fresh build on the finished log (asserted by the
/// `incremental_index_equivalence` proptest suite in `gecco-core`).
///
/// Contract: call [`Self::begin_trace`] once per trace of the new log —
/// including traces left empty by the rewrite — and [`Self::push`] with
/// strictly ascending positions within each trace, using the class ids of
/// the log under construction.
#[derive(Debug, Default)]
pub struct IndexSplicer {
    per_class_pos: Vec<Vec<u32>>,
    per_class_runs: Vec<Vec<Run>>,
    /// One class bitmap per spliced trace, maintained alongside the
    /// postings so the rewritten log's `trace_class_sets` never needs a
    /// rescan (see [`Self::finish_parts`]).
    trace_class_sets: Vec<ClassSet>,
    num_traces: usize,
    /// Debug guard: the last position pushed for the current trace.
    last_pos: Option<u32>,
}

impl IndexSplicer {
    /// Creates a splicer with no traces.
    pub fn new() -> IndexSplicer {
        IndexSplicer::default()
    }

    /// Pre-sizes the postings to `num_classes` rows so classes that never
    /// occur in any spliced trace still get empty rows, matching
    /// [`LogIndex::build`]'s allocation from the class registry.
    pub fn ensure_classes(&mut self, num_classes: usize) {
        if num_classes > self.per_class_pos.len() {
            self.per_class_pos.resize_with(num_classes, Vec::new);
            self.per_class_runs.resize_with(num_classes, Vec::new);
        }
    }

    /// Starts the next trace (trace ids are assigned 0, 1, … in call
    /// order). Must also be called for traces that end up with no events,
    /// so trace ids keep matching the log being built.
    pub fn begin_trace(&mut self) {
        self.num_traces += 1;
        self.trace_class_sets.push(ClassSet::new());
        self.last_pos = None;
    }

    /// Records the event at `position` of the current trace carrying
    /// `class`. Positions must be pushed in strictly ascending order within
    /// a trace.
    ///
    /// # Panics
    /// If called before [`Self::begin_trace`], or (debug builds) when
    /// `position` does not ascend.
    pub fn push(&mut self, class: ClassId, position: u32) {
        assert!(self.num_traces > 0, "IndexSplicer::push before begin_trace");
        debug_assert!(
            self.last_pos.is_none_or(|p| p < position),
            "IndexSplicer: positions must ascend within a trace"
        );
        self.last_pos = Some(position);
        self.trace_class_sets.last_mut().expect("begin_trace called").insert(class);
        let ci = class.index();
        if ci >= self.per_class_pos.len() {
            self.per_class_pos.resize_with(ci + 1, Vec::new);
            self.per_class_runs.resize_with(ci + 1, Vec::new);
        }
        let trace = (self.num_traces - 1) as u32;
        let plist = &mut self.per_class_pos[ci];
        match self.per_class_runs[ci].last_mut() {
            Some(run) if run.trace == trace => run.len += 1,
            _ => self.per_class_runs[ci].push(Run { trace, start: plist.len() as u32, len: 1 }),
        }
        plist.push(position);
    }

    /// Packs the spliced runs into a [`LogIndex`], identical to
    /// [`LogIndex::build`] on the log the pushes described.
    pub fn finish(self) -> LogIndex {
        self.finish_parts().0
    }

    /// Like [`Self::finish`], but also hands out the per-trace class
    /// bitmaps accumulated during splicing — bit-identical to calling
    /// [`crate::Trace::class_set`] on every rewritten trace. Step-3
    /// abstraction feeds them to
    /// [`crate::LogBuilder::build_with_trace_class_sets`] so finishing the
    /// rewritten log never rescans its events.
    pub fn finish_parts(self) -> (LogIndex, Vec<ClassSet>) {
        (flatten(self.per_class_pos, self.per_class_runs, self.num_traces), self.trace_class_sets)
    }
}

/// Scratch buffers reused across instance materializations; plain data so
/// one context can serve any number of candidate checks without
/// re-allocating.
#[derive(Debug, Default)]
struct Scratch {
    /// Run cursor per group class (parallel to `classes`).
    cursors: Vec<u32>,
    /// The group's classes that occur in the log at all.
    classes: Vec<ClassId>,
    /// Active merge sources of the current trace: `(cur, end)` into the
    /// index's flat position array, plus the source class.
    active: Vec<(u32, u32, u16)>,
    /// The merged `(position, class)` projection of the current trace.
    merged: Vec<(u32, u16)>,
}

/// Borrowed, `Copy` view of a context's shared parts. `Send + Sync`, so
/// parallel workers can each rebuild a private [`EvalContext`] (with its
/// own scratch) from one of these.
#[derive(Debug, Clone, Copy)]
pub struct ContextParts<'a> {
    log: &'a EventLog,
    index: &'a LogIndex,
    cache: Option<&'a InstanceCache>,
}

impl<'a> ContextParts<'a> {
    /// Builds a fresh context (new scratch) over the shared parts.
    pub fn context(&self) -> EvalContext<'a> {
        EvalContext {
            log: self.log,
            index: self.index,
            cache: self.cache,
            scratch: RefCell::default(),
        }
    }
}

/// Everything constraint evaluation needs for one log: the log itself, its
/// [`LogIndex`], per-context scratch buffers, and an optional shared
/// [`InstanceCache`].
///
/// Not `Sync` (the scratch is a [`RefCell`]); parallel code clones
/// [`EvalContext::parts`] across threads and builds one context per worker.
#[derive(Debug)]
pub struct EvalContext<'a> {
    log: &'a EventLog,
    index: &'a LogIndex,
    cache: Option<&'a InstanceCache>,
    scratch: RefCell<Scratch>,
}

impl<'a> EvalContext<'a> {
    /// Creates a context without a shared cache.
    ///
    /// # Panics
    /// In debug builds, panics if `index` is inconsistent with `log` (see
    /// [`LogIndex::validate`]): wrong trace/class counts, but also postings
    /// that are unsorted, out of bounds, or pointing at events of the wrong
    /// class — a stale index (e.g. one built before abstraction rewrote the
    /// log, or a botched splice) would otherwise evaluate constraints
    /// against the wrong events. Trace counts alone are not enough:
    /// abstraction preserves the trace count while changing every position.
    pub fn new(log: &'a EventLog, index: &'a LogIndex) -> EvalContext<'a> {
        #[cfg(debug_assertions)]
        if let Err(e) = index.validate(log) {
            panic!("EvalContext: index does not match the log ({e})");
        }
        EvalContext { log, index, cache: None, scratch: RefCell::default() }
    }

    /// Creates a context sharing `cache` across candidates (and, via the
    /// constraint-set tokens, across constraint sets). The cache must only
    /// ever be shared between contexts over the *same* log — its keys
    /// carry no log identity.
    pub fn with_cache(
        log: &'a EventLog,
        index: &'a LogIndex,
        cache: &'a InstanceCache,
    ) -> EvalContext<'a> {
        #[cfg(debug_assertions)]
        if let Err(e) = index.validate(log) {
            panic!("EvalContext: index does not match the log ({e})");
        }
        EvalContext { log, index, cache: Some(cache), scratch: RefCell::default() }
    }

    /// The underlying log.
    #[inline]
    pub fn log(&self) -> &'a EventLog {
        self.log
    }

    /// The log's index.
    #[inline]
    pub fn index(&self) -> &'a LogIndex {
        self.index
    }

    /// The shared cache, if one is attached.
    #[inline]
    pub fn cache(&self) -> Option<&'a InstanceCache> {
        self.cache
    }

    /// Adaptive `occurs(g, L)` over this context's log.
    ///
    /// Picks between the two oracle-equivalent implementations: the bitmap
    /// scan ([`EventLog::occurs`]) tests one tiny class bitset per trace and
    /// exits on the first hit, while the galloping postings intersection
    /// ([`LogIndex::occurs`]) costs a cursor setup plus `O(k log runs)`
    /// alignment steps. Per-trace bitset tests are sub-nanosecond, so up to
    /// roughly a thousand traces the scan wins even without an early exit;
    /// past that, the intersection's trace-count-independent alignment wins
    /// (orders of magnitude on sharded multi-process logs, where most
    /// expansion products never co-occur — see the `occurs_*` benches in
    /// `bench_candidates`). Candidate expansion calls this per product.
    pub fn occurs(&self, group: &ClassSet) -> bool {
        const SCAN_BEATS_INTERSECTION_BELOW: usize = 1024;
        if self.index.num_traces() < SCAN_BEATS_INTERSECTION_BELOW {
            self.log.occurs(group)
        } else {
            self.index.occurs(group)
        }
    }

    /// The shared (thread-safe) parts, for fanning work out over threads.
    #[inline]
    pub fn parts(&self) -> ContextParts<'a> {
        ContextParts { log: self.log, index: self.index, cache: self.cache }
    }

    /// Visits `inst(L, g)` — every `(trace index, instance)` pair, in
    /// exactly the order [`crate::log_instances`] yields them — using the
    /// postings merge, so traces without any group class are skipped
    /// entirely. `f` may stop the traversal early by returning
    /// [`ControlFlow::Break`]; the break value is returned.
    ///
    /// **Not reentrant**: the context's scratch buffers stay borrowed
    /// while `f` runs, so `f` must not call this context's instance APIs
    /// (`visit_instances`, `instances_in`, `log_instances`) — doing so
    /// panics. Use a second context from [`Self::parts`] for nested
    /// materialization.
    pub fn visit_instances<B>(
        &self,
        group: &ClassSet,
        segmenter: Segmenter,
        mut f: impl FnMut(usize, GroupInstance) -> ControlFlow<B>,
    ) -> Option<B> {
        let index = self.index;
        let mut scratch = self.scratch.borrow_mut();
        let Scratch { cursors, classes, active, merged } = &mut *scratch;
        classes.clear();
        classes.extend(group.iter().filter(|c| !index.runs(*c).is_empty()));
        cursors.clear();
        cursors.resize(classes.len(), 0);
        loop {
            active.clear();
            let trace = index.next_merged_trace(classes, cursors, |run, class| {
                active.push((run.start, run.start + run.len, class.0));
            })?;
            merge_runs(&index.positions, active, merged);
            if let ControlFlow::Break(b) =
                segment_merged(merged, segmenter, |inst| f(trace as usize, inst))
            {
                return Some(b);
            }
        }
    }

    /// `inst(σ_ti, g)` via the index: identical to
    /// [`crate::instances()`]`(&log.traces()[ti], group, segmenter)` but only
    /// touching the group's own occurrences in that trace.
    pub fn instances_in(
        &self,
        ti: usize,
        group: &ClassSet,
        segmenter: Segmenter,
    ) -> Vec<GroupInstance> {
        let index = self.index;
        if !self.log.trace_class_sets()[ti].intersects(group) {
            return Vec::new();
        }
        let mut scratch = self.scratch.borrow_mut();
        let Scratch { active, merged, .. } = &mut *scratch;
        active.clear();
        for c in group.iter() {
            let runs = index.runs(c);
            if let Ok(ri) = runs.binary_search_by_key(&(ti as u32), |r| r.trace) {
                let run = runs[ri];
                active.push((run.start, run.start + run.len, c.0));
            }
        }
        merge_runs(&index.positions, active, merged);
        let mut out = Vec::new();
        let _: ControlFlow<()> = segment_merged(merged, segmenter, |inst| {
            out.push(inst);
            ControlFlow::Continue(())
        });
        out
    }

    /// Collects `inst(L, g)` as `(trace index, instance)` pairs — the
    /// indexed equivalent of [`crate::log_instances`].
    pub fn log_instances(
        &self,
        group: &ClassSet,
        segmenter: Segmenter,
    ) -> Vec<(usize, GroupInstance)> {
        let mut out = Vec::new();
        let _: Option<()> = self.visit_instances(group, segmenter, |ti, inst| {
            out.push((ti, inst));
            ControlFlow::Continue(())
        });
        out
    }
}

/// Merges the active postings runs (each sorted, pairwise disjoint) into
/// `merged`, ascending by position. Exactly the subsequence of the trace's
/// events whose class belongs to the group.
fn merge_runs(positions: &[u32], active: &mut Vec<(u32, u32, u16)>, merged: &mut Vec<(u32, u16)>) {
    merged.clear();
    if let [(cur, end, class)] = active[..] {
        // Single-class fast path: the run is already the projection.
        merged.extend(positions[cur as usize..end as usize].iter().map(|&p| (p, class)));
        return;
    }
    while !active.is_empty() {
        let mut best = 0;
        for i in 1..active.len() {
            if positions[active[i].0 as usize] < positions[active[best].0 as usize] {
                best = i;
            }
        }
        let (cur, end, class) = &mut active[best];
        merged.push((positions[*cur as usize], *class));
        *cur += 1;
        if cur == end {
            active.swap_remove(best);
        }
    }
}

/// Runs the segmentation of [`crate::instances`] over a merged projection,
/// emitting each finished [`GroupInstance`]. Shared by every indexed path
/// so indexed and scan materialization cannot diverge.
fn segment_merged<B>(
    merged: &[(u32, u16)],
    segmenter: Segmenter,
    mut emit: impl FnMut(GroupInstance) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let mut current_positions: Vec<u32> = Vec::new();
    let mut current_classes = ClassSet::new();
    for &(pos, class) in merged {
        let class = ClassId(class);
        if segmenter == Segmenter::RepeatSplit && current_classes.contains(class) {
            let inst = GroupInstance::from_parts(
                std::mem::take(&mut current_positions),
                current_classes.len() as u16,
            );
            current_classes = ClassSet::new();
            emit(inst)?;
        }
        current_positions.push(pos);
        current_classes.insert(class);
    }
    if !current_positions.is_empty() {
        let distinct = current_classes.len() as u16;
        emit(GroupInstance::from_parts(current_positions, distinct))?;
    }
    ControlFlow::Continue(())
}

/// Materialized instances of one group: `(trace index, instance)` pairs in
/// scan order.
pub type CachedInstances = Arc<Vec<(u32, GroupInstance)>>;

/// Cross-candidate, cross-constraint-set evaluation cache keyed by
/// [`ClassSet`].
///
/// Two tiers:
///
/// * **instances** — `inst(L, g)` depends only on the group and the
///   segmenter, so materialized instances are shared across *all*
///   constraint sets evaluated over the same log;
/// * **verdicts** — boolean `holds` results are only valid for one
///   compiled constraint set, so they are additionally keyed by the
///   caller-supplied token (see `CompiledConstraintSet` in
///   `gecco-constraints`, which derives a unique token per compilation).
///
/// Thread-safe (`RwLock` + atomic hit counters): one cache may serve
/// parallel candidate-check workers and successive pipeline runs alike.
#[derive(Debug, Default)]
pub struct InstanceCache {
    instances: RwLock<HashMap<(ClassSet, Segmenter), CachedInstances>>,
    verdicts: RwLock<HashMap<(u64, ClassSet), bool>>,
    /// Structural signature → verdict-token assignment. Two compilations
    /// of the *same* constraint set resolve to the same token, so verdicts
    /// stay hittable across pipeline runs that re-compile their DSL.
    tokens: RwLock<HashMap<String, u64>>,
    instance_hits: AtomicUsize,
    instance_misses: AtomicUsize,
    verdict_hits: AtomicUsize,
    verdict_misses: AtomicUsize,
}

/// Point-in-time usage counters of an [`InstanceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Materialized instance entries.
    pub instance_entries: usize,
    /// Stored verdicts.
    pub verdict_entries: usize,
    /// Instance lookups answered from the cache.
    pub instance_hits: usize,
    /// Instance lookups that had to materialize.
    pub instance_misses: usize,
    /// Verdict lookups answered from the cache.
    pub verdict_hits: usize,
    /// Verdict lookups that had to evaluate.
    pub verdict_misses: usize,
}

impl InstanceCache {
    /// Creates an empty cache.
    pub fn new() -> InstanceCache {
        InstanceCache::default()
    }

    /// The materialized instances of `(group, segmenter)`, if cached.
    pub fn instances(&self, group: &ClassSet, segmenter: Segmenter) -> Option<CachedInstances> {
        let hit = self
            .instances
            .read()
            .expect("instance cache lock poisoned")
            .get(&(*group, segmenter))
            .cloned();
        match hit {
            Some(v) => {
                self.instance_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.instance_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns the cached instances of `(group, segmenter)`, materializing
    /// via `build` on a miss. Concurrent misses may build twice; the result
    /// is identical either way and one copy wins.
    pub fn get_or_insert_instances(
        &self,
        group: &ClassSet,
        segmenter: Segmenter,
        build: impl FnOnce() -> Vec<(u32, GroupInstance)>,
    ) -> CachedInstances {
        if let Some(hit) = self.instances(group, segmenter) {
            return hit;
        }
        let built: CachedInstances = Arc::new(build());
        let mut map = self.instances.write().expect("instance cache lock poisoned");
        map.entry((*group, segmenter)).or_insert(built).clone()
    }

    /// Resolves a caller-supplied structural signature (e.g. a rendered
    /// constraint set plus its segmenter) to a stable token for
    /// [`Self::verdict`]/[`Self::store_verdict`]. Equal signatures always
    /// resolve to the same token within one cache, so verdicts survive
    /// re-compilation of an identical specification.
    pub fn token_for(&self, signature: &str) -> u64 {
        if let Some(&t) = self.tokens.read().expect("token map lock poisoned").get(signature) {
            return t;
        }
        let mut map = self.tokens.write().expect("token map lock poisoned");
        let next = map.len() as u64;
        *map.entry(signature.to_string()).or_insert(next)
    }

    /// The stored verdict for `(token, group)`, if any.
    pub fn verdict(&self, token: u64, group: &ClassSet) -> Option<bool> {
        let hit = self
            .verdicts
            .read()
            .expect("verdict cache lock poisoned")
            .get(&(token, *group))
            .copied();
        match hit {
            Some(v) => {
                self.verdict_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.verdict_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a verdict for `(token, group)`.
    pub fn store_verdict(&self, token: u64, group: &ClassSet, verdict: bool) {
        self.verdicts
            .write()
            .expect("verdict cache lock poisoned")
            .insert((token, *group), verdict);
    }

    /// Current usage counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            instance_entries: self.instances.read().expect("lock poisoned").len(),
            verdict_entries: self.verdicts.read().expect("lock poisoned").len(),
            instance_hits: self.instance_hits.load(Ordering::Relaxed),
            instance_misses: self.instance_misses.load(Ordering::Relaxed),
            verdict_hits: self.verdict_hits.load(Ordering::Relaxed),
            verdict_misses: self.verdict_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{instances, log_instances};
    use crate::log::LogBuilder;

    fn log_from(traces: &[&[&str]]) -> EventLog {
        let mut b = LogBuilder::new();
        for (i, t) in traces.iter().enumerate() {
            let mut tb = b.trace(&format!("c{i}"));
            for cls in *t {
                tb = tb.event(cls).unwrap();
            }
            tb.done();
        }
        b.build()
    }

    fn group(log: &EventLog, names: &[&str]) -> ClassSet {
        names.iter().map(|n| log.class_by_name(n).unwrap()).collect()
    }

    #[test]
    fn postings_count_occurrences_and_traces() {
        let log = log_from(&[&["a", "b", "a"], &["b"], &["c"]]);
        let index = LogIndex::build(&log);
        let a = log.class_by_name("a").unwrap();
        let b = log.class_by_name("b").unwrap();
        let c = log.class_by_name("c").unwrap();
        assert_eq!(index.class_occurrences(a), 2);
        assert_eq!(index.trace_count(a), 1);
        assert_eq!(index.class_occurrences(b), 2);
        assert_eq!(index.trace_count(b), 2);
        assert_eq!(index.trace_count(c), 1);
        assert_eq!(index.num_traces(), log.traces().len());
    }

    #[test]
    fn indexed_occurs_matches_bitmap_scan() {
        let log = log_from(&[&["a", "b", "a"], &["b", "c"], &["d"]]);
        let index = LogIndex::build(&log);
        for names in
            [&["a"][..], &["a", "b"], &["b", "c"], &["a", "c"], &["a", "b", "c"], &["c", "d"]]
        {
            let g = group(&log, names);
            assert_eq!(index.occurs(&g), log.occurs(&g), "occurs diverges on {names:?}");
        }
        // Empty group: occurs iff the log has at least one trace.
        assert!(index.occurs(&ClassSet::EMPTY));
        assert!(!LogIndex::build(&LogBuilder::new().build()).occurs(&ClassSet::EMPTY));
    }

    #[test]
    fn splicer_matches_build_and_counts_empty_traces() {
        let log = log_from(&[&["a", "b", "a"], &[], &["b"]]);
        let mut splicer = IndexSplicer::new();
        for trace in log.traces() {
            splicer.begin_trace();
            for (pos, event) in trace.events().iter().enumerate() {
                splicer.push(event.class(), pos as u32);
            }
        }
        let spliced = splicer.finish();
        assert_eq!(spliced, LogIndex::build(&log));
        assert_eq!(spliced.num_traces(), 3);
        assert!(spliced.validate(&log).is_ok());
    }

    #[test]
    #[should_panic(expected = "before begin_trace")]
    fn splicer_rejects_push_without_trace() {
        IndexSplicer::new().push(ClassId(0), 0);
    }

    #[test]
    fn validate_pinpoints_corruption() {
        let log = log_from(&[&["a", "b"], &["a"]]);
        let index = LogIndex::build(&log);
        assert!(index.validate(&log).is_ok());
        // A log with the same trace count and classes but different event
        // placement: the old index's postings point at the wrong events —
        // the stale-index shape the previous trace-count-only assertion
        // missed.
        let reshuffled = log_from(&[&["a"], &["b"]]);
        let err = index.validate(&reshuffled).unwrap_err();
        assert!(err.contains("out of bounds") || err.contains("holds class"), "{err}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "index does not match the log")]
    fn stale_index_is_rejected_by_context() {
        // Same trace count, same classes, different positions: exactly what
        // reusing a pre-abstraction index against the abstracted log looks
        // like. The old debug assertion (trace count only) let this through.
        let old = log_from(&[&["a", "b", "a"]]);
        let new = log_from(&[&["a", "b"]]);
        let index = LogIndex::build(&old);
        let _ = EvalContext::new(&new, &index);
    }

    #[test]
    fn group_traces_skips_foreign_traces() {
        let log = log_from(&[&["a"], &["x"], &["b", "a"], &["x", "y"], &["b"]]);
        let index = LogIndex::build(&log);
        let g = group(&log, &["a", "b"]);
        assert_eq!(index.group_traces(&g), vec![0, 2, 4]);
        assert_eq!(index.group_traces(&ClassSet::EMPTY), Vec::<u32>::new());
    }

    #[test]
    fn indexed_instances_match_scan_on_paper_example() {
        let log = log_from(&[
            &["rcp", "ckc", "acc", "prio", "inf", "arv"],
            &["rcp", "ckt", "rej", "prio", "arv", "inf"],
            &["rcp", "ckc", "acc", "inf", "arv"],
            &["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
        ]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let g = group(&log, &["rcp", "ckc", "ckt"]);
        for seg in [Segmenter::RepeatSplit, Segmenter::NoSplit] {
            for (ti, trace) in log.traces().iter().enumerate() {
                assert_eq!(ctx.instances_in(ti, &g, seg), instances(trace, &g, seg));
            }
            let scan: Vec<_> = log_instances(&log, &g, seg).collect();
            assert_eq!(ctx.log_instances(&g, seg), scan);
        }
    }

    #[test]
    fn visit_instances_breaks_early() {
        let log = log_from(&[&["a"], &["a"], &["a"]]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let g = group(&log, &["a"]);
        let mut seen = 0;
        let out = ctx.visit_instances(&g, Segmenter::RepeatSplit, |ti, _| {
            seen += 1;
            if ti == 1 {
                ControlFlow::Break("stop")
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(out, Some("stop"));
        assert_eq!(seen, 2);
    }

    #[test]
    fn scratch_is_reusable_across_groups() {
        let log = log_from(&[&["a", "b", "c", "a"], &["c", "b"], &["a"]]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        for names in [&["a"][..], &["a", "b"], &["b", "c"], &["a", "b", "c"]] {
            let g = group(&log, names);
            let scan: Vec<_> = log_instances(&log, &g, Segmenter::RepeatSplit).collect();
            assert_eq!(ctx.log_instances(&g, Segmenter::RepeatSplit), scan);
        }
    }

    #[test]
    fn cache_shares_instances_and_verdicts() {
        let log = log_from(&[&["a", "b"], &["b"]]);
        let index = LogIndex::build(&log);
        let cache = InstanceCache::new();
        let ctx = EvalContext::with_cache(&log, &index, &cache);
        let g = group(&log, &["a", "b"]);
        let build = || {
            ctx.log_instances(&g, Segmenter::RepeatSplit)
                .into_iter()
                .map(|(ti, inst)| (ti as u32, inst))
                .collect::<Vec<_>>()
        };
        let first = cache.get_or_insert_instances(&g, Segmenter::RepeatSplit, build);
        let second = cache.get_or_insert_instances(&g, Segmenter::RepeatSplit, || {
            panic!("second lookup must hit the cache")
        });
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.verdict(7, &g), None);
        cache.store_verdict(7, &g, true);
        assert_eq!(cache.verdict(7, &g), Some(true));
        assert_eq!(cache.verdict(8, &g), None, "tokens separate constraint sets");
        let stats = cache.stats();
        assert_eq!(stats.instance_entries, 1);
        assert_eq!(stats.verdict_entries, 1);
        assert!(stats.instance_hits >= 1 && stats.instance_misses >= 1);
        assert!(stats.verdict_hits >= 1 && stats.verdict_misses >= 2);
    }

    #[test]
    fn parts_rebuild_equivalent_contexts() {
        let log = log_from(&[&["a", "b", "a"]]);
        let index = LogIndex::build(&log);
        let ctx = EvalContext::new(&log, &index);
        let forked = ctx.parts().context();
        let g = group(&log, &["a", "b"]);
        assert_eq!(
            ctx.log_instances(&g, Segmenter::RepeatSplit),
            forked.log_instances(&g, Segmenter::RepeatSplit)
        );
        assert!(forked.cache().is_none());
    }
}
