//! On-disk columnar trace store: the spill target of streaming ingestion.
//!
//! A store is a directory holding `store.meta` (string table, class
//! registry, log attributes, batch directory) plus one append-only
//! `batch-NNNNN.seg` segment file per trace batch, encoded column-wise by
//! [`mod@format`]. The writer side ([`StoreWriter`]) is a
//! [`BatchSink`]: it funnels streamed fragments through a real
//! [`LogBuilder`] — so symbol numbering and class-id assignment are
//! *by construction* identical to the in-memory route — and drains the
//! materialized traces to a segment file at every commit, keeping memory
//! bounded by one batch. The read side ([`TraceStore`]) replays the
//! string table and class registry into a fresh builder and decodes
//! batches on demand (positional reads behind
//! [`SegmentSource`]), reproducing the original [`EventLog`] bit for bit
//! ([`TraceStore::load_log`]) or building a [`LogIndex`] batch by batch
//! without materializing the log at all ([`TraceStore::build_index`]).

pub mod format;
pub mod source;

pub use format::{decode_batch, encode_batch, StoreMeta};
pub use source::{FileSource, MemSource, SegmentSource};

use crate::error::{Error, Result};
use crate::index::{IndexSplicer, LogIndex};
use crate::log::{EventLog, LogBuilder};
use crate::trace::Trace;
use crate::xes::ingest::{ingest_stream, BatchSink, IngestOptions};
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

/// File name of the store metadata.
pub const META_FILE: &str = "store.meta";

fn batch_file_name(index: usize) -> String {
    format!("batch-{index:05}.seg")
}

/// Writer half of the store; implements [`BatchSink`] so
/// [`ingest_stream`] can spill straight to disk.
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    builder: LogBuilder,
    batch_traces: Vec<u32>,
}

impl StoreWriter {
    /// Creates (or re-creates) a store directory for writing. Existing
    /// segment files from a previous run are removed so a shorter rewrite
    /// cannot leave stale batches behind.
    pub fn create(dir: impl AsRef<Path>) -> Result<StoreWriter> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == META_FILE || (name.starts_with("batch-") && name.ends_with(".seg")) {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(StoreWriter { dir, builder: LogBuilder::new(), batch_traces: Vec::new() })
    }

    /// Drains the builder's buffered traces into the next segment file.
    fn spill(&mut self) -> Result<()> {
        let traces = self.builder.drain_traces();
        if traces.is_empty() {
            return Ok(());
        }
        let bytes = format::encode_batch(&traces)?;
        fs::write(self.dir.join(batch_file_name(self.batch_traces.len())), bytes)?;
        self.batch_traces.push(format::u32_len(traces.len(), "batch trace count")?);
        Ok(())
    }

    /// Spills any remaining traces, writes the metadata file and opens
    /// the finished store for reading.
    pub fn finish(mut self) -> Result<TraceStore> {
        self.spill()?;
        let meta = StoreMeta {
            strings: self.builder.interner_ref().iter().map(|(_, s)| s.to_string()).collect(),
            classes: self
                .builder
                .classes_ref()
                .ids()
                .map(|id| {
                    let info = self.builder.classes_ref().info(id);
                    (info.name, info.attributes.clone())
                })
                .collect(),
            log_attrs: self.builder.attributes_ref().to_vec(),
            batch_traces: self.batch_traces,
        };
        fs::write(self.dir.join(META_FILE), format::encode_meta(&meta)?)?;
        Ok(TraceStore { dir: self.dir, meta })
    }
}

impl BatchSink for StoreWriter {
    fn builder(&mut self) -> &mut LogBuilder {
        &mut self.builder
    }

    fn commit(&mut self) -> Result<()> {
        self.spill()
    }
}

/// Streams an XES document from `source` into a store at `dir` with
/// bounded memory, returning the finished store.
pub fn ingest_to_store<R: Read + Send>(
    source: R,
    dir: impl AsRef<Path>,
    options: &IngestOptions,
) -> Result<TraceStore> {
    let mut writer = StoreWriter::create(dir)?;
    ingest_stream(source, &mut writer, options)?;
    writer.finish()
}

/// Read half of the store.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
    meta: StoreMeta,
}

impl TraceStore {
    /// Opens an existing store directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<TraceStore> {
        let dir = dir.as_ref().to_path_buf();
        let meta = format::decode_meta(&fs::read(dir.join(META_FILE))?)?;
        Ok(TraceStore { dir, meta })
    }

    /// The decoded store metadata.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Number of batch segments.
    pub fn num_batches(&self) -> usize {
        self.meta.batch_traces.len()
    }

    /// Total traces across all batches.
    pub fn num_traces(&self) -> usize {
        self.meta.num_traces()
    }

    /// Path of batch `index`'s segment file.
    pub fn batch_path(&self, index: usize) -> PathBuf {
        self.dir.join(batch_file_name(index))
    }

    /// Decodes batch `index` from its segment file via positional reads.
    pub fn read_batch(&self, index: usize) -> Result<Vec<Trace>> {
        let source = FileSource::open(self.batch_path(index))?;
        Self::read_batch_from(&source)
    }

    /// Decodes one batch from any [`SegmentSource`].
    pub fn read_batch_from(source: &dyn SegmentSource) -> Result<Vec<Trace>> {
        let len = usize::try_from(source.len())
            .map_err(|_| Error::Store("segment larger than address space".into()))?;
        let mut bytes = vec![0u8; len];
        source.read_at(0, &mut bytes)?;
        format::decode_batch(&bytes)
    }

    /// Replays the string table, class registry and log attributes into a
    /// fresh builder — the fixed point both routes share. Symbols and
    /// class ids come out exactly as the writer assigned them, so decoded
    /// traces can be appended without any remapping.
    fn restore_builder(&self) -> Result<LogBuilder> {
        let mut builder = LogBuilder::new();
        for (i, s) in self.meta.strings.iter().enumerate() {
            let sym = builder.intern(s);
            if sym.index() != i {
                // The first five entries must be the std keys LogBuilder
                // pre-interns; anything else is a foreign or corrupt table.
                return Err(Error::Store(format!(
                    "string table mismatch at symbol {i}: {s:?} resolved to {}",
                    sym.index()
                )));
            }
        }
        for (i, (name, attrs)) in self.meta.classes.iter().enumerate() {
            if name.index() >= self.meta.strings.len() {
                return Err(Error::Store(format!("class {i} names unknown symbol {}", name.0)));
            }
            let id = builder.classes_mut().get_or_insert(*name)?;
            if id.index() != i {
                return Err(Error::Store(format!("class id mismatch at {i}")));
            }
            builder.classes_mut().info_mut(id).attributes = attrs.clone();
        }
        for (key, value) in &self.meta.log_attrs {
            builder.push_log_attr_raw(*key, value.clone());
        }
        Ok(builder)
    }

    /// Materializes the full [`EventLog`], bit-identical to the log the
    /// in-memory route would have produced from the same document.
    pub fn load_log(&self) -> Result<EventLog> {
        let mut builder = self.restore_builder()?;
        for batch in 0..self.num_batches() {
            for trace in self.read_batch(batch)? {
                builder.push_raw_trace(trace);
            }
        }
        Ok(builder.build())
    }

    /// Builds the postings index batch by batch, without materializing
    /// the whole log — bit-identical to [`LogIndex::build`] on
    /// [`TraceStore::load_log`]'s result.
    pub fn build_index(&self) -> Result<LogIndex> {
        let mut splicer = IndexSplicer::new();
        splicer.ensure_classes(self.meta.classes.len());
        for batch in 0..self.num_batches() {
            for trace in self.read_batch(batch)? {
                splicer.begin_trace();
                for (pos, event) in trace.events().iter().enumerate() {
                    // gecco-lint: allow(lossy-cast) — per-trace position; the encoder already
                    // rejected any trace whose event count exceeds u32 (format::u32_len)
                    splicer.push(event.class(), pos as u32);
                }
            }
        }
        Ok(splicer.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xes::ingest::parse_reader;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-stores")
            .join(format!("gecco-store-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const DOC: &str = r#"<?xml version="1.0"?>
<log xes.version="1.0">
  <string key="concept:name" value="demo"/>
  <string key="gecco:classattr" value="a"><string key="system" value="X"/></string>
  <trace>
    <string key="concept:name" value="c1"/>
    <event><string key="concept:name" value="a"/><date key="time:timestamp" value="2020-01-01T00:00:00.000Z"/></event>
    <event><string key="concept:name" value="b"/><float key="cost" value="1.5"/></event>
  </trace>
  <trace><string key="concept:name" value="c2"/><event><string key="concept:name" value="a"/></event></trace>
  <trace/>
  <int key="count" value="3"/>
</log>"#;

    #[test]
    fn store_round_trip_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        let expect = parse_reader(DOC.as_bytes(), &IngestOptions::default()).unwrap();
        for batch_traces in [1, 2, 100] {
            let options = IngestOptions { batch_traces, ..IngestOptions::default() };
            let store = ingest_to_store(DOC.as_bytes(), &dir, &options).unwrap();
            assert_eq!(store.num_traces(), 3);
            let got = store.load_log().unwrap();
            assert_eq!(got.traces(), expect.traces());
            assert_eq!(got.attributes(), expect.attributes());
            assert_eq!(got.num_classes(), expect.num_classes());
            let a: Vec<_> = got.interner().iter().collect();
            let b: Vec<_> = expect.interner().iter().collect();
            assert_eq!(a, b, "batch_traces {batch_traces}");
            // Reopening from disk sees the same store.
            let reopened = TraceStore::open(&dir).unwrap();
            assert_eq!(reopened.meta(), store.meta());
            // The streamed index equals the built one.
            assert_eq!(store.build_index().unwrap(), LogIndex::build(&got));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_clears_stale_segments() {
        let dir = temp_dir("stale");
        let many = IngestOptions { batch_traces: 1, ..IngestOptions::default() };
        let store = ingest_to_store(DOC.as_bytes(), &dir, &many).unwrap();
        assert!(store.num_batches() > 1);
        let one = IngestOptions { batch_traces: 100, ..IngestOptions::default() };
        let store = ingest_to_store(DOC.as_bytes(), &dir, &one).unwrap();
        assert_eq!(store.num_batches(), 1);
        let stale: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("batch-"))
            .collect();
        assert_eq!(stale.len(), 1, "stale segments left behind: {stale:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_string_table_is_rejected() {
        let dir = temp_dir("foreign");
        let meta = StoreMeta { strings: vec!["not-a-std-key".into()], ..StoreMeta::default() };
        fs::write(dir.join(META_FILE), format::encode_meta(&meta).unwrap()).unwrap();
        let store = TraceStore::open(&dir).unwrap();
        let err = store.load_log().unwrap_err().to_string();
        assert!(err.contains("string table mismatch"), "got: {err}");
        fs::remove_dir_all(&dir).ok();
    }
}
