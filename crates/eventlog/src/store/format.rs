//! Binary layout of the trace store: columnar batch segments and the
//! store metadata file.
//!
//! A batch segment holds one batch of traces column-wise: per-trace
//! counts first, then every event's class id in one dense `u16` column,
//! then the attribute columns (keys, type tags, fixed-width payloads)
//! flattened across the batch. All integers are little-endian; symbols
//! and class ids are the *raw* values from the writer's builder, which
//! the loader reproduces exactly by replaying the string table — so no
//! per-value remapping happens on either side of the disk.
//!
//! The metadata file carries everything that is not a trace: the interner
//! string table in symbol order, the class registry in id order (with
//! class-level attributes), the log-level attributes, and the per-batch
//! trace counts.

use crate::classes::ClassId;
use crate::error::{Error, Result};
use crate::event::Event;
use crate::interner::Symbol;
use crate::trace::Trace;
use crate::value::AttributeValue;

/// Magic + version of a batch segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"GSG1";
/// Magic of the store metadata file.
pub const META_MAGIC: &[u8; 4] = b"GSTO";
/// Store format version.
pub const FORMAT_VERSION: u32 = 1;

/// Value type tags in attribute columns.
const TAG_STR: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_TIMESTAMP: u8 = 4;

/// Checked narrowing for quantities written as `u32` directory fields.
/// Every count in the format is a `u32` on disk; a log that outgrows that
/// must be refused loudly — a wrapped count would silently corrupt the
/// store and only surface as garbage on read-back.
pub(crate) fn u32_len(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n)
        .map_err(|_| Error::Store(format!("{what} ({n}) exceeds the store format's u32 limit")))
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_value(value: &AttributeValue) -> (u8, u64) {
    match *value {
        AttributeValue::Str(s) => (TAG_STR, s.0 as u64),
        AttributeValue::Int(i) => (TAG_INT, i as u64),
        AttributeValue::Float(f) => (TAG_FLOAT, f.to_bits()),
        AttributeValue::Bool(b) => (TAG_BOOL, b as u64),
        AttributeValue::Timestamp(t) => (TAG_TIMESTAMP, t as u64),
    }
}

fn decode_value(tag: u8, payload: u64) -> Result<AttributeValue> {
    Ok(match tag {
        TAG_STR => AttributeValue::Str(Symbol(
            u32::try_from(payload)
                .map_err(|_| Error::Store(format!("symbol payload {payload} exceeds u32")))?,
        )),
        TAG_INT => AttributeValue::Int(payload as i64),
        TAG_FLOAT => AttributeValue::Float(f64::from_bits(payload)),
        TAG_BOOL => AttributeValue::Bool(payload != 0),
        TAG_TIMESTAMP => AttributeValue::Timestamp(payload as i64),
        other => return Err(Error::Store(format!("unknown value tag {other}"))),
    })
}

/// Sequential reader over encoded bytes with truncation checks.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| Error::Store("truncated store data".into()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// One attribute list flattened into the three columns.
fn push_attr_columns(
    attrs: &[(Symbol, AttributeValue)],
    keys: &mut Vec<u8>,
    tags: &mut Vec<u8>,
    payloads: &mut Vec<u8>,
) {
    for (key, value) in attrs {
        put_u32(keys, key.0);
        let (tag, payload) = encode_value(value);
        tags.push(tag);
        put_u64(payloads, payload);
    }
}

/// Encodes one batch of traces into a columnar segment. Fails loudly if
/// any count outgrows the format's `u32` fields.
pub fn encode_batch(traces: &[Trace]) -> Result<Vec<u8>> {
    let mut counts = Vec::new(); // trace_attr_counts ++ event_counts
    let mut event_classes = Vec::new();
    let mut event_attr_counts = Vec::new();
    let mut trace_keys = Vec::new();
    let mut trace_tags = Vec::new();
    let mut trace_payloads = Vec::new();
    let mut event_keys = Vec::new();
    let mut event_tags = Vec::new();
    let mut event_payloads = Vec::new();

    for trace in traces {
        put_u32(&mut counts, u32_len(trace.attributes().len(), "trace attribute count")?);
        put_u32(&mut counts, u32_len(trace.events().len(), "trace event count")?);
        push_attr_columns(
            trace.attributes(),
            &mut trace_keys,
            &mut trace_tags,
            &mut trace_payloads,
        );
        for event in trace.events() {
            put_u16(&mut event_classes, event.class().0);
            put_u32(
                &mut event_attr_counts,
                u32_len(event.attributes().len(), "event attribute count")?,
            );
            push_attr_columns(
                event.attributes(),
                &mut event_keys,
                &mut event_tags,
                &mut event_payloads,
            );
        }
    }

    let mut out = Vec::with_capacity(
        16 + counts.len()
            + event_classes.len()
            + event_attr_counts.len()
            + trace_keys.len()
            + trace_tags.len()
            + trace_payloads.len()
            + event_keys.len()
            + event_tags.len()
            + event_payloads.len(),
    );
    out.extend_from_slice(SEGMENT_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, u32_len(traces.len(), "batch trace count")?);
    for column in [
        &counts,
        &event_classes,
        &event_attr_counts,
        &trace_keys,
        &trace_tags,
        &trace_payloads,
        &event_keys,
        &event_tags,
        &event_payloads,
    ] {
        out.extend_from_slice(column);
    }
    Ok(out)
}

fn read_attrs(
    count: usize,
    keys: &mut Cursor<'_>,
    tags: &mut Cursor<'_>,
    payloads: &mut Cursor<'_>,
) -> Result<Vec<(Symbol, AttributeValue)>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let key = Symbol(keys.u32()?);
        let value = decode_value(tags.u8()?, payloads.u64()?)?;
        out.push((key, value));
    }
    Ok(out)
}

/// Decodes a batch segment back into traces, byte-exact inverse of
/// [`encode_batch`].
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<Trace>> {
    let mut header = Cursor::new(bytes);
    if header.take(4)? != SEGMENT_MAGIC {
        return Err(Error::Store("bad segment magic".into()));
    }
    let version = header.u32()?;
    if version != FORMAT_VERSION {
        return Err(Error::Store(format!("unsupported segment version {version}")));
    }
    let num_traces = header.u32()? as usize;

    // First pass over the counts column to size the later columns.
    let mut counts = Vec::with_capacity(num_traces);
    let mut total_events = 0usize;
    let mut total_trace_attrs = 0usize;
    for _ in 0..num_traces {
        let trace_attrs = header.u32()? as usize;
        let events = header.u32()? as usize;
        total_trace_attrs += trace_attrs;
        total_events += events;
        counts.push((trace_attrs, events));
    }
    let mut cursor = header;

    let mut event_classes = Vec::with_capacity(total_events);
    for _ in 0..total_events {
        event_classes.push(ClassId(cursor.u16()?));
    }
    let mut event_attr_counts = Vec::with_capacity(total_events);
    let mut total_event_attrs = 0usize;
    for _ in 0..total_events {
        let n = cursor.u32()? as usize;
        total_event_attrs += n;
        event_attr_counts.push(n);
    }

    // Carve the attribute columns off the remainder back to back.
    let mut trace_keys = Cursor::new(cursor.take(4 * total_trace_attrs)?);
    let mut trace_tags = Cursor::new(cursor.take(total_trace_attrs)?);
    let mut trace_payloads = Cursor::new(cursor.take(8 * total_trace_attrs)?);
    let mut event_keys = Cursor::new(cursor.take(4 * total_event_attrs)?);
    let mut event_tags = Cursor::new(cursor.take(total_event_attrs)?);
    let mut event_payloads = Cursor::new(cursor.take(8 * total_event_attrs)?);
    if !cursor.finished() {
        return Err(Error::Store("trailing bytes after segment columns".into()));
    }

    let mut traces = Vec::with_capacity(num_traces);
    let mut next_event = 0usize;
    for (trace_attr_count, event_count) in counts {
        let attributes =
            read_attrs(trace_attr_count, &mut trace_keys, &mut trace_tags, &mut trace_payloads)?;
        let mut events = Vec::with_capacity(event_count);
        for _ in 0..event_count {
            let class = event_classes[next_event];
            let attrs = read_attrs(
                event_attr_counts[next_event],
                &mut event_keys,
                &mut event_tags,
                &mut event_payloads,
            )?;
            next_event += 1;
            // Stored attributes came out of a built `Event`, so they are
            // already sorted and deduped; `Event::new` is idempotent on
            // them and the round trip is exact.
            events.push(Event::new(class, attrs));
        }
        traces.push(Trace::new(attributes, events));
    }
    Ok(traces)
}

/// Everything the store knows besides the traces themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreMeta {
    /// The interner's string table in symbol order.
    pub strings: Vec<String>,
    /// Classes in id order: interned name plus class-level attributes.
    pub classes: Vec<(Symbol, Vec<(Symbol, AttributeValue)>)>,
    /// Log-level attributes in document order.
    pub log_attrs: Vec<(Symbol, AttributeValue)>,
    /// Trace count of each batch segment, in batch order.
    pub batch_traces: Vec<u32>,
}

impl StoreMeta {
    /// Total traces across all batches.
    pub fn num_traces(&self) -> usize {
        self.batch_traces.iter().map(|&n| n as usize).sum()
    }
}

fn put_attrs(out: &mut Vec<u8>, attrs: &[(Symbol, AttributeValue)]) -> Result<()> {
    put_u32(out, u32_len(attrs.len(), "attribute count")?);
    for (key, value) in attrs {
        put_u32(out, key.0);
        let (tag, payload) = encode_value(value);
        out.push(tag);
        put_u64(out, payload);
    }
    Ok(())
}

fn take_attrs(cursor: &mut Cursor<'_>) -> Result<Vec<(Symbol, AttributeValue)>> {
    let count = cursor.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let key = Symbol(cursor.u32()?);
        let tag = cursor.u8()?;
        let payload = cursor.u64()?;
        out.push((key, decode_value(tag, payload)?));
    }
    Ok(out)
}

/// Encodes the store metadata file. Fails loudly if any count outgrows
/// the format's `u32` fields.
pub fn encode_meta(meta: &StoreMeta) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(META_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, u32_len(meta.strings.len(), "string table size")?);
    for s in &meta.strings {
        put_u32(&mut out, u32_len(s.len(), "string length")?);
        out.extend_from_slice(s.as_bytes());
    }
    put_u32(&mut out, u32_len(meta.classes.len(), "class count")?);
    for (name, attrs) in &meta.classes {
        put_u32(&mut out, name.0);
        put_attrs(&mut out, attrs)?;
    }
    put_attrs(&mut out, &meta.log_attrs)?;
    put_u32(&mut out, u32_len(meta.batch_traces.len(), "batch count")?);
    for &n in &meta.batch_traces {
        put_u32(&mut out, n);
    }
    Ok(out)
}

/// Decodes the store metadata file.
pub fn decode_meta(bytes: &[u8]) -> Result<StoreMeta> {
    let mut cursor = Cursor::new(bytes);
    if cursor.take(4)? != META_MAGIC {
        return Err(Error::Store("bad store-meta magic".into()));
    }
    let version = cursor.u32()?;
    if version != FORMAT_VERSION {
        return Err(Error::Store(format!("unsupported store version {version}")));
    }
    let num_strings = cursor.u32()? as usize;
    let mut strings = Vec::with_capacity(num_strings.min(1 << 20));
    for _ in 0..num_strings {
        let len = cursor.u32()? as usize;
        let s = std::str::from_utf8(cursor.take(len)?)
            .map_err(|_| Error::Store("non-UTF-8 string in table".into()))?;
        strings.push(s.to_string());
    }
    let num_classes = cursor.u32()? as usize;
    let mut classes = Vec::with_capacity(num_classes.min(crate::MAX_CLASSES));
    for _ in 0..num_classes {
        let name = Symbol(cursor.u32()?);
        classes.push((name, take_attrs(&mut cursor)?));
    }
    let log_attrs = take_attrs(&mut cursor)?;
    let num_batches = cursor.u32()? as usize;
    let mut batch_traces = Vec::with_capacity(num_batches.min(1 << 20));
    for _ in 0..num_batches {
        batch_traces.push(cursor.u32()?);
    }
    if !cursor.finished() {
        return Err(Error::Store("trailing bytes after store meta".into()));
    }
    Ok(StoreMeta { strings, classes, log_attrs, batch_traces })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traces() -> Vec<Trace> {
        let t1 = Trace::new(
            vec![(Symbol(0), AttributeValue::Str(Symbol(5)))],
            vec![
                Event::new(
                    ClassId(0),
                    vec![
                        (Symbol(0), AttributeValue::Str(Symbol(6))),
                        (Symbol(1), AttributeValue::Timestamp(123_456)),
                        (Symbol(7), AttributeValue::Int(-3)),
                    ],
                ),
                Event::new(ClassId(1), vec![(Symbol(8), AttributeValue::Float(0.25))]),
            ],
        );
        let t2 = Trace::new(vec![], vec![]);
        let t3 = Trace::new(
            vec![
                (Symbol(0), AttributeValue::Str(Symbol(9))),
                (Symbol(2), AttributeValue::Bool(true)),
            ],
            vec![Event::new(ClassId(255), vec![])],
        );
        vec![t1, t2, t3]
    }

    #[test]
    fn batch_round_trips() {
        let traces = sample_traces();
        let bytes = encode_batch(&traces).unwrap();
        let back = decode_batch(&bytes).unwrap();
        assert_eq!(back, traces);
        // Empty batches round-trip too.
        assert_eq!(decode_batch(&encode_batch(&[]).unwrap()).unwrap(), Vec::<Trace>::new());
    }

    #[test]
    fn corrupt_batches_error_not_panic() {
        let traces = sample_traces();
        let bytes = encode_batch(&traces).unwrap();
        assert!(decode_batch(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_batch(&wrong_magic).is_err(), "bad magic");
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_batch(&extra).is_err(), "trailing bytes");
        assert!(decode_batch(&[]).is_err(), "empty input");
    }

    #[test]
    fn oversized_counts_error_not_wrap() {
        assert_eq!(u32_len(0, "x").unwrap(), 0);
        assert_eq!(u32_len(u32::MAX as usize, "x").unwrap(), u32::MAX);
        let err = u32_len(u32::MAX as usize + 1, "trace event count").unwrap_err();
        assert!(
            matches!(err, Error::Store(ref m) if m.contains("trace event count")),
            "want a loud Store error naming the field, got: {err:?}"
        );
    }

    #[test]
    fn meta_round_trips() {
        let meta = StoreMeta {
            strings: vec!["concept:name".into(), "a".into(), "prüfen ✓".into(), "".into()],
            classes: vec![
                (Symbol(1), vec![(Symbol(0), AttributeValue::Str(Symbol(2)))]),
                (Symbol(2), vec![]),
            ],
            log_attrs: vec![(Symbol(0), AttributeValue::Int(7))],
            batch_traces: vec![512, 512, 41],
        };
        let bytes = encode_meta(&meta).unwrap();
        assert_eq!(decode_meta(&bytes).unwrap(), meta);
        assert_eq!(meta.num_traces(), 1065);
        assert!(decode_meta(&bytes[..bytes.len() - 2]).is_err());
        assert!(decode_meta(b"nope").is_err());
    }
}
