//! Positioned-read abstraction over segment files.
//!
//! The store's read path goes through one small trait so the batch
//! decoder never cares where bytes live: [`FileSource`] serves them with
//! positional reads (`pread` on Unix — no seek state, safe to share
//! across threads), and [`MemSource`] serves them from a buffer, which
//! the round-trip tests use to exercise the decoder without touching
//! disk.

use std::fs::File;
use std::io;
use std::path::Path;

/// A random-access source of segment bytes.
pub trait SegmentSource {
    /// Total size in bytes.
    fn len(&self) -> u64;

    /// Whether the source holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `buf` exactly from `offset`, erroring (like
    /// [`io::Read::read_exact`]) if the range runs past the end.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
}

/// A segment file on disk, read with positional I/O.
#[derive(Debug)]
pub struct FileSource {
    #[cfg(unix)]
    file: File,
    /// Non-Unix fallback: positional reads emulated with seek + read
    /// under a lock.
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
    len: u64,
}

impl FileSource {
    /// Opens a segment file for positional reads.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileSource> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(not(unix))]
        let file = std::sync::Mutex::new(file);
        Ok(FileSource { file, len })
    }
}

impl SegmentSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    #[cfg(unix)]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock().expect("FileSource lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

/// An in-memory segment, for tests and tooling.
#[derive(Debug, Clone, Default)]
pub struct MemSource(pub Vec<u8>);

impl SegmentSource for MemSource {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = usize::try_from(offset)
            .ok()
            .filter(|&s| s.checked_add(buf.len()).is_some_and(|end| end <= self.0.len()))
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "read past end of segment")
            })?;
        buf.copy_from_slice(&self.0[start..start + buf.len()]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_source_reads_exact_ranges() {
        let src = MemSource(vec![1, 2, 3, 4, 5]);
        assert_eq!(src.len(), 5);
        let mut buf = [0u8; 3];
        src.read_at(1, &mut buf).unwrap();
        assert_eq!(buf, [2, 3, 4]);
        assert!(src.read_at(3, &mut buf).is_err());
        assert!(src.read_at(u64::MAX, &mut buf).is_err());
    }

    #[test]
    fn file_source_round_trips() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-stores")
            .join(format!("gecco-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg");
        std::fs::write(&path, b"hello segment").unwrap();
        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.len(), 13);
        let mut buf = [0u8; 7];
        src.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"segment");
        assert!(src.read_at(10, &mut buf).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
