//! String interning.
//!
//! Every string that appears in a log — event-class names, attribute keys,
//! categorical attribute values — is interned once into a per-log
//! [`Interner`] and afterwards handled as a copyable [`Symbol`]. Constraint
//! evaluation then compares and hashes `u32`s instead of strings, which is
//! what keeps the per-instance checks of §IV-A cheap.

use std::collections::HashMap;

/// Handle to an interned string. Only meaningful together with the
/// [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of the symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner.
///
/// Each string is stored exactly once, in `strings`; the lookup side maps
/// the string's hash to the (almost always one) symbol(s) whose string has
/// that hash, so no second copy of the text is kept as a map key.
/// [`Interner::intern`] is idempotent and [`Interner::resolve`] is an O(1)
/// slice lookup.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    /// `hash(string) → symbols with that hash`; collisions are resolved by
    /// comparing against `strings`.
    buckets: HashMap<u64, Vec<Symbol>>,
    // gecco-lint: allow(ambient-nondet) — internal bucket key only: symbols are numbered in
    // insertion order, and no result or serialized byte depends on these hash values
    hasher: std::collections::hash_map::RandomState,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn hash_of(&self, s: &str) -> u64 {
        use std::hash::BuildHasher;
        self.hasher.hash_one(s)
    }

    /// Interns `s`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        let hash = self.hash_of(s);
        let bucket = self.buckets.entry(hash).or_default();
        if let Some(&sym) = bucket.iter().find(|sym| &*self.strings[sym.index()] == s) {
            return sym;
        }
        // gecco-lint: allow(lossy-cast) — symbol ids are u32 by design; the store format caps
        // the string table at u32 entries (format::u32_len)
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.into());
        bucket.push(sym);
        sym
    }

    /// Returns the symbol for `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        let bucket = self.buckets.get(&self.hash_of(s))?;
        bucket.iter().find(|sym| &*self.strings[sym.index()] == s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` does not belong to this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }

    /// Interns every string of `other` (in `other`'s symbol order) and
    /// returns the remap table: `table[local.index()]` is the corresponding
    /// symbol in `self`.
    ///
    /// This is the merge primitive of the chunked ingestion pipeline: chunk
    /// workers intern into thread-local interners, and the single merge
    /// pass folds them into the log's interner in deterministic chunk
    /// order. Because a chunk's symbol order is its first-occurrence order,
    /// concatenating per-chunk merges reproduces the exact symbol
    /// numbering a serial document-order pass would have produced.
    pub fn merge_from(&mut self, other: &Interner) -> Vec<Symbol> {
        let mut table = Vec::with_capacity(other.strings.len());
        table.extend(other.strings.iter().map(|s| self.intern(s)));
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("clerk");
        let b = i.intern("manager");
        let a2 = i.intern("clerk");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let words = ["rcp", "ckc", "ckt", "acc", "rej", "prio", "inf", "arv"];
        let syms: Vec<_> = words.iter().map(|w| i.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *w);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(s, w)| (s.0, w.to_string())).collect();
        assert_eq!(collected, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn many_strings_round_trip_through_buckets() {
        // Exercises the hash-bucket lookup (including any collisions) at a
        // size where every code path of intern/get is hit repeatedly.
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..10_000).map(|n| i.intern(&format!("s{n}"))).collect();
        assert_eq!(i.len(), 10_000);
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(i.intern(&format!("s{n}")), *sym, "re-intern must dedupe");
            assert_eq!(i.get(&format!("s{n}")), Some(*sym));
            assert_eq!(i.resolve(*sym), format!("s{n}"));
        }
        assert_eq!(i.len(), 10_000);
        assert_eq!(i.get("never-interned"), None);
    }

    #[test]
    fn merge_from_builds_remap_table() {
        let mut global = Interner::new();
        let shared = global.intern("shared");
        let mut local = Interner::new();
        let l_new = local.intern("only-local");
        let l_shared = local.intern("shared");
        let table = global.merge_from(&local);
        assert_eq!(table.len(), 2);
        assert_eq!(table[l_shared.index()], shared);
        assert_eq!(global.resolve(table[l_new.index()]), "only-local");
        // Merging is idempotent: a second merge maps to the same symbols.
        assert_eq!(global.merge_from(&local), table);
    }

    #[test]
    fn empty_and_unicode() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let e = i.intern("");
        let u = i.intern("prüfen ✓");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.resolve(u), "prüfen ✓");
        assert!(!i.is_empty());
    }
}
