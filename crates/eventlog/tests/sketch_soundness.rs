//! Property-based soundness of the co-occurrence sketches.
//!
//! The pruning contract is one-sided: [`ClassCoOccurrence::may_occur`] may
//! say `true` for a group that never co-occurs (the exact test then runs),
//! but it must **never** say `false` for a group that does — otherwise
//! sketch-driven candidate pruning could silently drop feasible groups.
//! These properties exercise arbitrary logs against the exact
//! [`EventLog::occurs`] / [`LogIndex::occurs`] oracles, including the
//! incomplete-triples regime (traces wider than `TRIPLE_CLASS_LIMIT`).

use gecco_eventlog::sketch::TRIPLE_CLASS_LIMIT;
use gecco_eventlog::{ClassCoOccurrence, ClassSet, EventLog, LogBuilder, LogIndex};
use proptest::prelude::*;

/// Random small logs over up to 8 classes, up to 12 traces of length ≤ 14.
fn arb_log() -> impl Strategy<Value = EventLog> {
    let trace = proptest::collection::vec(0usize..8, 0..=14);
    proptest::collection::vec(trace, 1..=12).prop_map(build_log)
}

/// Logs with some traces wider than [`TRIPLE_CLASS_LIMIT`] distinct
/// classes, so the triple filter goes incomplete and `may_occur` must fall
/// back to pairs alone.
fn arb_wide_log() -> impl Strategy<Value = EventLog> {
    let trace = (any::<bool>(), proptest::collection::vec(0usize..30, 0..=10)).prop_map(
        |(wide, narrow)| {
            if wide {
                (0..=TRIPLE_CLASS_LIMIT + 2).collect::<Vec<usize>>()
            } else {
                narrow
            }
        },
    );
    proptest::collection::vec(trace, 1..=8).prop_map(build_log)
}

fn build_log(traces: Vec<Vec<usize>>) -> EventLog {
    let mut b = LogBuilder::new();
    for (i, t) in traces.iter().enumerate() {
        let mut tb = b.trace(&format!("case-{i}"));
        for &cls in t {
            tb = tb.event(&format!("c{cls}")).expect("within class limits");
        }
        tb.done();
    }
    b.build()
}

/// All groups (including ∅) over the log's classes, capped to keep the
/// subset enumeration affordable on wide logs.
fn some_groups(log: &EventLog) -> Vec<ClassSet> {
    let ids: Vec<_> = log.classes().ids().take(8).collect();
    (0u32..(1 << ids.len()))
        .map(|mask| {
            ids.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, c)| *c).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occurring_groups_are_never_pruned(log in arb_log()) {
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        for group in some_groups(&log) {
            if log.occurs(&group) {
                prop_assert!(
                    sketch.may_occur(&group),
                    "sound pruning violated on {:?}", group
                );
            }
        }
    }

    #[test]
    fn incomplete_triples_stay_sound(log in arb_wide_log()) {
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        for group in some_groups(&log) {
            if log.occurs(&group) {
                prop_assert!(sketch.may_occur(&group), "wide-log pruning violated on {:?}", group);
            }
        }
    }

    #[test]
    fn pairwise_rows_are_exact(log in arb_log()) {
        let index = LogIndex::build(&log);
        let sketch = ClassCoOccurrence::build(&index);
        let ids: Vec<_> = log.classes().ids().collect();
        for &a in &ids {
            for &b in &ids {
                let pair: ClassSet = [a, b].into_iter().collect();
                let exact = log.occurs(&pair);
                prop_assert_eq!(
                    sketch.cooccurring(a).contains(b), exact,
                    "pair row diverges on {:?},{:?}", a, b
                );
                // Pair supports never under-count the exact trace count —
                // including the degenerate `a == b` query, whose support is
                // the class's own trace count (and is exact, since the
                // index carries it directly).
                let count = log
                    .trace_class_sets()
                    .iter()
                    .filter(|cs| cs.contains(a) && cs.contains(b))
                    .count() as u32;
                prop_assert!(
                    sketch.pair_support(a, b) >= count,
                    "pair_support under-counts on {:?},{:?}: {} < {}",
                    a, b, sketch.pair_support(a, b), count
                );
                if a == b {
                    prop_assert_eq!(sketch.pair_support(a, a), count);
                }
                if count == 0 {
                    prop_assert_eq!(sketch.pair_support(a, b), 0);
                }
            }
        }
    }
}
