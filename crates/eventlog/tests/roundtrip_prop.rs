//! Property-based round-trip suites for the I/O layer.
//!
//! XES: random `EventLog` → write → parse must preserve every observable
//! piece of the event model (trace structure, typed attribute values,
//! class-level attributes, log attributes), and one write → parse round
//! must be a *fixed point*: re-serializing the parsed log reproduces the
//! byte-identical document and a bit-identical log (interner order, class
//! ids and all).
//!
//! CSV: same idea through the column/row projection — the generators emit
//! only values that survive the importer's type re-sniffing (see
//! `common::csv_value`), and the write → read → write cycle must be
//! byte-stable with all types intact.

mod common;

use common::{
    assert_logs_identical, build_log, canon, csv_log_spec, xes_log_spec, LogSpec, ValueSpec,
};
use gecco_eventlog::{csv, xes, AttributeValue, LogBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn xes_round_trip_preserves_everything(spec in xes_log_spec()) {
        let log = build_log(&spec);
        let s1 = xes::write_string(&log);
        let l1 = xes::parse_str(&s1).unwrap();
        // Semantic equality with the original, interner-independent.
        prop_assert_eq!(canon(&log), canon(&l1));
        // One round canonicalizes: from here on, write ∘ parse is a
        // bit-identical fixed point.
        let s2 = xes::write_string(&l1);
        let l2 = xes::parse_str(&s2).unwrap();
        assert_logs_identical(&l1, &l2);
        let s3 = xes::write_string(&l2);
        prop_assert_eq!(s2, s3);
    }

    #[test]
    fn csv_round_trip_preserves_types(spec in csv_log_spec()) {
        let log = build_log(&spec);
        let s1 = csv::write_string(&log);
        let l1 = csv::read_str(&s1, &csv::CsvOptions::default()).unwrap();
        prop_assert_eq!(log.traces().len(), l1.traces().len());
        prop_assert_eq!(log.num_events(), l1.num_events());
        prop_assert_eq!(log.num_classes(), l1.num_classes());
        // Typed values survive the re-sniffing bit for bit.
        for (t_orig, t_back) in log.traces().iter().zip(l1.traces()) {
            for (e_orig, e_back) in t_orig.events().iter().zip(t_back.events()) {
                prop_assert_eq!(
                    log.class_name(e_orig.class()),
                    l1.class_name(e_back.class())
                );
                for (k, v) in e_orig.attributes() {
                    let key = log.resolve(*k);
                    if key == "concept:name" {
                        continue;
                    }
                    let back_key = l1.key(key).expect("attribute key lost");
                    let back_v = e_back.attribute(back_key).expect("attribute lost");
                    let same = match (v, back_v) {
                        (AttributeValue::Str(a), AttributeValue::Str(b)) => {
                            log.resolve(*a) == l1.resolve(*b)
                        }
                        (AttributeValue::Float(a), AttributeValue::Float(b)) => {
                            a.to_bits() == b.to_bits()
                        }
                        (a, b) => a == b,
                    };
                    prop_assert!(same, "{key}: {v:?} became {back_v:?}");
                }
            }
        }
        // Byte-stable fixed point: the first write is already canonical.
        let s2 = csv::write_string(&l1);
        prop_assert_eq!(s1, s2);
    }
}

/// Deterministic regression: the full type palette through one CSV cycle.
#[test]
fn csv_type_palette_round_trip() {
    let mut b = LogBuilder::new();
    b.trace("c1")
        .event_with("work", |e| {
            e.str("label", "hello world")
                .int("cost", -42)
                .float("effort", 2.5)
                .bool("rework", true)
                .timestamp("when", 1_485_938_415_250);
        })
        .unwrap()
        .done();
    let log = b.build();
    let s = csv::write_string(&log);
    let back = csv::read_str(&s, &csv::CsvOptions::default()).unwrap();
    let e = &back.traces()[0].events()[0];
    assert_eq!(e.attribute(back.key("cost").unwrap()), Some(&AttributeValue::Int(-42)));
    assert_eq!(e.attribute(back.key("effort").unwrap()), Some(&AttributeValue::Float(2.5)));
    assert_eq!(e.attribute(back.key("rework").unwrap()), Some(&AttributeValue::Bool(true)));
    assert_eq!(
        e.attribute(back.key("when").unwrap()),
        Some(&AttributeValue::Timestamp(1_485_938_415_250))
    );
    let label = e.attribute(back.key("label").unwrap()).unwrap().as_symbol().unwrap();
    assert_eq!(back.resolve(label), "hello world");
}

/// Deterministic regression for the class-attribute wrapper bug: multiple
/// attributes on multiple classes must survive a full write → parse cycle
/// (the writer always emits self-closing children, which used to truncate
/// the wrapper after the first one and leak the rest to log level).
#[test]
fn xes_round_trip_multiple_class_attrs() {
    let spec = LogSpec {
        log_attrs: vec![("origin".into(), ValueSpec::Str("unit-test".into()))],
        class_attrs: vec![
            ("a".into(), "system".into(), "S1".into()),
            ("a".into(), "department".into(), "D1".into()),
            ("a".into(), "owner".into(), "O1".into()),
            ("b".into(), "system".into(), "S2".into()),
            ("b".into(), "department".into(), "D2".into()),
        ],
        traces: vec![vec![
            common::EventSpec { class: "a".into(), attrs: vec![] },
            common::EventSpec { class: "b".into(), attrs: vec![] },
        ]],
    };
    let log = build_log(&spec);
    let back = xes::parse_str(&xes::write_string(&log)).unwrap();
    assert_eq!(canon(&log), canon(&back));
    // Log level must hold exactly the one real log attribute.
    assert_eq!(back.attributes().len(), 1);
}
