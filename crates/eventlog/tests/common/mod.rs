//! Shared generators and comparators for the ingestion test suites.
#![allow(dead_code)] // each suite uses a subset

use gecco_eventlog::{AttributeValue, EventLog, LogBuilder};
use proptest::collection::vec;
use proptest::string::string_regex;
use proptest::{any, Just, Strategy};

/// A typed attribute value specification, independent of any interner.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSpec {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Timestamp(i64),
}

/// One event: class name plus attributes in document order.
#[derive(Debug, Clone)]
pub struct EventSpec {
    pub class: String,
    pub attrs: Vec<(String, ValueSpec)>,
}

/// A whole random log.
#[derive(Debug, Clone)]
pub struct LogSpec {
    pub log_attrs: Vec<(String, ValueSpec)>,
    pub class_attrs: Vec<(String, String, String)>,
    pub traces: Vec<Vec<EventSpec>>,
}

/// Value strategy for XES round trips: any type, XML-special characters
/// included, floats kept non-integral and finite, timestamps in the
/// formatter's comfortable range.
fn xes_value() -> impl Strategy<Value = ValueSpec> {
    (
        0u8..5,
        -1_000_000i64..1_000_000,
        0i64..4_000_000_000_000,
        string_regex("[a-z<>&\"' _0-9]{0,8}").unwrap(),
        any::<bool>(),
    )
        .prop_map(|(kind, i, ts, s, b)| match kind {
            0 => ValueSpec::Str(s),
            1 => ValueSpec::Int(i),
            2 => ValueSpec::Float(i as f64 + 0.5),
            3 => ValueSpec::Bool(b),
            _ => ValueSpec::Timestamp(ts),
        })
}

/// Value strategy for CSV round trips: every value must survive the
/// importer's type re-sniffing. Strings get a letter prefix so they never
/// parse as a number/bool/date, floats are non-integral so their rendering
/// keeps a decimal point, timestamps round-trip through `format_iso8601`.
fn csv_value() -> impl Strategy<Value = ValueSpec> {
    (
        0u8..5,
        -1_000_000i64..1_000_000,
        0i64..4_000_000_000_000,
        string_regex("[a-z ,\"'_]{0,6}").unwrap(),
        any::<bool>(),
    )
        .prop_map(|(kind, i, ts, s, b)| match kind {
            0 => ValueSpec::Str(format!("v{s}")),
            1 => ValueSpec::Int(i),
            2 => ValueSpec::Float(i as f64 + 0.5),
            3 => ValueSpec::Bool(b),
            _ => ValueSpec::Timestamp(ts),
        })
}

/// Attribute keys: no `:` so generated keys can never collide with the
/// reserved `concept:name` / `case:concept:name` columns.
fn key() -> impl Strategy<Value = String> {
    string_regex("[a-f_]{1,5}").unwrap()
}

/// Class names: short, from a small alphabet (so classes repeat across
/// events), XML-special characters included.
fn class_name() -> impl Strategy<Value = String> {
    string_regex("[ab<&\" x]{1,3}").unwrap()
}

fn xes_event() -> impl Strategy<Value = EventSpec> {
    (class_name(), vec((key(), xes_value()), 0..4))
        .prop_map(|(class, attrs)| EventSpec { class, attrs })
}

fn csv_event() -> impl Strategy<Value = EventSpec> {
    (class_name(), vec((key(), csv_value()), 0..4))
        .prop_map(|(class, attrs)| EventSpec { class, attrs })
}

/// A random log spec for XES round trips: log attributes, class-level
/// attributes and traces of events.
pub fn xes_log_spec() -> impl Strategy<Value = LogSpec> {
    (
        vec((key(), xes_value()), 0..3),
        vec((class_name(), key(), string_regex("[a-z<&\" ]{0,6}").unwrap()), 0..3),
        vec(vec(xes_event(), 0..6), 0..8),
    )
        .prop_map(|(log_attrs, class_attrs, traces)| LogSpec {
            log_attrs,
            class_attrs,
            traces,
        })
}

/// A larger XES spec that guarantees enough traces to cross the parallel
/// fan-out threshold of the chunked reader.
pub fn xes_log_spec_large() -> impl Strategy<Value = LogSpec> {
    (Just(()), vec(vec(xes_event(), 0..5), 20..40)).prop_map(|((), traces)| LogSpec {
        log_attrs: Vec::new(),
        class_attrs: Vec::new(),
        traces,
    })
}

/// A random log spec for CSV round trips: no log/class attributes (CSV
/// cannot carry them) and at least one event per trace (an event-less
/// trace produces no rows and would vanish on import).
pub fn csv_log_spec() -> impl Strategy<Value = LogSpec> {
    vec(vec(csv_event(), 1..6), 0..8).prop_map(|traces| LogSpec {
        log_attrs: Vec::new(),
        class_attrs: Vec::new(),
        traces,
    })
}

/// CSV spec with enough rows for the importer's chunked phase to fan out.
pub fn csv_log_spec_large() -> impl Strategy<Value = LogSpec> {
    vec(vec(csv_event(), 1..5), 20..40).prop_map(|traces| LogSpec {
        log_attrs: Vec::new(),
        class_attrs: Vec::new(),
        traces,
    })
}

/// Materializes a spec into an [`EventLog`]. Case ids are unique by index
/// so CSV import never merges two distinct traces.
pub fn build_log(spec: &LogSpec) -> EventLog {
    let mut b = LogBuilder::new();
    for (k, v) in &spec.log_attrs {
        match v {
            ValueSpec::Str(s) => {
                b.log_attr_str(k, s);
            }
            ValueSpec::Int(i) => {
                b.log_attr(k, AttributeValue::Int(*i));
            }
            ValueSpec::Float(f) => {
                b.log_attr(k, AttributeValue::Float(*f));
            }
            ValueSpec::Bool(x) => {
                b.log_attr(k, AttributeValue::Bool(*x));
            }
            ValueSpec::Timestamp(t) => {
                b.log_attr(k, AttributeValue::Timestamp(*t));
            }
        }
    }
    for (class, k, v) in &spec.class_attrs {
        b.class_attr_str(class, k, v).unwrap();
    }
    for (i, events) in spec.traces.iter().enumerate() {
        let mut tb = b.trace(&format!("case-{i}"));
        for ev in events {
            tb = tb
                .event_with(&ev.class, |e| {
                    for (k, v) in &ev.attrs {
                        match v {
                            ValueSpec::Str(s) => e.str(k, s),
                            ValueSpec::Int(x) => e.int(k, *x),
                            ValueSpec::Float(x) => e.float(k, *x),
                            ValueSpec::Bool(x) => e.bool(k, *x),
                            ValueSpec::Timestamp(x) => e.timestamp(k, *x),
                        };
                    }
                })
                .unwrap();
        }
        tb.done();
    }
    b.build()
}

/// Canonical, interner-independent rendering of one attribute value.
fn render(log: &EventLog, v: &AttributeValue) -> String {
    match v {
        AttributeValue::Str(s) => format!("str:{}", log.resolve(*s)),
        AttributeValue::Int(i) => format!("int:{i}"),
        AttributeValue::Float(f) => format!("float:{:016x}", f.to_bits()),
        AttributeValue::Bool(b) => format!("bool:{b}"),
        AttributeValue::Timestamp(t) => format!("ts:{t}"),
    }
}

/// Canonical, interner-independent projection of a log: everything the
/// event model observes, with symbols resolved to strings. Two logs with
/// equal canon are semantically identical even if their interners number
/// symbols differently.
pub fn canon(log: &EventLog) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (k, v) in log.attributes() {
        let _ = writeln!(out, "logattr {}={}", log.resolve(*k), render(log, v));
    }
    let mut class_lines: Vec<String> = log
        .classes()
        .ids()
        .map(|id| {
            let info = log.classes().info(id);
            let mut attrs: Vec<String> = info
                .attributes
                .iter()
                .map(|(k, v)| format!("{}={}", log.resolve(*k), render(log, v)))
                .collect();
            attrs.sort();
            format!("class {:?} [{}]", log.class_name(id), attrs.join(", "))
        })
        .collect();
    class_lines.sort();
    for line in class_lines {
        let _ = writeln!(out, "{line}");
    }
    for trace in log.traces() {
        let mut tattrs: Vec<String> = trace
            .attributes()
            .iter()
            .map(|(k, v)| format!("{}={}", log.resolve(*k), render(log, v)))
            .collect();
        tattrs.sort();
        let _ = writeln!(out, "trace [{}]", tattrs.join(", "));
        for event in trace.events() {
            // Attribute storage order is sorted-by-symbol, which depends on
            // the interner; sort the rendered form so two semantically
            // equal logs canonicalize identically. A `concept:name`
            // attribute equal to the class name is dropped: the XES writer
            // synthesizes exactly that for events without one, so it is
            // redundant with the class.
            let class_name = log.class_name(event.class());
            let mut attrs: Vec<String> = event
                .attributes()
                .iter()
                .filter(|(k, v)| {
                    !(log.resolve(*k) == "concept:name"
                        && v.as_symbol().is_some_and(|s| log.resolve(s) == class_name))
                })
                .map(|(k, v)| format!("{}={}", log.resolve(*k), render(log, v)))
                .collect();
            attrs.sort();
            let _ =
                writeln!(out, "  event {:?} [{}]", log.class_name(event.class()), attrs.join(", "));
        }
    }
    out
}

/// Asserts two logs are **bit-identical**: same interner contents in the
/// same symbol order, same class registry (ids, names, attributes), same
/// log attributes, traces and cached per-trace class sets. This is the
/// contract of the chunked pipeline: chunking and worker count must never
/// influence the result.
pub fn assert_logs_identical(a: &EventLog, b: &EventLog) {
    let syms_a: Vec<(u32, &str)> = a.interner().iter().map(|(s, w)| (s.0, w)).collect();
    let syms_b: Vec<(u32, &str)> = b.interner().iter().map(|(s, w)| (s.0, w)).collect();
    assert_eq!(syms_a, syms_b, "interner contents/order diverge");
    assert_eq!(a.num_classes(), b.num_classes(), "class counts diverge");
    for id in a.classes().ids() {
        let (ia, ib) = (a.classes().info(id), b.classes().info(id));
        assert_eq!(ia.name, ib.name, "class {id:?} name symbol diverges");
        assert_eq!(ia.attributes, ib.attributes, "class {id:?} attributes diverge");
    }
    assert_eq!(a.attributes(), b.attributes(), "log attributes diverge");
    assert_eq!(a.traces(), b.traces(), "traces diverge");
    assert_eq!(a.trace_class_sets(), b.trace_class_sets(), "trace class sets diverge");
}
