//! Chunked/parallel ingestion must be indistinguishable from serial —
//! bit-identical logs: same interner contents in the same symbol order,
//! same class ids, same traces, same cached class sets.
//!
//! Only meaningful with the `rayon` feature; without it `set_parallel` is
//! a no-op and both runs are serial (the assertions then hold trivially).
//! `RAYON_NUM_THREADS` is forced above the machine's core count so real
//! thread fan-out happens even on single-core CI runners.

mod common;

use common::{
    assert_logs_identical, build_log, csv_log_spec_large, xes_log_spec, xes_log_spec_large,
};
use gecco_eventlog::{csv, set_parallel, xes, EventLog, LogBuilder};
use proptest::prelude::*;

fn force_threads() {
    // Safe on edition 2021; tests that call this all set the same value.
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

/// Serializes tests that flip the process-wide parallelism toggle.
static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` twice — serially and in parallel — and returns both results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = TOGGLE_LOCK.lock().unwrap();
    force_threads();
    set_parallel(false);
    let serial = f();
    set_parallel(true);
    let parallel = f();
    set_parallel(true);
    (serial, parallel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn xes_parse_parallel_matches_serial(spec in xes_log_spec()) {
        let doc = xes::write_string(&build_log(&spec));
        let (serial, parallel) = both(|| xes::parse_str(&doc).unwrap());
        assert_logs_identical(&serial, &parallel);
    }

    #[test]
    fn xes_parse_parallel_matches_serial_above_fanout_threshold(spec in xes_log_spec_large()) {
        let doc = xes::write_string(&build_log(&spec));
        let (serial, parallel) = both(|| xes::parse_str(&doc).unwrap());
        assert_logs_identical(&serial, &parallel);
    }

    #[test]
    fn csv_read_parallel_matches_serial(spec in csv_log_spec_large()) {
        let doc = csv::write_string(&build_log(&spec));
        let (serial, parallel) =
            both(|| csv::read_str(&doc, &csv::CsvOptions::default()).unwrap());
        assert_logs_identical(&serial, &parallel);
    }
}

/// A deterministic many-trace log, far past every fan-out threshold.
fn big_log() -> EventLog {
    let mut b = LogBuilder::new();
    for i in 0..600 {
        let mut tb = b.trace(&format!("case-{i}"));
        for j in 0..(1 + i % 5) {
            let class = format!("step-{}", (i + j) % 17);
            tb = tb
                .event_with(&class, |e| {
                    e.str("org:role", if i % 3 == 0 { "clerk" } else { "manager" })
                        .int("cost", (i * 31 + j) as i64)
                        .timestamp("time:timestamp", 1_600_000_000_000 + (i * 60_000 + j) as i64);
                })
                .unwrap();
        }
        tb.done();
    }
    b.build()
}

/// Log-level attributes interleaved *between* traces split the trace
/// chunks into multiple runs; batches must not cross those boundaries or
/// the document-order interning would shift.
#[test]
fn xes_interleaved_log_segments_parallel_matches_serial() {
    let mut doc = String::from("<log>\n");
    for i in 0..120 {
        if i % 7 == 0 {
            doc.push_str(&format!("<string key=\"marker-{i}\" value=\"m{i}\"/>\n"));
        }
        doc.push_str(&format!(
            "<trace><string key=\"concept:name\" value=\"case-{i}\"/>\
             <event><string key=\"concept:name\" value=\"step-{}\"/></event></trace>\n",
            i % 9
        ));
    }
    doc.push_str("</log>");
    let (serial, parallel) = both(|| xes::parse_str(&doc).unwrap());
    assert_logs_identical(&serial, &parallel);
    assert_eq!(serial.traces().len(), 120);
    assert_eq!(serial.attributes().len(), 18);
}

#[test]
fn xes_big_log_parallel_matches_serial() {
    let doc = xes::write_string(&big_log());
    let (serial, parallel) = both(|| xes::parse_str(&doc).unwrap());
    assert_logs_identical(&serial, &parallel);
    assert_eq!(serial.traces().len(), 600);
}

#[test]
fn csv_big_log_parallel_matches_serial() {
    let doc = csv::write_string(&big_log());
    let (serial, parallel) = both(|| csv::read_str(&doc, &csv::CsvOptions::default()).unwrap());
    assert_logs_identical(&serial, &parallel);
    assert_eq!(serial.traces().len(), 600);
}

/// The CSV importer's result must not depend on where chunk boundaries
/// fall: force different worker counts (and therefore chunk sizes) and
/// compare against the single-chunk serial read.
#[test]
fn csv_chunk_boundaries_do_not_matter() {
    let doc = csv::write_string(&big_log());
    let _guard = TOGGLE_LOCK.lock().unwrap();
    set_parallel(true);
    let mut logs = Vec::new();
    for threads in ["1", "2", "3", "7"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        logs.push(csv::read_str(&doc, &csv::CsvOptions::default()).unwrap());
    }
    std::env::set_var("RAYON_NUM_THREADS", "4");
    set_parallel(false);
    let serial = csv::read_str(&doc, &csv::CsvOptions::default()).unwrap();
    set_parallel(true);
    for log in &logs {
        assert_logs_identical(&serial, log);
    }
}
